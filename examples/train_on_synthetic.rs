//! Train the execution-semantics predictor on an RVDG corpus and report
//! Table II-style metrics (accuracy, per-class precision/recall) on a
//! holdout set of unseen synthetic designs.
//!
//! Run with: `cargo run --release --example train_on_synthetic [epochs]`

use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::veribug::{
    model::{ModelConfig, VeriBugModel},
    train::{self, Dataset, TrainConfig},
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let mlp_hidden: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ModelConfig::default().mlp_hidden);
    let max_operands: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(RvdgConfig::default().expr.max_operands);

    // Train and holdout corpora are disjoint *designs*, not just disjoint
    // samples: Table II evaluates on holdout synthetic designs.
    let mut rvdg_cfg = RvdgConfig::default();
    rvdg_cfg.expr.max_operands = max_operands;
    let generator = Generator::new(rvdg_cfg, 101);
    let designs = generator.generate_corpus(30)?;
    let (train_designs, test_designs) = designs.split_at(24);
    let train_modules: Vec<_> = train_designs.iter().map(|d| d.module.clone()).collect();
    let test_modules: Vec<_> = test_designs.iter().map(|d| d.module.clone()).collect();

    let train_set = Dataset::from_designs(&train_modules, 1, 64, 3)?;
    let test_set = Dataset::from_designs(&test_modules, 2, 64, 3)?;
    println!(
        "train: {} samples from {} designs; holdout: {} samples from {} unseen designs",
        train_set.len(),
        train_modules.len(),
        test_set.len(),
        test_modules.len()
    );

    let mut model = VeriBugModel::new(ModelConfig {
        mlp_hidden,
        ..ModelConfig::default()
    });
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let report = train::train(&mut model, &train_set, &cfg)?;
    println!(
        "trained {} epochs in {:.1?}; loss {:.4} -> {:.4}; epsilon {:.3}",
        epochs,
        t0.elapsed(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap(),
        report.final_epsilon,
    );

    let tr = train::evaluate(&model, &train_set);
    println!("train accuracy {:.1}%", tr.accuracy * 100.0);
    let m = train::evaluate(&model, &test_set);
    println!("\nholdout (unseen designs):");
    println!(
        "  accuracy {:.1}%  Pr/Re(0) {:.2}/{:.2}  Pr/Re(1) {:.2}/{:.2}  (n={})",
        m.accuracy * 100.0,
        m.precision0,
        m.recall0,
        m.precision1,
        m.recall1,
        m.count
    );
    Ok(())
}
