//! VeriBug vs classical spectrum-based fault localization (SBFL) on one
//! design: injects the same bugs and compares top-1 hits of the attention
//! heatmap against Tarantula/Ochiai/Jaccard rankings over the identical
//! labelled runs.
//!
//! Run with: `cargo run --release --example compare_baseline [design] [target]`

use veribug_suite::baseline::{collect_spectra, top1, SpectrumFormula};
use veribug_suite::cdfg::Slice;
use veribug_suite::designs;
use veribug_suite::mutate::{BugBudget, Campaign};
use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::sim::TraceLabel;
use veribug_suite::veribug::{
    coverage::localize_mutant,
    model::{ModelConfig, VeriBugModel},
    train::{self, Dataset, TrainConfig},
    DEFAULT_THRESHOLD,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "usbf_idma".into());
    let design =
        designs::by_name(&design_name).ok_or_else(|| format!("unknown design `{design_name}`"))?;
    let target = std::env::args()
        .nth(2)
        .unwrap_or_else(|| design.targets[0].to_owned());

    println!("== training VeriBug ==");
    let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 101)
        .generate_corpus(24)?
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 64, 3)?;
    let mut model = VeriBugModel::new(ModelConfig::default());
    train::train(&mut model, &dataset, &TrainConfig::paper())?;

    println!("\n== campaign: {design_name} / {target} ==");
    let golden = design.module()?;
    let slice = Slice::of_target(&golden, &target);
    let budget = BugBudget {
        negation: 4,
        operation: 4,
        misuse: 6,
    };
    let mutants = Campaign::new(0xBA5E)
        .with_runs_per_mutant(60)
        .run(&golden, &target, &budget)?;

    let mut veribug_hits = 0usize;
    let mut sbfl_hits = [0usize; 3];
    let mut observable = 0usize;
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "mutant", "veribug", "tarantula", "ochiai", "jaccard"
    );
    for m in mutants.iter().filter(|m| m.observable) {
        observable += 1;
        let vb = localize_mutant(&model, m, &target, DEFAULT_THRESHOLD);
        if vb.localized {
            veribug_hits += 1;
        }
        let runs: Vec<(TraceLabel, &veribug_suite::sim::Trace)> =
            m.runs.iter().map(|r| (r.label, &r.trace)).collect();
        let spectra = collect_spectra(&runs, &slice.stmts);
        let mut row = format!(
            "{:<26} {:>10}",
            format!("{} at {}", m.site.kind, m.site.stmt),
            if vb.localized { "hit" } else { "-" }
        );
        for (i, f) in SpectrumFormula::ALL.iter().enumerate() {
            let hit = top1(&spectra, *f) == Some(m.site.stmt);
            if hit {
                sbfl_hits[i] += 1;
            }
            row += &format!(" {:>10}", if hit { "hit" } else { "-" });
        }
        println!("{row}");
    }
    println!("\ntop-1 coverage over {observable} observable bugs:");
    println!(
        "  VeriBug  : {:.1}%",
        100.0 * veribug_hits as f64 / observable.max(1) as f64
    );
    for (i, f) in SpectrumFormula::ALL.iter().enumerate() {
        println!(
            "  {:<9}: {:.1}%",
            f.to_string(),
            100.0 * sbfl_hits[i] as f64 / observable.max(1) as f64
        );
    }
    println!(
        "\nNote: SBFL needs *coverage* differences between failing and passing\n\
         runs; combinational statements execute every cycle, so spectra often\n\
         tie and SBFL degenerates — the gap VeriBug's value-sensitive\n\
         attention closes (paper Sec. I)."
    );
    Ok(())
}
