//! Diagnostic: how value-sensitive are the trained attention weights?
//! Trains quickly, then prints attention for one statement under every
//! operand-value combination, plus the suspiciousness between arbitrary
//! pairs of value regimes.

use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::veribug::{
    model::{ModelConfig, VeriBugModel},
    suspiciousness,
    train::{self, Dataset, TrainConfig},
    StatementFeatures,
};
use veribug_suite::verilog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alpha: f32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 101)
        .generate_corpus(24)?
        .into_iter()
        .map(|d| d.module)
        .collect();
    let ds = Dataset::from_designs(&corpus, 1, 64, 3)?;
    let mut model = VeriBugModel::new(ModelConfig::default());
    train::train(
        &mut model,
        &ds,
        &TrainConfig {
            epochs: 60,
            alpha,
            ..TrainConfig::default()
        },
    )?;

    let unit = verilog::parse(
        "module m(input req1, input req2, output reg gnt1);\n\
         always @(*) begin\ngnt1 = req1 & ~req2;\nend\nendmodule",
    )?;
    let module = unit.top().clone();
    let f = StatementFeatures::extract(&module.assignments()[0].clone()).unwrap();
    println!("alpha = {alpha}: attention for gnt1 = req1 & ~req2");
    let mut atts = Vec::new();
    for v1 in [false, true] {
        for v2 in [false, true] {
            let (pred, att) = model.predict(&f, &[v1, v2]);
            println!(
                "  req1={} req2={} -> pred {}  attention {:?}",
                u8::from(v1),
                u8::from(v2),
                u8::from(pred),
                att
            );
            atts.push(att);
        }
    }
    println!(
        "max pairwise suspiciousness: {:.4}",
        atts.iter()
            .flat_map(|a| atts.iter().map(move |b| suspiciousness(a, b)))
            .fold(0.0f32, f32::max)
    );
    Ok(())
}
