//! Quickstart: the full VeriBug pipeline on a toy arbiter, in ~60 lines.
//!
//! 1. Train the execution-semantics model on RVDG synthetic designs.
//! 2. Inject one bug into a golden arbiter.
//! 3. Localize it: aggregated attention maps -> suspiciousness -> heatmap.
//!
//! Run with: `cargo run --release --example quickstart`

use veribug_suite::mutate::{BugBudget, Campaign};
use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::veribug::{
    coverage::{labelled_traces, localize_mutant},
    model::{ModelConfig, VeriBugModel},
    render::{render_comparison, RenderOptions},
    train::{self, Dataset, TrainConfig},
    Explainer, DEFAULT_THRESHOLD,
};
use veribug_suite::verilog;

const GOLDEN: &str = "\
module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);
  reg state;
  always @(posedge clk) state <= req1 ^ req2;
  always @(*) begin
    if (state) gnt1 = req1 & ~req2;
    else gnt1 = req1 | req2;
    gnt2 = req2 & ~req1;
  end
endmodule
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train on a small synthetic corpus (paper Sec. V: the model never
    //    sees the design under debug).
    println!("== training on RVDG synthetic designs ==");
    let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 11)
        .generate_corpus(16)?
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 48, 2)?;
    println!("dataset: {} unique statement executions", dataset.len());
    let mut model = VeriBugModel::new(ModelConfig::default());
    let report = train::train(&mut model, &dataset, &TrainConfig::paper())?;
    println!(
        "trained {} epochs, loss {:.4} -> {:.4}, epsilon = {:.3}",
        report.epoch_losses.len(),
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0),
        report.final_epsilon,
    );

    // 2. Inject bugs into the golden arbiter, targeting output gnt1.
    println!("\n== injecting bugs into the arbiter (target: gnt1) ==");
    let golden = verilog::parse(GOLDEN)?.top().clone();
    let budget = BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let mutants = Campaign::new(3).run(&golden, "gnt1", &budget)?;
    println!(
        "{} mutants, {} observable at gnt1",
        mutants.len(),
        mutants.iter().filter(|m| m.observable).count()
    );

    // 3. Localize each observable bug and show one heatmap.
    println!("\n== localization ==");
    let mut shown = false;
    for m in mutants.iter().filter(|m| m.observable) {
        let outcome = localize_mutant(&model, m, "gnt1", DEFAULT_THRESHOLD);
        println!(
            "bug [{}] at {} -> top-1 {:?} ({})",
            m.site.kind,
            m.site.stmt,
            outcome.top1,
            if outcome.localized {
                "LOCALIZED"
            } else {
                "missed"
            },
        );
        if !shown {
            let mut explainer = Explainer::new(&model, &m.module, "gnt1");
            let runs = labelled_traces(m);
            let (heatmap, _f_map, c_map) = explainer.explain(&runs, DEFAULT_THRESHOLD);
            let _ = RenderOptions::default();
            println!("\n-- heatmap (C_t vs H_t) for this mutant --");
            print!("{}", render_comparison(&m.module, &heatmap, &c_map, false));
            shown = true;
        }
    }
    Ok(())
}
