//! End-to-end localization on the Wishbone multiplexer (a Table III row):
//! train on RVDG synthetic designs, inject the paper's bug budget into
//! `wb_mux_2`, localize every observable bug against both targets, and
//! print a rendered heatmap for one mutant.
//!
//! Run with: `cargo run --release --example localize_wb_mux [failure_window]`

use veribug_suite::designs;
use veribug_suite::mutate::{BugBudget, Campaign};
use veribug_suite::rvdg::{Generator, RvdgConfig};
use veribug_suite::veribug::{
    coverage::{labelled_traces, localize_mutant_with},
    model::{ModelConfig, VeriBugModel},
    render::render_comparison,
    train::{self, Dataset, TrainConfig},
    Coverage, Explainer, DEFAULT_THRESHOLD,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(veribug_suite::veribug::explain::DEFAULT_FAILURE_WINDOW);
    let runs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let thr: f32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    println!("== training ==");
    let corpus: Vec<_> = Generator::new(RvdgConfig::default(), 101)
        .generate_corpus(32)?
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 64, 3)?;
    let mut model = VeriBugModel::new(ModelConfig::default());
    train::train(
        &mut model,
        &dataset,
        &TrainConfig {
            epochs: 100,
            ..TrainConfig::default()
        },
    )?;

    let design = designs::WB_MUX_2;
    let golden = design.module()?;
    // Table III budget for wb_mux_2: 2 negation, 2 operation, 4 misuse per
    // target.
    let budget = BugBudget {
        negation: 2,
        operation: 2,
        misuse: 4,
    };
    let mut total = Coverage::default();
    for target in design.targets {
        println!(
            "\n== {} / target {target} (window {window}) ==",
            design.name
        );
        let mutants = Campaign::new(0xC0FFEE)
            .with_runs_per_mutant(runs)
            .run(&golden, target, &budget)?;
        let mut cov = Coverage::default();
        let mut shown = false;
        for m in &mutants {
            cov.injected += 1;
            if !m.observable {
                println!("  [{}] at {}: unobservable", m.site.kind, m.site.stmt);
                continue;
            }
            cov.observable += 1;
            let out = localize_mutant_with(&model, m, target, thr, window);
            if out.localized {
                cov.localized += 1;
            }
            println!(
                "  [{}] at {} -> top-1 {:?} ({}{})",
                m.site.kind,
                m.site.stmt,
                out.top1,
                if out.localized { "LOCALIZED" } else { "missed" },
                out.bug_suspiciousness
                    .map(|s| format!(", bug suspiciousness {s:.3}"))
                    .unwrap_or_default(),
            );
            if !shown && out.localized {
                let mut ex = Explainer::new(&model, &m.module, target).with_failure_window(window);
                let runs = labelled_traces(m);
                let (h, _f, c) = ex.explain(&runs, DEFAULT_THRESHOLD);
                println!(
                    "\n-- heatmap --\n{}",
                    render_comparison(&m.module, &h, &c, false)
                );
                shown = true;
            }
        }
        println!(
            "  coverage: {}/{} observable localized ({:.1}%)",
            cov.localized,
            cov.observable,
            cov.percent()
        );
        total.merge(&cov);
    }
    println!(
        "\noverall: {}/{} ({:.1}%)",
        total.localized,
        total.observable,
        total.percent()
    );
    Ok(())
}
