//! Umbrella crate for the VeriBug reproduction workspace.
//!
//! This crate re-exports every workspace member so that the repository-level
//! examples (`examples/`) and integration tests (`tests/`) can exercise the
//! whole pipeline through one dependency. Library users should depend on the
//! individual crates (most importantly [`veribug`]) directly.

pub use baseline;
pub use cdfg;
pub use designs;
pub use mutate;
pub use neuro;
pub use rvdg;
pub use sim;
pub use veribug;
pub use verilog;
