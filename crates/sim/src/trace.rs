//! Simulation traces: per-cycle signal values and per-statement execution
//! records — the free supervision VeriBug trains on.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::netlist::{Netlist, SignalId};
use crate::value::Value;
use verilog::StmtId;

/// Operand values stored inline up to [`INLINE_OPERANDS`]; wider statements
/// spill to a boxed slice.
const INLINE_OPERANDS: usize = 4;

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum OperandValues {
    Inline {
        len: u8,
        vals: [Value; INLINE_OPERANDS],
    },
    Spill(Box<[Value]>),
}

/// Execution-time operand values of one statement execution, in the
/// statement's record read order: distinct right-hand-side signal
/// references in first-occurrence order, then distinct LHS bit-select
/// index references (the statement's [`AssignInfo::names`] list holds the
/// matching names; resolve names to positions there, once per statement).
///
/// [`AssignInfo::names`]: crate::netlist::AssignInfo::names
///
/// Values are stored inline for up to four operands, and no name storage
/// or reference counting is attached: recording or cloning a record is a
/// fixed-size copy with no heap allocation and no atomics in the common
/// case. Traces are record-dense — every statement execution of every
/// simulated cycle carries one of these — so this representation is what
/// keeps trace construction off the simulator's critical path.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Operands {
    values: OperandValues,
}

impl Operands {
    /// A record with no operands (e.g. a constant right-hand side).
    pub fn empty() -> Operands {
        Operands {
            values: OperandValues::Inline {
                len: 0,
                vals: [Value::bit(false); INLINE_OPERANDS],
            },
        }
    }

    /// Captures `n` operand values via `value_at` (called with each
    /// position in record read order).
    pub fn capture(n: usize, mut value_at: impl FnMut(usize) -> Value) -> Operands {
        let values = if n <= INLINE_OPERANDS {
            let mut vals = [Value::bit(false); INLINE_OPERANDS];
            for (i, v) in vals.iter_mut().enumerate().take(n) {
                *v = value_at(i);
            }
            OperandValues::Inline { len: n as u8, vals }
        } else {
            OperandValues::Spill((0..n).map(&mut value_at).collect())
        };
        Operands { values }
    }

    /// Builds from an explicit value list (tests and callers that already
    /// hold the values).
    pub fn from_values(values: &[Value]) -> Operands {
        Operands::capture(values.len(), |i| values[i])
    }

    /// Operand values, positionally matching the statement's record read
    /// order.
    pub fn values(&self) -> &[Value] {
        match &self.values {
            OperandValues::Inline { len, vals } => &vals[..*len as usize],
            OperandValues::Spill(v) => v,
        }
    }

    /// Number of operands.
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// True when the statement read no signals.
    pub fn is_empty(&self) -> bool {
        self.values().is_empty()
    }

    /// The value at `position` in record read order, if recorded.
    pub fn get(&self, position: usize) -> Option<Value> {
        self.values().get(position).copied()
    }
}

impl PartialEq for Operands {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

/// One execution of one assignment statement.
///
/// Carries no cycle index: the enclosing [`CycleRecord`] provides it. That
/// makes a record a pure function of the statement and the values it read,
/// so identical executions in different cycles are byte-identical — which
/// is what lets the batch engine share one stored record run across every
/// cycle (and lane) whose fanin did not change, instead of cloning records
/// the way the scalar engine's replay cache does.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StmtExec {
    /// Which statement executed.
    pub stmt: StmtId,
    /// Values of the distinct signals read by the right-hand side (and any
    /// LHS index expression) at execution time, in record read order.
    pub operands: Operands,
    /// The value assigned to the left-hand side.
    pub result: Value,
}

impl StmtExec {
    /// The recorded value of the operand at `position` in the statement's
    /// record read order (resolve names to positions once per statement via
    /// [`crate::netlist::AssignInfo::names`]).
    pub fn operand(&self, position: usize) -> Option<Value> {
        self.operands.get(position)
    }
}

/// A per-cycle view of all signal values, backed by a run-wide arena.
///
/// The simulator allocates **one** `Arc<[Value]>` per run and hands every
/// cycle a `(start, len)` window into it, so long testbenches no longer pay
/// one value-vector allocation per cycle. The type dereferences to
/// `[Value]`, so existing slice-style access (`signals[i]`, `.iter()`)
/// keeps working; equality compares the viewed values, not arena identity.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    arena: Arc<[Value]>,
    start: usize,
    len: usize,
}

impl Snapshot {
    /// A window of `len` values starting at `start` in a shared arena.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the arena.
    pub fn view(arena: Arc<[Value]>, start: usize, len: usize) -> Self {
        assert!(start + len <= arena.len(), "snapshot window out of bounds");
        Snapshot { arena, start, len }
    }

    /// The viewed values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.arena[self.start..self.start + self.len]
    }
}

impl std::ops::Deref for Snapshot {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<Value>> for Snapshot {
    fn from(values: Vec<Value>) -> Self {
        let len = values.len();
        Snapshot {
            arena: values.into(),
            start: 0,
            len,
        }
    }
}

/// One cycle's statement executions: an ordered sequence of segments
/// viewing a run-wide record arena.
///
/// The simulator engines write every [`StmtExec`] of a run into **one**
/// flat arena and describe each cycle's execution list as `(start, len)`
/// segment descriptors into it. A cycle whose process fanin did not change
/// re-uses the previous cycle's descriptors verbatim — the records are
/// shared, not copied — so the batch engine's per-lane "replay" costs one
/// 8-byte descriptor where the scalar engine's cache replay memcpys whole
/// record runs. Cloning is three `Arc` bumps; equality compares the
/// logical record sequence, not arena identity, so segmented and
/// contiguous traces of the same run compare equal.
///
/// Scalar engines build cycles from plain record vectors via
/// `From<Vec<StmtExec>>` (a single segment spanning the whole vector).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Execs {
    records: Arc<Vec<StmtExec>>,
    /// `(start, len)` windows into `records`, shared run-wide.
    segs: Arc<Vec<(u32, u32)>>,
    /// This cycle's descriptors: `segs[seg_start..seg_start + seg_len]`.
    seg_start: u32,
    seg_len: u32,
    /// Total record count across this cycle's segments.
    total: u32,
}

impl Execs {
    /// A cycle view over a shared record arena and descriptor pool.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a descriptor exceeds the arena or the
    /// descriptor window exceeds the pool.
    pub(crate) fn from_parts(
        records: Arc<Vec<StmtExec>>,
        segs: Arc<Vec<(u32, u32)>>,
        seg_start: u32,
        seg_len: u32,
    ) -> Execs {
        debug_assert!((seg_start + seg_len) as usize <= segs.len());
        let total = segs[seg_start as usize..(seg_start + seg_len) as usize]
            .iter()
            .map(|&(s, n)| {
                debug_assert!((s + n) as usize <= records.len());
                n
            })
            .sum();
        Execs {
            records,
            segs,
            seg_start,
            seg_len,
            total,
        }
    }

    /// The records in execution order.
    pub fn iter(&self) -> ExecsIter<'_> {
        ExecsIter {
            records: &self.records,
            segs: self.segs[self.seg_start as usize..(self.seg_start + self.seg_len) as usize]
                .iter(),
            cur: [].iter(),
        }
    }

    /// Number of records this cycle.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True when nothing executed this cycle.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Iterator over one cycle's records, walking its segment descriptors.
pub struct ExecsIter<'a> {
    records: &'a [StmtExec],
    segs: std::slice::Iter<'a, (u32, u32)>,
    cur: std::slice::Iter<'a, StmtExec>,
}

impl<'a> Iterator for ExecsIter<'a> {
    type Item = &'a StmtExec;

    fn next(&mut self) -> Option<&'a StmtExec> {
        loop {
            if let Some(e) = self.cur.next() {
                return Some(e);
            }
            let &(s, n) = self.segs.next()?;
            self.cur = self.records[s as usize..(s + n) as usize].iter();
        }
    }
}

impl<'a> IntoIterator for &'a Execs {
    type Item = &'a StmtExec;
    type IntoIter = ExecsIter<'a>;

    fn into_iter(self) -> ExecsIter<'a> {
        self.iter()
    }
}

impl PartialEq for Execs {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.iter().eq(other.iter())
    }
}

impl From<Vec<StmtExec>> for Execs {
    fn from(records: Vec<StmtExec>) -> Execs {
        let n = records.len() as u32;
        Execs {
            records: Arc::new(records),
            segs: Arc::new(vec![(0, n)]),
            seg_start: 0,
            seg_len: 1,
            total: n,
        }
    }
}

/// Everything observed in one clock cycle.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CycleRecord {
    /// Cycle index (0-based).
    pub cycle: u32,
    /// Post-settle value of every signal, indexed by [`SignalId`].
    pub signals: Snapshot,
    /// Statement executions this cycle (combinational settle + clock edge).
    pub execs: Execs,
}

impl CycleRecord {
    /// The settled value of a signal this cycle.
    pub fn value(&self, id: SignalId) -> Value {
        self.signals[id.0 as usize]
    }
}

/// A complete simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    /// Per-cycle records in time order.
    pub cycles: Vec<CycleRecord>,
}

impl Trace {
    /// Assembles a trace from a run-wide snapshot arena holding one
    /// contiguous `nsig`-value window per cycle, plus per-cycle execution
    /// records. Shared by the interpreter and the compiled engine; the
    /// batch engine views the same kind of arena at lane-strided offsets
    /// instead.
    pub(crate) fn assemble(
        arena: Arc<[Value]>,
        nsig: usize,
        cycle_execs: Vec<Vec<StmtExec>>,
    ) -> Trace {
        let cycles = cycle_execs
            .into_iter()
            .enumerate()
            .map(|(i, execs)| CycleRecord {
                cycle: i as u32,
                signals: Snapshot::view(arena.clone(), i * nsig, nsig),
                execs: execs.into(),
            })
            .collect();
        Trace { cycles }
    }

    /// The sequence of settled values a signal took, one per cycle.
    pub fn signal_values(&self, id: SignalId) -> Vec<Value> {
        self.cycles.iter().map(|c| c.value(id)).collect()
    }

    /// Looks up a signal by name in `netlist` and returns its per-cycle values.
    pub fn values_of(&self, netlist: &Netlist, name: &str) -> Option<Vec<Value>> {
        netlist.signal_id(name).map(|id| self.signal_values(id))
    }

    /// Every statement that executed at least once in the trace.
    pub fn executed_stmts(&self) -> BTreeSet<StmtId> {
        self.cycles
            .iter()
            .flat_map(|c| c.execs.iter().map(|e| e.stmt))
            .collect()
    }

    /// All executions of a given statement across the trace.
    pub fn execs_of(&self, stmt: StmtId) -> Vec<&StmtExec> {
        self.cycles
            .iter()
            .flat_map(|c| c.execs.iter().filter(move |e| e.stmt == stmt))
            .collect()
    }

    /// True when `self` and `other` disagree on `signal` in any cycle
    /// (compared over the shorter of the two traces).
    pub fn differs_at(&self, other: &Trace, signal: SignalId) -> bool {
        self.cycles
            .iter()
            .zip(&other.cycles)
            .any(|(a, b)| a.value(signal) != b.value(signal))
    }

    /// Number of simulated cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when no cycles were simulated.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// A sorted, deduplicated set of signals a verdict-mode run observes.
///
/// Verdict simulation snapshots only these signals per cycle; everything
/// else is computed but never materialized. Construction sorts and dedups,
/// so two sets built from the same ids in any order are equal and index
/// positions ([`SignalSet::position`]) are stable.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SignalSet {
    ids: Vec<SignalId>,
}

impl SignalSet {
    /// Builds a set from signal ids (order-insensitive, duplicates folded).
    pub fn from_ids(ids: impl IntoIterator<Item = SignalId>) -> SignalSet {
        let mut ids: Vec<SignalId> = ids.into_iter().collect();
        ids.sort_unstable_by_key(|id| id.0);
        ids.dedup();
        SignalSet { ids }
    }

    /// The observed ids in ascending order.
    pub fn ids(&self) -> &[SignalId] {
        &self.ids
    }

    /// Number of observed signals.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is observed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when `id` is observed.
    pub fn contains(&self, id: SignalId) -> bool {
        self.position(id).is_some()
    }

    /// The column index of `id` in verdict snapshots, if observed.
    pub fn position(&self, id: SignalId) -> Option<usize> {
        self.ids.binary_search_by_key(&id.0, |s| s.0).ok()
    }
}

/// How much of a simulation run to materialize.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TraceMode {
    /// Emit per-statement execution records and full per-cycle snapshots —
    /// everything [`Trace`] carries. This is what datasets and the
    /// localizer consume.
    Full,
    /// Emit **no** execution records and snapshot only `observed` —
    /// sufficient to decide whether two runs diverge at those signals and
    /// at which cycles. The hot loop becomes pure compute plus an
    /// O(observed) per-cycle store.
    Verdict {
        /// The signals whose per-cycle values the verdict needs.
        observed: SignalSet,
    },
}

/// The values-only product of a verdict-mode run: per-cycle values of the
/// observed signals, nothing else.
///
/// Values are cycle-major: `values[cycle * nobs + k]` is observed signal
/// `k` (in [`SignalSet`] order) at `cycle`. Equality compares values and
/// shape only — `records_elided` is an accounting figure that legitimately
/// differs between engines (the batch engine's clean-lane skipping elides
/// a different count than the scalar replay cache) and must not break
/// bit-identity comparisons.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct VerdictTrace {
    /// Cycle-major observed values: `values[cycle * nobs + k]`.
    pub values: Vec<Value>,
    /// Number of observed signals per cycle.
    pub nobs: usize,
    /// How many [`StmtExec`] records full-trace mode would have produced
    /// that this run never materialized (best-effort; 0 from the
    /// interpreter fallback).
    pub records_elided: u64,
}

impl VerdictTrace {
    /// Number of simulated cycles.
    pub fn len(&self) -> usize {
        self.values.len().checked_div(self.nobs).unwrap_or(0)
    }

    /// True when no cycles were simulated (or nothing was observed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Observed signal `k`'s value at `cycle`.
    pub fn value(&self, cycle: usize, k: usize) -> Value {
        self.values[cycle * self.nobs + k]
    }

    /// Cycles (ascending) where `self` and `other` disagree on observed
    /// column `k`, compared over the shorter run — the verdict-mode
    /// equivalent of zipping two [`Trace`]s at a target signal.
    pub fn divergence_cycles(&self, other: &VerdictTrace, k: usize) -> Vec<u32> {
        let n = self.len().min(other.len());
        (0..n)
            .filter(|&c| self.value(c, k) != other.value(c, k))
            .map(|c| c as u32)
            .collect()
    }

    /// True when any observed column disagrees in any shared cycle.
    pub fn differs_from(&self, other: &VerdictTrace) -> bool {
        let n = self.len().min(other.len());
        let nobs = self.nobs.min(other.nobs);
        (0..n).any(|c| (0..nobs).any(|k| self.value(c, k) != other.value(c, k)))
    }
}

impl PartialEq for VerdictTrace {
    fn eq(&self, other: &Self) -> bool {
        self.nobs == other.nobs && self.values == other.values
    }
}

/// A trace labelled by golden-vs-mutant comparison at a target output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TraceLabel {
    /// The bug symptomatized at the target output: a failure trace (`T_f`).
    Failing,
    /// The target output matched the golden design: a correct trace (`T_c`).
    Correct,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(stmt: u32, result: u64) -> StmtExec {
        StmtExec {
            stmt: StmtId(stmt),
            operands: Operands::from_values(&[Value::bit(true)]),
            result: Value::new(result, 1),
        }
    }

    #[test]
    fn executed_stmts_dedups() {
        let t = Trace {
            cycles: vec![
                CycleRecord {
                    cycle: 0,
                    signals: vec![Value::bit(false)].into(),
                    execs: vec![exec(0, 1), exec(1, 0)].into(),
                },
                CycleRecord {
                    cycle: 1,
                    signals: vec![Value::bit(true)].into(),
                    execs: vec![exec(0, 1)].into(),
                },
            ],
        };
        let s = t.executed_stmts();
        assert_eq!(s.len(), 2);
        assert_eq!(t.execs_of(StmtId(0)).len(), 2);
        assert_eq!(t.execs_of(StmtId(1)).len(), 1);
    }

    #[test]
    fn differs_at_detects_divergence() {
        let mk = |v: bool| Trace {
            cycles: vec![CycleRecord {
                cycle: 0,
                signals: vec![Value::bit(v)].into(),
                execs: Vec::new().into(),
            }],
        };
        assert!(mk(true).differs_at(&mk(false), SignalId(0)));
        assert!(!mk(true).differs_at(&mk(true), SignalId(0)));
    }

    #[test]
    fn operand_lookup() {
        let e = exec(0, 1);
        assert_eq!(e.operand(0), Some(Value::bit(true)));
        assert_eq!(e.operand(1), None);
        let wide = Operands::capture(6, |i| Value::new(i as u64, 8));
        assert_eq!(wide.len(), 6);
        assert_eq!(wide.get(5), Some(Value::new(5, 8)));
        assert_eq!(wide, Operands::from_values(wide.values()));
    }

    #[test]
    fn segmented_execs_match_contiguous() {
        // Records [a, b, c] described as segments [c], [a, b] must equal
        // the contiguous vector [c, a, b] — and reusing one descriptor
        // window twice shares records without copying.
        let arena = Arc::new(vec![exec(0, 1), exec(1, 0), exec(2, 1)]);
        let segs = Arc::new(vec![(2u32, 1u32), (0u32, 2u32), (2u32, 1u32)]);
        let seg = Execs::from_parts(arena.clone(), segs.clone(), 0, 2);
        assert_eq!(seg.len(), 3);
        let flat: Execs = vec![exec(2, 1), exec(0, 1), exec(1, 0)].into();
        assert_eq!(seg, flat);
        assert_ne!(seg, vec![exec(0, 1)].into());
        // A different descriptor window over the same arena.
        let tail = Execs::from_parts(arena, segs, 2, 1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail, vec![exec(2, 1)].into());
        assert!(Execs::from(Vec::new()).is_empty());
    }

    #[test]
    fn signal_set_sorts_dedups_and_positions() {
        let s = SignalSet::from_ids([SignalId(7), SignalId(2), SignalId(7), SignalId(4)]);
        assert_eq!(s.ids(), &[SignalId(2), SignalId(4), SignalId(7)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(SignalId(4)));
        assert!(!s.contains(SignalId(3)));
        assert_eq!(s.position(SignalId(7)), Some(2));
        assert_eq!(s.position(SignalId(0)), None);
        assert_eq!(
            s,
            SignalSet::from_ids([SignalId(4), SignalId(7), SignalId(2)])
        );
        assert!(SignalSet::from_ids([]).is_empty());
    }

    #[test]
    fn verdict_trace_divergence_and_equality() {
        let v = |vals: &[u64]| vals.iter().map(|&b| Value::new(b, 4)).collect::<Vec<_>>();
        let a = VerdictTrace {
            values: v(&[1, 2, 3, 4, 5, 6]),
            nobs: 2,
            records_elided: 10,
        };
        let b = VerdictTrace {
            values: v(&[1, 2, 3, 9, 5, 6]),
            nobs: 2,
            records_elided: 99,
        };
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(1, 0), Value::new(3, 4));
        assert_eq!(a.divergence_cycles(&b, 0), Vec::<u32>::new());
        assert_eq!(a.divergence_cycles(&b, 1), vec![1]);
        assert!(a.differs_from(&b));
        // records_elided is accounting, not identity.
        let mut c = a.clone();
        c.records_elided = 0;
        assert_eq!(a, c);
        assert_ne!(a, b);
        // Shorter-run comparison only covers shared cycles.
        let short = VerdictTrace {
            values: v(&[1, 2]),
            nobs: 2,
            records_elided: 0,
        };
        assert!(!a.differs_from(&short));
        assert_eq!(a.divergence_cycles(&short, 1), Vec::<u32>::new());
    }

    mod execs_properties {
        //! Property tests for `Execs` logical equality: a segmented view
        //! over a shared record arena must equal the flat `Vec<StmtExec>`
        //! holding the same logical record sequence — across arbitrary
        //! segmentations, descriptor re-use at window boundaries, and
        //! empty/full segments.
        use super::*;
        use proptest::prelude::*;

        /// Record arena + descriptor pool + the flat per-segment expansion.
        type BuiltArena = (Arc<Vec<StmtExec>>, Arc<Vec<(u32, u32)>>, Vec<Vec<StmtExec>>);

        /// Deterministically expands a seed into a record arena and a
        /// descriptor pool, returning also the flat expansion of the
        /// descriptor window `[seg_start, seg_start + seg_len)`.
        fn build(arena_len: usize, nsegs: usize, seed: u64) -> BuiltArena {
            let mut state = seed | 1;
            let mut next = move || {
                // xorshift64 — cheap, deterministic, no vendored-rand needed.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let records: Vec<StmtExec> = (0..arena_len)
                .map(|i| StmtExec {
                    stmt: StmtId((next() % 8) as u32),
                    operands: Operands::capture((next() % 6) as usize, |p| {
                        Value::new(next() ^ p as u64, 16)
                    }),
                    result: Value::new(next(), 8 + (i % 32) as u8),
                })
                .collect();
            // Descriptors may overlap, repeat, be empty, or span the whole
            // arena — exactly the shapes descriptor re-use produces.
            let segs: Vec<(u32, u32)> = (0..nsegs)
                .map(|_| {
                    let start = (next() as usize) % (arena_len + 1);
                    let len = (next() as usize) % (arena_len - start + 1);
                    (start as u32, len as u32)
                })
                .collect();
            let expansions = segs
                .iter()
                .map(|&(s, n)| records[s as usize..(s + n) as usize].to_vec())
                .collect();
            (Arc::new(records), Arc::new(segs), expansions)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any descriptor window equals the flat vector of its
            /// logical expansion, and lengths agree.
            #[test]
            fn segmented_equals_flat(
                arena_len in 1usize..12,
                nsegs in 1usize..8,
                seed in 0u64..u64::MAX,
                window in (0usize..8, 1usize..4),
            ) {
                let (records, segs, expansions) = build(arena_len, nsegs, seed);
                let seg_start = window.0 % nsegs;
                let seg_len = window.1.min(nsegs - seg_start);
                let view = Execs::from_parts(
                    records,
                    segs,
                    seg_start as u32,
                    seg_len as u32,
                );
                let flat: Vec<StmtExec> = expansions[seg_start..seg_start + seg_len]
                    .iter()
                    .flatten()
                    .cloned()
                    .collect();
                prop_assert_eq!(view.len(), flat.len());
                prop_assert_eq!(view.is_empty(), flat.is_empty());
                prop_assert_eq!(view, Execs::from(flat));
            }

            /// Two adjacent windows sharing a descriptor boundary expand to
            /// the same records as the combined window — descriptor re-use
            /// at boundaries never drops or duplicates records.
            #[test]
            fn windows_compose_at_boundaries(
                arena_len in 1usize..10,
                nsegs in 2usize..8,
                seed in 0u64..u64::MAX,
                cut in 1usize..7,
            ) {
                let (records, segs, expansions) = build(arena_len, nsegs, seed);
                let cut = 1 + (cut % (nsegs - 1));
                let left = Execs::from_parts(records.clone(), segs.clone(), 0, cut as u32);
                let right = Execs::from_parts(
                    records.clone(),
                    segs.clone(),
                    cut as u32,
                    (nsegs - cut) as u32,
                );
                let whole = Execs::from_parts(records, segs, 0, nsegs as u32);
                let glued: Vec<StmtExec> =
                    left.iter().chain(right.iter()).cloned().collect();
                prop_assert_eq!(whole.len(), left.len() + right.len());
                prop_assert_eq!(whole, Execs::from(glued));
                let flat_all: Vec<StmtExec> =
                    expansions.iter().flatten().cloned().collect();
                prop_assert_eq!(left.iter().count() + right.iter().count(), flat_all.len());
            }

            /// Perturbing any single expanded record breaks equality —
            /// logical equality is exact, not structural-shape equality.
            #[test]
            fn equality_is_exact(
                arena_len in 1usize..8,
                nsegs in 1usize..5,
                seed in 0u64..u64::MAX,
                victim in 0usize..64,
            ) {
                let (records, segs, expansions) = build(arena_len, nsegs, seed);
                let view = Execs::from_parts(records, segs, 0, nsegs as u32);
                let mut flat: Vec<StmtExec> =
                    expansions.iter().flatten().cloned().collect();
                if flat.is_empty() {
                    // All-empty segments: equal to the empty flat vector.
                    prop_assert_eq!(view, Execs::from(flat));
                } else {
                    let i = victim % flat.len();
                    let bumped = flat[i].result.bits().wrapping_add(1);
                    flat[i].result = Value::new(bumped, flat[i].result.width());
                    prop_assert_ne!(view, Execs::from(flat));
                }
            }
        }
    }
}
