//! Simulation traces: per-cycle signal values and per-statement execution
//! records — the free supervision VeriBug trains on.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::netlist::{Netlist, SignalId};
use crate::value::Value;
use verilog::StmtId;

/// One execution of one assignment statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StmtExec {
    /// Which statement executed.
    pub stmt: StmtId,
    /// Cycle index the execution belongs to.
    pub cycle: u32,
    /// Values of the distinct signals read by the right-hand side (and any
    /// LHS index expression), keyed by name, at execution time.
    ///
    /// Names are interned `Arc<str>`s shared with the netlist's per-statement
    /// read sets, so recording an execution never allocates string storage.
    pub operands: Vec<(Arc<str>, Value)>,
    /// The value assigned to the left-hand side.
    pub result: Value,
}

impl StmtExec {
    /// The recorded value of a named operand, if the statement read it.
    pub fn operand(&self, name: &str) -> Option<Value> {
        self.operands
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| *v)
    }
}

/// A per-cycle view of all signal values, backed by a run-wide arena.
///
/// The simulator allocates **one** `Arc<[Value]>` per run and hands every
/// cycle a `(start, len)` window into it, so long testbenches no longer pay
/// one value-vector allocation per cycle. The type dereferences to
/// `[Value]`, so existing slice-style access (`signals[i]`, `.iter()`)
/// keeps working; equality compares the viewed values, not arena identity.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    arena: Arc<[Value]>,
    start: usize,
    len: usize,
}

impl Snapshot {
    /// A window of `len` values starting at `start` in a shared arena.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the arena.
    pub fn view(arena: Arc<[Value]>, start: usize, len: usize) -> Self {
        assert!(start + len <= arena.len(), "snapshot window out of bounds");
        Snapshot { arena, start, len }
    }

    /// The viewed values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.arena[self.start..self.start + self.len]
    }
}

impl std::ops::Deref for Snapshot {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<Value>> for Snapshot {
    fn from(values: Vec<Value>) -> Self {
        let len = values.len();
        Snapshot {
            arena: values.into(),
            start: 0,
            len,
        }
    }
}

/// Everything observed in one clock cycle.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CycleRecord {
    /// Cycle index (0-based).
    pub cycle: u32,
    /// Post-settle value of every signal, indexed by [`SignalId`].
    pub signals: Snapshot,
    /// Statement executions this cycle (combinational settle + clock edge).
    pub execs: Vec<StmtExec>,
}

impl CycleRecord {
    /// The settled value of a signal this cycle.
    pub fn value(&self, id: SignalId) -> Value {
        self.signals[id.0 as usize]
    }
}

/// A complete simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    /// Per-cycle records in time order.
    pub cycles: Vec<CycleRecord>,
}

impl Trace {
    /// The sequence of settled values a signal took, one per cycle.
    pub fn signal_values(&self, id: SignalId) -> Vec<Value> {
        self.cycles.iter().map(|c| c.value(id)).collect()
    }

    /// Looks up a signal by name in `netlist` and returns its per-cycle values.
    pub fn values_of(&self, netlist: &Netlist, name: &str) -> Option<Vec<Value>> {
        netlist.signal_id(name).map(|id| self.signal_values(id))
    }

    /// Every statement that executed at least once in the trace.
    pub fn executed_stmts(&self) -> BTreeSet<StmtId> {
        self.cycles
            .iter()
            .flat_map(|c| c.execs.iter().map(|e| e.stmt))
            .collect()
    }

    /// All executions of a given statement across the trace.
    pub fn execs_of(&self, stmt: StmtId) -> Vec<&StmtExec> {
        self.cycles
            .iter()
            .flat_map(|c| c.execs.iter().filter(move |e| e.stmt == stmt))
            .collect()
    }

    /// True when `self` and `other` disagree on `signal` in any cycle
    /// (compared over the shorter of the two traces).
    pub fn differs_at(&self, other: &Trace, signal: SignalId) -> bool {
        self.cycles
            .iter()
            .zip(&other.cycles)
            .any(|(a, b)| a.value(signal) != b.value(signal))
    }

    /// Number of simulated cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when no cycles were simulated.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// A trace labelled by golden-vs-mutant comparison at a target output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TraceLabel {
    /// The bug symptomatized at the target output: a failure trace (`T_f`).
    Failing,
    /// The target output matched the golden design: a correct trace (`T_c`).
    Correct,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(stmt: u32, cycle: u32, result: u64) -> StmtExec {
        StmtExec {
            stmt: StmtId(stmt),
            cycle,
            operands: vec![(Arc::from("a"), Value::bit(true))],
            result: Value::new(result, 1),
        }
    }

    #[test]
    fn executed_stmts_dedups() {
        let t = Trace {
            cycles: vec![
                CycleRecord {
                    cycle: 0,
                    signals: vec![Value::bit(false)].into(),
                    execs: vec![exec(0, 0, 1), exec(1, 0, 0)],
                },
                CycleRecord {
                    cycle: 1,
                    signals: vec![Value::bit(true)].into(),
                    execs: vec![exec(0, 1, 1)],
                },
            ],
        };
        let s = t.executed_stmts();
        assert_eq!(s.len(), 2);
        assert_eq!(t.execs_of(StmtId(0)).len(), 2);
        assert_eq!(t.execs_of(StmtId(1)).len(), 1);
    }

    #[test]
    fn differs_at_detects_divergence() {
        let mk = |v: bool| Trace {
            cycles: vec![CycleRecord {
                cycle: 0,
                signals: vec![Value::bit(v)].into(),
                execs: vec![],
            }],
        };
        assert!(mk(true).differs_at(&mk(false), SignalId(0)));
        assert!(!mk(true).differs_at(&mk(true), SignalId(0)));
    }

    #[test]
    fn operand_lookup() {
        let e = exec(0, 0, 1);
        assert_eq!(e.operand("a"), Some(Value::bit(true)));
        assert_eq!(e.operand("b"), None);
    }
}
