//! VCD (Value Change Dump) export for traces.
//!
//! Lets any recorded [`Trace`] be inspected in standard waveform viewers
//! (GTKWave & co.), which is how a verification engineer would consume the
//! failing runs VeriBug localizes from.

use std::fmt::Write as _;

use crate::netlist::Netlist;
use crate::trace::Trace;
use crate::value::Value;

/// Renders a trace as VCD text.
///
/// One VCD timestep spans `timescale_ns` nanoseconds per simulated cycle;
/// all signals live under a scope named after the module.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use veribug_sim::{to_vcd, Simulator, TestbenchGen};
///
/// let unit = verilog::parse(
///     "module m(input clk, input d, output reg q);\n\
///      always @(posedge clk) q <= d;\nendmodule",
/// )?;
/// let mut sim = Simulator::new(unit.top())?;
/// let stim = TestbenchGen::new(1).generate(sim.netlist(), 8);
/// let trace = sim.run(&stim)?;
/// let vcd = to_vcd(sim.netlist(), &trace, 10);
/// assert!(vcd.starts_with("$date"));
/// assert!(vcd.contains("$var wire 1"));
/// # Ok(())
/// # }
/// ```
pub fn to_vcd(netlist: &Netlist, trace: &Trace, timescale_ns: u32) -> String {
    let mut out = String::new();
    out.push_str("$date\n  (veribug-sim)\n$end\n");
    out.push_str("$version\n  veribug-sim VCD export\n$end\n");
    let _ = writeln!(out, "$timescale {timescale_ns}ns $end");
    let _ = writeln!(out, "$scope module {} $end", netlist.module.name);
    let ids: Vec<String> = (0..netlist.signal_count()).map(vcd_id).collect();
    for (i, sig) in netlist.signals().iter().enumerate() {
        let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, ids[i], sig.name);
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut last: Vec<Option<Value>> = vec![None; netlist.signal_count()];
    for cyc in &trace.cycles {
        let _ = writeln!(out, "#{}", u64::from(cyc.cycle) * u64::from(timescale_ns));
        for (i, value) in cyc.signals.iter().enumerate() {
            if last[i] == Some(*value) {
                continue;
            }
            last[i] = Some(*value);
            if value.width() == 1 {
                let _ = writeln!(out, "{}{}", u8::from(value.lsb()), ids[i]);
            } else {
                let _ = writeln!(out, "b{:b} {}", value, ids[i]);
            }
        }
    }
    // Close the waveform one step after the last cycle.
    let _ = writeln!(
        out,
        "#{}",
        u64::from(trace.len() as u32) * u64::from(timescale_ns)
    );
    out
}

/// Generates a printable short identifier (`!`, `"`, ..., `!!`, ...).
fn vcd_id(mut n: usize) -> String {
    const FIRST: u8 = b'!';
    const COUNT: usize = 94; // printable ASCII minus space
    let mut s = String::new();
    loop {
        s.push((FIRST + (n % COUNT) as u8) as char);
        n /= COUNT;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Simulator;
    use crate::testbench::{InputVector, Stimulus};

    fn run(src: &str, vectors: Vec<Vec<(&str, u64)>>) -> (Simulator, Trace) {
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let stim = Stimulus {
            vectors: vectors
                .into_iter()
                .map(|v| InputVector {
                    assigns: v.into_iter().map(|(n, b)| (n.to_owned(), b)).collect(),
                })
                .collect(),
        };
        let t = sim.run(&stim).unwrap();
        (sim, t)
    }

    #[test]
    fn header_declares_all_signals() {
        let (sim, t) = run(
            "module m(input a, input [3:0] b, output y);\nassign y = a ^ b[0];\nendmodule",
            vec![vec![("a", 1), ("b", 5)]],
        );
        let vcd = to_vcd(sim.netlist(), &t, 10);
        assert!(vcd.contains("$var wire 1 ! a $end"), "{vcd}");
        assert!(vcd.contains("$var wire 4"), "{vcd}");
        assert!(vcd.contains("$scope module m $end"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let (sim, t) = run(
            "module m(input a, output y);\nassign y = ~a;\nendmodule",
            vec![vec![("a", 0)], vec![("a", 0)], vec![("a", 1)]],
        );
        let vcd = to_vcd(sim.netlist(), &t, 10);
        // `a` is dumped at #0 and again only when it changes at #20.
        let a_changes = vcd.lines().filter(|l| *l == "0!" || *l == "1!").count();
        assert_eq!(a_changes, 2, "{vcd}");
        assert!(vcd.contains("#20"));
    }

    #[test]
    fn multibit_values_use_binary_format() {
        let (sim, t) = run(
            "module m(input [3:0] b, output [3:0] y);\nassign y = b;\nendmodule",
            vec![vec![("b", 0b1010)]],
        );
        let vcd = to_vcd(sim.netlist(), &t, 10);
        assert!(vcd.contains("b1010 "), "{vcd}");
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..500 {
            let id = vcd_id(n);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94), "!!");
    }
}
