//! The bit-parallel batch execution engine: up to [`LANES`] stimuli per op.
//!
//! [`BatchEngine::build`] lowers a netlist into the same expression bytecode
//! as the scalar compiled engine — it literally drives
//! [`crate::compile::Compiler`] for expressions and assignments, so slot
//! allocation, static widths, and every fallback condition are decided in
//! one place — but replaces the scalar engine's jump-encoded `if`/`case`
//! with **structured mask operations**. Each signal and slab slot holds a
//! [`BatchValue`] (one `u64` word per lane); one ALU op evaluates all lanes
//! at once. Data-dependent control flow keeps a per-lane activity mask:
//! when lanes disagree on a branch condition, both sides execute under
//! complementary masks and only the active lanes of each side observe
//! assignments, so per-lane [`StmtExec`] records and final traces stay
//! bit-identical to running each stimulus through the scalar engine.
//!
//! Divergence bookkeeping is plain word arithmetic because a mask is one
//! `u64` (bit `l` = lane `l` active). Empty-mask branch bodies are skipped
//! entirely via the structured ops' forward offsets, so converged batches
//! pay no masking overhead beyond one test per branch.
//!
//! The scalar engine's dirty-set gate survives here **per lane**: every
//! signal keeps a changed-lanes mask, a process executes under a root mask
//! of just its dirty lanes, and a clean lane re-uses its previous segment
//! descriptor into the run-wide record arena — an 8-byte copy where the
//! scalar engine's cache replay memcpys whole record runs. Re-executing
//! nothing for a clean lane is sound for values too: its fanin is
//! unchanged, so recomputed temporaries are identical and assignments are
//! masked off.

use std::sync::Arc;

use crate::cancel::CancelToken;
use crate::compile::{Analysis, AssignMeta, Compiler, Op, SelKind};
use crate::error::SimError;
use crate::eval::{eval_binary_batch, eval_unary_batch, Write};
use crate::metrics;
use crate::netlist::{Netlist, Process, SignalRole};
use crate::testbench::Stimulus;
use crate::trace::{Operands, SignalSet, StmtExec, Trace, VerdictTrace};
use crate::value::{BatchValue, Value, LANES};
use verilog::Stmt;

/// One batch instruction: a scalar expression/assign op evaluated
/// lane-wise, or a structured mask-control op.
#[derive(Debug, Clone, Copy)]
enum BOp {
    /// Any non-jump, non-assign scalar [`Op`], evaluated on all lanes.
    Scalar(Op),
    /// Masked assignment: resolve + record + apply per active lane.
    Assign { rhs: u16, meta: u32 },
    /// `if`: split the current mask on `slab[cond]`'s per-lane truthiness.
    /// When no lane takes the then-side, jump to `else_at` (the matching
    /// [`BOp::Else`]).
    BranchIf { cond: u16, else_at: u32 },
    /// Swap to the else-side mask; jump to `end_at` (the matching
    /// [`BOp::EndIf`]) when no lane takes it.
    Else { end_at: u32 },
    /// Pop the `if` frame and restore the enclosing mask.
    EndIf,
    /// `case`: open a frame remembering the subject slot and the lanes
    /// still unmatched.
    CaseBegin { subj: u16 },
    /// One arm: lanes whose subject equals any of
    /// `case_labels[labels_start..labels_start + labels_len]` (raw-bit
    /// compare) become active; they are removed from the unmatched set.
    /// Jump to `next_at` (the next arm/default) when no lane matches.
    CaseArm {
        labels_start: u32,
        labels_len: u32,
        next_at: u32,
    },
    /// The default arm: all still-unmatched lanes become active; jump to
    /// `end_at` (the matching [`BOp::CaseEnd`]) when there are none.
    CaseDefault { end_at: u32 },
    /// Pop the `case` frame and restore the enclosing mask.
    CaseEnd,
}

/// A control-flow frame on the mask stack.
#[derive(Debug, Clone, Copy)]
enum Frame {
    If {
        saved: u64,
        else_mask: u64,
    },
    Case {
        saved: u64,
        remaining: u64,
        subj: u16,
        taken: u8,
    },
}

/// Everything immutable after `build`.
#[derive(Debug)]
struct BatchCode {
    /// One program per combinational process, in source order.
    comb: Vec<Vec<BOp>>,
    /// One program per sequential process, in source order.
    seq: Vec<Vec<BOp>>,
    /// Topological evaluation order over `comb` indices.
    order: Vec<u32>,
    /// Per-comb-process exposed-read signal ids (the per-lane dirty gate).
    fanin: Vec<Vec<u32>>,
    metas: Vec<AssignMeta>,
    /// Side pool of case-label slot indices referenced by [`BOp::CaseArm`].
    case_labels: Vec<u16>,
    /// Slab size: the widest program's slot count.
    slots: usize,
}

/// Reusable per-run scratch.
#[derive(Debug, Default)]
struct BatchState {
    slab: Vec<BatchValue>,
    /// Per-lane record scratch for the currently executing program; drained
    /// into the run-wide record arena after each process (combinational)
    /// or each edge (sequential).
    scratch: Vec<Vec<StmtExec>>,
    /// Per-lane deferred non-blocking writes, committed in push order.
    deferred: Vec<Vec<Write>>,
    /// The mask stack.
    frames: Vec<Frame>,
}

/// A compiled batch simulator for one netlist. The immutable [`BatchCode`]
/// is shared (`Arc`) so forks are an `Arc` bump, mirroring the scalar
/// engine.
#[derive(Debug)]
pub(crate) struct BatchEngine {
    code: Arc<BatchCode>,
    state: BatchState,
}

impl BatchEngine {
    /// Compiles a netlist against a precomputed [`Analysis`], or `None`
    /// when lowering falls back (same conditions as the scalar engine, by
    /// construction: the expression lowerer is shared).
    pub(crate) fn build(netlist: &Netlist, analysis: &Analysis) -> Option<BatchEngine> {
        let mut metas = Vec::new();
        let mut case_labels = Vec::new();
        let mut slots = 0usize;
        let mut compile = |body: &Process| -> Option<Vec<BOp>> {
            let mut c = BatchCompiler {
                inner: Compiler {
                    netlist,
                    ops: Vec::new(),
                    metas: &mut metas,
                    next_slot: 0,
                },
                bops: Vec::new(),
                case_labels: &mut case_labels,
                synced: 0,
            };
            match body {
                Process::Assign(a) => {
                    c.inner.assign(a)?;
                    c.sync();
                }
                Process::Comb(blk) | Process::Seq(blk) => c.stmts(&blk.body)?,
            }
            slots = slots.max(c.inner.next_slot as usize);
            Some(c.bops)
        };
        let comb: Vec<Vec<BOp>> = netlist
            .comb
            .iter()
            .map(&mut compile)
            .collect::<Option<_>>()?;
        let seq: Vec<Vec<BOp>> = netlist
            .seq
            .iter()
            .map(&mut compile)
            .collect::<Option<_>>()?;

        Some(BatchEngine {
            code: Arc::new(BatchCode {
                comb,
                seq,
                order: analysis.order.clone(),
                fanin: analysis.fanin.clone(),
                metas,
                case_labels,
                slots,
            }),
            state: BatchState::default(),
        })
    }

    /// An independent runnable engine sharing this one's compiled code.
    pub(crate) fn fork(&self) -> BatchEngine {
        BatchEngine {
            code: Arc::clone(&self.code),
            state: BatchState::default(),
        }
    }

    /// Runs up to [`LANES`] equal-length stimuli from the all-zero reset
    /// state, one lane each, and returns one trace per stimulus in order.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSignal`] / [`SimError::NotAnInput`] for bad
    /// stimulus assignments — reported for the same (stimulus, cycle,
    /// assignment) the scalar sequential loop would hit first — and
    /// [`SimError::Cancelled`] when `cancel` fires between cycles (the
    /// whole batch is abandoned, matching the scalar loop where a fired
    /// token fails every remaining run).
    ///
    /// # Panics
    ///
    /// Panics if `stimuli` is empty, longer than [`LANES`], or of uneven
    /// cycle counts — [`crate::Simulator::run_batch`] chunks arbitrary
    /// stimulus sets to meet this contract.
    pub(crate) fn run(
        &mut self,
        netlist: &Netlist,
        stimuli: &[Stimulus],
        cancel: &CancelToken,
    ) -> Result<Vec<Trace>, SimError> {
        let fill = stimuli.len();
        assert!(
            (1..=LANES).contains(&fill),
            "batch fill {fill} out of 1..={LANES}"
        );
        let ncycles = stimuli[0].vectors.len();
        assert!(
            stimuli.iter().all(|s| s.vectors.len() == ncycles),
            "batched stimuli must have equal cycle counts"
        );
        let fill_mask = if fill == LANES {
            u64::MAX
        } else {
            (1u64 << fill) - 1
        };

        // Pre-resolve every input assignment in the order the scalar
        // sequential loop would encounter them (stimulus-major), so the
        // first validation error matches the scalar engine's exactly.
        // `input_ids[l]` is lane `l`'s signal ids concatenated over cycles.
        // Stimuli drive the same handful of inputs every cycle, so a small
        // linear-scan memo replaces ~lanes*cycles*inputs map lookups with
        // one lookup per distinct name.
        let mut memo: Vec<(&str, u32)> = Vec::new();
        let mut input_ids: Vec<Vec<u32>> = Vec::with_capacity(fill);
        for stim in stimuli {
            let mut ids = Vec::new();
            for vector in &stim.vectors {
                for (name, _) in &vector.assigns {
                    let id = match memo.iter().find(|(n, _)| *n == name.as_str()) {
                        Some(&(_, id)) => id,
                        None => {
                            let id = netlist
                                .signal_id(name)
                                .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                            if netlist.signal(id).role != SignalRole::Input {
                                return Err(SimError::NotAnInput { name: name.clone() });
                            }
                            memo.push((name.as_str(), id.0));
                            id.0
                        }
                    };
                    ids.push(id);
                }
            }
            input_ids.push(ids);
        }
        let mut cursors = vec![0usize; fill];

        let code = &*self.code;
        let ncomb = code.comb.len();
        let nsig = netlist.signal_count();
        let state = &mut self.state;
        let mut values: Vec<BatchValue> = netlist
            .signals()
            .iter()
            .map(|s| BatchValue::zeros(s.width))
            .collect();
        state.slab.clear();
        state.slab.resize(code.slots, BatchValue::zeros(1));
        state.scratch.resize_with(LANES, Vec::new);
        state.deferred.resize_with(LANES, Vec::new);
        for v in &mut state.scratch {
            v.clear();
        }
        for v in &mut state.deferred {
            v.clear();
        }

        let mut arena: Vec<Value> = Vec::with_capacity(ncycles * fill * nsig);
        // The run-wide record arena and segment-descriptor pool: every
        // fresh record of the run lands in `records` exactly once; each
        // (cycle, lane) execution list is a `spans` window over `segs`
        // descriptors into it. Clean lanes re-use their previous
        // descriptor, so nothing is copied for them.
        let mut records: Vec<StmtExec> = Vec::new();
        let mut segs: Vec<(u32, u32)> = Vec::new();
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(ncycles * fill);
        // Last fresh descriptor per (comb process, lane).
        let mut last_desc: Vec<(u32, u32)> = vec![(0, 0); ncomb * LANES];
        // Per-signal changed-lanes masks — the scalar engine's dirty set,
        // one bit per lane. Everything starts dirty, like the scalar
        // engine's reset state.
        let mut changed: Vec<u64> = vec![fill_mask; nsig];
        let mut m_divergences = 0u64;
        let mut m_ops = 0u64;

        for cycle_idx in 0..ncycles {
            let cycle = cycle_idx as u32;
            if cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }

            // 1. Apply inputs lane by lane (ids were pre-resolved above);
            // a changed input seeds the lane's dirty bit.
            for (l, stim) in stimuli.iter().enumerate() {
                let vector = &stim.vectors[cycle_idx];
                let ids = &input_ids[l][cursors[l]..cursors[l] + vector.assigns.len()];
                cursors[l] += vector.assigns.len();
                for ((_, bits), &id) in vector.assigns.iter().zip(ids) {
                    let v = &mut values[id as usize];
                    let next = *bits & Value::mask(v.width());
                    let word = &mut v.words_mut()[l];
                    if *word != next {
                        *word = next;
                        changed[id as usize] |= 1 << l;
                    }
                }
            }

            // 2. One levelized combinational pass. Each process runs under
            // a root mask of just its dirty lanes (fanin changed); a lane
            // outside the mask neither writes nor records — its previous
            // segment descriptor is re-used below. Cycle 0 forces a full
            // execution so constant processes (empty fanin) record once.
            for &pi in &code.order {
                let pi = pi as usize;
                let mut dmask = 0u64;
                for &sig in &code.fanin[pi] {
                    dmask |= changed[sig as usize];
                }
                dmask &= fill_mask;
                if cycle_idx == 0 {
                    dmask = fill_mask;
                }
                if dmask == 0 {
                    continue;
                }
                exec_bops::<true>(
                    &code.comb[pi],
                    code,
                    &mut state.slab,
                    &mut values,
                    &mut state.scratch,
                    fill,
                    dmask,
                    None,
                    &mut state.frames,
                    &mut changed,
                    &mut m_divergences,
                    &mut m_ops,
                    &mut [0; LANES],
                );
                // Fresh records for the dirty lanes move into the arena
                // once; the descriptor is all later cycles need.
                let mut lanes = dmask;
                while lanes != 0 {
                    let l = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    let start = records.len() as u32;
                    records.append(&mut state.scratch[l]);
                    last_desc[pi * LANES + l] = (start, records.len() as u32 - start);
                }
            }

            // 3. Snapshot pre-edge values: lane-extract into the run-wide
            // arena, cycle-major then lane-major, so lane `l`'s cycle `c`
            // window starts at `(c * fill + l) * nsig`.
            for l in 0..fill {
                for v in &values {
                    arena.push(v.lane(l));
                }
            }

            // Changes are consumed; anything the edge writes below seeds
            // the next cycle's gate (scalar-engine parity).
            for c in changed.iter_mut() {
                *c = 0;
            }

            // 4. Clock edge: sequential programs always execute in full
            // and record fresh; non-blocking writes defer per lane and
            // commit in push order, like the scalar engine.
            for prog in &code.seq {
                exec_bops::<true>(
                    prog,
                    code,
                    &mut state.slab,
                    &mut values,
                    &mut state.scratch,
                    fill,
                    fill_mask,
                    Some(state.deferred.as_mut_slice()),
                    &mut state.frames,
                    &mut changed,
                    &mut m_divergences,
                    &mut m_ops,
                    &mut [0; LANES],
                );
            }
            for (l, writes) in state.deferred.iter_mut().enumerate().take(fill) {
                for w in writes.drain(..) {
                    let t = &mut values[w.target.0 as usize];
                    let cur = t.lane(l);
                    let next = w.apply(cur);
                    if next != cur {
                        t.set_lane(l, next);
                        changed[w.target.0 as usize] |= 1 << l;
                    }
                }
            }

            // 5. Describe each lane's cycle: combinational descriptors in
            // source-process order (fresh or re-used), then this edge's
            // sequential records.
            for l in 0..fill {
                let seg_start = segs.len() as u32;
                for p in 0..ncomb {
                    let d = last_desc[p * LANES + l];
                    if d.1 != 0 {
                        segs.push(d);
                    }
                }
                let seq_rec = &mut state.scratch[l];
                if !seq_rec.is_empty() {
                    let start = records.len() as u32;
                    records.append(seq_rec);
                    segs.push((start, records.len() as u32 - start));
                }
                spans.push((seg_start, segs.len() as u32 - seg_start));
            }

            // Cycle 0 executes every process on every lane, so its record
            // and descriptor counts bound the per-cycle worst case; one
            // up-front reserve avoids doubling-growth memcpys of the
            // run-wide arena on later cycles.
            if cycle_idx == 0 && ncycles > 1 {
                records.reserve(records.len() * (ncycles - 1));
                segs.reserve(segs.len() * (ncycles - 1));
            }
        }

        metrics::CYCLES.add((ncycles * fill) as u64);
        metrics::RUNS_BATCH.add(fill as u64);
        metrics::BATCH_LANES.record(fill as u64);
        metrics::MASK_DIVERGENCES.add(m_divergences);
        metrics::BYTECODE_OPS.add(m_ops);
        metrics::SEQ_EVALS.add((ncycles * code.seq.len()) as u64);

        // Assemble one trace per lane. Snapshots view the shared value
        // arena at lane-strided offsets; execution lists view the shared
        // record arena through their descriptor spans. Equality compares
        // viewed contents, so these compare equal to scalar traces.
        let arena: Arc<[Value]> = arena.into();
        let records = Arc::new(records);
        let segs = Arc::new(segs);
        let mut lane_cycles: Vec<Vec<crate::trace::CycleRecord>> =
            (0..fill).map(|_| Vec::with_capacity(ncycles)).collect();
        for c in 0..ncycles {
            for (l, cycles) in lane_cycles.iter_mut().enumerate() {
                let (seg_start, seg_len) = spans[c * fill + l];
                cycles.push(crate::trace::CycleRecord {
                    cycle: c as u32,
                    signals: crate::trace::Snapshot::view(
                        Arc::clone(&arena),
                        (c * fill + l) * nsig,
                        nsig,
                    ),
                    execs: crate::trace::Execs::from_parts(
                        Arc::clone(&records),
                        Arc::clone(&segs),
                        seg_start,
                        seg_len,
                    ),
                });
            }
        }
        Ok(lane_cycles
            .into_iter()
            .map(|cycles| Trace { cycles })
            .collect())
    }

    /// Runs up to [`LANES`] equal-length stimuli in verdict mode: the same
    /// lane-parallel value evolution, input validation, per-lane dirty
    /// gate, and cancellation behavior as [`BatchEngine::run`], but no
    /// record arena, no descriptor pool, and per-cycle snapshots of only
    /// the `observed` signals — the hot loop is pure compute plus an
    /// O(fill × observed) lane extract per cycle.
    ///
    /// # Errors / Panics
    ///
    /// Exactly as [`BatchEngine::run`], at the same points.
    pub(crate) fn run_verdict(
        &mut self,
        netlist: &Netlist,
        stimuli: &[Stimulus],
        cancel: &CancelToken,
        observed: &SignalSet,
    ) -> Result<Vec<VerdictTrace>, SimError> {
        let fill = stimuli.len();
        assert!(
            (1..=LANES).contains(&fill),
            "batch fill {fill} out of 1..={LANES}"
        );
        let ncycles = stimuli[0].vectors.len();
        assert!(
            stimuli.iter().all(|s| s.vectors.len() == ncycles),
            "batched stimuli must have equal cycle counts"
        );
        let fill_mask = if fill == LANES {
            u64::MAX
        } else {
            (1u64 << fill) - 1
        };

        // Pre-resolve inputs exactly as the full-trace run does, so the
        // first validation error is identical.
        let mut memo: Vec<(&str, u32)> = Vec::new();
        let mut input_ids: Vec<Vec<u32>> = Vec::with_capacity(fill);
        for stim in stimuli {
            let mut ids = Vec::new();
            for vector in &stim.vectors {
                for (name, _) in &vector.assigns {
                    let id = match memo.iter().find(|(n, _)| *n == name.as_str()) {
                        Some(&(_, id)) => id,
                        None => {
                            let id = netlist
                                .signal_id(name)
                                .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                            if netlist.signal(id).role != SignalRole::Input {
                                return Err(SimError::NotAnInput { name: name.clone() });
                            }
                            memo.push((name.as_str(), id.0));
                            id.0
                        }
                    };
                    ids.push(id);
                }
            }
            input_ids.push(ids);
        }
        let mut cursors = vec![0usize; fill];

        let code = &*self.code;
        let nsig = netlist.signal_count();
        let state = &mut self.state;
        let mut values: Vec<BatchValue> = netlist
            .signals()
            .iter()
            .map(|s| BatchValue::zeros(s.width))
            .collect();
        state.slab.clear();
        state.slab.resize(code.slots, BatchValue::zeros(1));
        state.deferred.resize_with(LANES, Vec::new);
        for v in &mut state.deferred {
            v.clear();
        }

        let nobs = observed.len();
        let mut obs: Vec<Vec<Value>> = (0..fill)
            .map(|_| Vec::with_capacity(ncycles * nobs))
            .collect();
        let mut changed: Vec<u64> = vec![fill_mask; nsig];
        let mut elided = [0u64; LANES];
        let mut m_divergences = 0u64;
        let mut m_ops = 0u64;

        for cycle_idx in 0..ncycles {
            let cycle = cycle_idx as u32;
            if cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }

            for (l, stim) in stimuli.iter().enumerate() {
                let vector = &stim.vectors[cycle_idx];
                let ids = &input_ids[l][cursors[l]..cursors[l] + vector.assigns.len()];
                cursors[l] += vector.assigns.len();
                for ((_, bits), &id) in vector.assigns.iter().zip(ids) {
                    let v = &mut values[id as usize];
                    let next = *bits & Value::mask(v.width());
                    let word = &mut v.words_mut()[l];
                    if *word != next {
                        *word = next;
                        changed[id as usize] |= 1 << l;
                    }
                }
            }

            // Levelized comb pass under the same per-lane dirty gate; the
            // only difference from the full-trace loop is that nothing is
            // recorded and no descriptors exist to refresh.
            for &pi in &code.order {
                let pi = pi as usize;
                let mut dmask = 0u64;
                for &sig in &code.fanin[pi] {
                    dmask |= changed[sig as usize];
                }
                dmask &= fill_mask;
                if cycle_idx == 0 {
                    dmask = fill_mask;
                }
                if dmask == 0 {
                    continue;
                }
                exec_bops::<false>(
                    &code.comb[pi],
                    code,
                    &mut state.slab,
                    &mut values,
                    &mut [],
                    fill,
                    dmask,
                    None,
                    &mut state.frames,
                    &mut changed,
                    &mut m_divergences,
                    &mut m_ops,
                    &mut elided,
                );
            }

            // The O(fill × observed) snapshot: the whole point.
            for (l, lane_obs) in obs.iter_mut().enumerate() {
                for &id in observed.ids() {
                    lane_obs.push(values[id.0 as usize].lane(l));
                }
            }

            for c in changed.iter_mut() {
                *c = 0;
            }

            for prog in &code.seq {
                exec_bops::<false>(
                    prog,
                    code,
                    &mut state.slab,
                    &mut values,
                    &mut [],
                    fill,
                    fill_mask,
                    Some(state.deferred.as_mut_slice()),
                    &mut state.frames,
                    &mut changed,
                    &mut m_divergences,
                    &mut m_ops,
                    &mut elided,
                );
            }
            for (l, writes) in state.deferred.iter_mut().enumerate().take(fill) {
                for w in writes.drain(..) {
                    let t = &mut values[w.target.0 as usize];
                    let cur = t.lane(l);
                    let next = w.apply(cur);
                    if next != cur {
                        t.set_lane(l, next);
                        changed[w.target.0 as usize] |= 1 << l;
                    }
                }
            }
        }

        metrics::CYCLES.add((ncycles * fill) as u64);
        metrics::RUNS_BATCH.add(fill as u64);
        metrics::RUNS_VERDICT.add(fill as u64);
        metrics::BATCH_LANES.record(fill as u64);
        metrics::MASK_DIVERGENCES.add(m_divergences);
        metrics::BYTECODE_OPS.add(m_ops);
        metrics::SEQ_EVALS.add((ncycles * code.seq.len()) as u64);
        metrics::RECORDS_ELIDED.add(elided[..fill].iter().sum());

        Ok(obs
            .into_iter()
            .zip(&elided)
            .map(|(values, &records_elided)| VerdictTrace {
                values,
                nobs,
                records_elided,
            })
            .collect())
    }
}

/// Executes one batch program under a root activity mask (the caller's
/// per-lane dirty mask for combinational processes, the full fill mask for
/// sequential ones). Infallible by construction, like the scalar
/// `exec_ops`. Value-changing writes OR the written lane into the
/// signal's `changed` mask, feeding the per-lane dirty gate.
///
/// `RECORD` selects trace mode at monomorphization time: `true` pushes a
/// per-lane [`StmtExec`] into `recorders[l]` for every active-lane
/// assignment (full-trace mode), `false` compiles the capture away and
/// tallies per-lane elisions in `elided` instead (verdict mode). Masks,
/// values, and deferred writes evolve identically either way.
#[allow(clippy::too_many_arguments)]
fn exec_bops<const RECORD: bool>(
    bops: &[BOp],
    code: &BatchCode,
    slab: &mut [BatchValue],
    values: &mut [BatchValue],
    recorders: &mut [Vec<StmtExec>],
    fill: usize,
    root_mask: u64,
    mut deferred: Option<&mut [Vec<Write>]>,
    frames: &mut Vec<Frame>,
    changed: &mut [u64],
    m_divergences: &mut u64,
    m_ops: &mut u64,
    elided: &mut [u64; LANES],
) {
    let metas = &code.metas;
    let mut mask = root_mask;
    let mut executed = 0u64;
    frames.clear();
    let mut pc = 0usize;
    while pc < bops.len() {
        executed += 1;
        match bops[pc] {
            BOp::Scalar(op) => exec_scalar_bop(op, slab, values, fill),
            BOp::Assign { rhs, meta } => {
                let m = &metas[meta as usize];
                let value = &slab[rhs as usize];
                let mut lanes = mask;
                while lanes != 0 {
                    let l = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    let write = match m.sel {
                        SelKind::Full { width } => Write {
                            target: m.target,
                            lo: 0,
                            width,
                            bits: value.words()[l] & Value::mask(width),
                        },
                        SelKind::Bit { width, idx } => {
                            let i = slab[idx as usize].words()[l].min(63) as u8;
                            Write {
                                target: m.target,
                                lo: i.min(width - 1),
                                width: 1,
                                bits: value.words()[l] & 1,
                            }
                        }
                        SelKind::Part { lo, width } => Write {
                            target: m.target,
                            lo,
                            width,
                            bits: value.words()[l] & Value::mask(width),
                        },
                    };
                    // Operands are read before the write lands, matching
                    // the scalar engines' record-then-apply order.
                    if RECORD {
                        recorders[l].push(StmtExec {
                            stmt: m.stmt,
                            operands: Operands::capture(m.read_ids.len(), |k| {
                                values[m.read_ids[k].0 as usize].lane(l)
                            }),
                            result: Value::new(write.bits, write.width),
                        });
                    } else {
                        elided[l] += 1;
                    }
                    match (&mut deferred, m.nonblocking) {
                        (Some(d), true) => d[l].push(write),
                        _ => {
                            let t = &mut values[write.target.0 as usize];
                            let cur = t.lane(l);
                            let next = write.apply(cur);
                            if next != cur {
                                t.set_lane(l, next);
                                changed[write.target.0 as usize] |= 1 << l;
                            }
                        }
                    }
                }
            }
            BOp::BranchIf { cond, else_at } => {
                let t = mask & slab[cond as usize].truthy_mask();
                let e = mask & !t;
                if t != 0 && e != 0 {
                    *m_divergences += 1;
                }
                frames.push(Frame::If {
                    saved: mask,
                    else_mask: e,
                });
                if t == 0 {
                    pc = else_at as usize;
                    continue;
                }
                mask = t;
            }
            BOp::Else { end_at } => {
                let Some(Frame::If { else_mask, .. }) = frames.last() else {
                    unreachable!("Else outside an if frame");
                };
                mask = *else_mask;
                if mask == 0 {
                    pc = end_at as usize;
                    continue;
                }
            }
            BOp::EndIf => {
                let Some(Frame::If { saved, .. }) = frames.pop() else {
                    unreachable!("EndIf outside an if frame");
                };
                mask = saved;
            }
            BOp::CaseBegin { subj } => {
                frames.push(Frame::Case {
                    saved: mask,
                    remaining: mask,
                    subj,
                    taken: 0,
                });
            }
            BOp::CaseArm {
                labels_start,
                labels_len,
                next_at,
            } => {
                let Some(Frame::Case {
                    remaining,
                    subj,
                    taken,
                    ..
                }) = frames.last_mut()
                else {
                    unreachable!("CaseArm outside a case frame");
                };
                let subject = &slab[*subj as usize];
                let mut matched = 0u64;
                let range = labels_start as usize..(labels_start + labels_len) as usize;
                for &label_slot in &code.case_labels[range] {
                    matched |= subject.eq_mask(&slab[label_slot as usize]);
                }
                let arm = *remaining & matched;
                *remaining &= !arm;
                if arm == 0 {
                    pc = next_at as usize;
                    continue;
                }
                *taken += 1;
                mask = arm;
            }
            BOp::CaseDefault { end_at } => {
                let Some(Frame::Case {
                    remaining, taken, ..
                }) = frames.last_mut()
                else {
                    unreachable!("CaseDefault outside a case frame");
                };
                mask = *remaining;
                if mask == 0 {
                    pc = end_at as usize;
                    continue;
                }
                *taken += 1;
            }
            BOp::CaseEnd => {
                let Some(Frame::Case { saved, taken, .. }) = frames.pop() else {
                    unreachable!("CaseEnd outside a case frame");
                };
                if taken > 1 {
                    *m_divergences += u64::from(taken) - 1;
                }
                mask = saved;
            }
        }
        pc += 1;
    }
    *m_ops += executed;
}

/// Evaluates one scalar expression op on the first `n` lanes, writing the
/// destination slot in place. Expressions for inactive lanes compute
/// harmless garbage (assignment is the only side effect, and it is
/// masked); every kernel is total, so no lane can fault. Lanes `n..LANES`
/// of the destination are left untouched — nothing reads beyond the fill.
///
/// The compiler allocates a fresh destination slot *after* its operand
/// slots (slots are never reused within a program), so `dst` is strictly
/// greater than every operand slot and `split_at_mut` yields disjoint
/// borrows without copying 512-byte values through temporaries.
fn exec_scalar_bop(op: Op, slab: &mut [BatchValue], values: &[BatchValue], n: usize) {
    match op {
        Op::Load { dst, sig } => slab[dst as usize].copy_lanes(&values[sig as usize], n),
        Op::Const { dst, val } => slab[dst as usize].splat_lanes(val, n),
        Op::Unary { dst, op, a } => {
            debug_assert!(a < dst);
            let (lo, hi) = slab.split_at_mut(dst as usize);
            eval_unary_batch(op, &lo[a as usize], n, &mut hi[0]);
        }
        Op::Binary { dst, op, a, b } => {
            debug_assert!(a < dst && b < dst);
            let (lo, hi) = slab.split_at_mut(dst as usize);
            eval_binary_batch(op, &lo[a as usize], &lo[b as usize], n, &mut hi[0]);
        }
        Op::Ternary { dst, cond, t, f } => {
            debug_assert!(cond < dst && t < dst && f < dst);
            let (lo, hi) = slab.split_at_mut(dst as usize);
            let c = lo[cond as usize].truthy_mask();
            let tv = &lo[t as usize];
            let fv = &lo[f as usize];
            let w = tv.width().max(fv.width());
            let out = hi[0].words_mut();
            let (tw, fw) = (&tv.words()[..n], &fv.words()[..n]);
            for (l, ((o, &t), &f)) in out.iter_mut().zip(tw).zip(fw).enumerate() {
                *o = if c >> l & 1 == 1 { t } else { f };
            }
            hi[0].set_width(w);
        }
        Op::Index { dst, sig, idx } => {
            debug_assert!(idx < dst);
            let v = &values[sig as usize];
            let (lo, hi) = slab.split_at_mut(dst as usize);
            let i = &lo[idx as usize];
            let w = u64::from(v.width());
            let out = hi[0].words_mut();
            let (iw, vw) = (&i.words()[..n], &v.words()[..n]);
            for ((o, &bit), &word) in out.iter_mut().zip(iw).zip(vw) {
                *o = u64::from(bit < w && (word >> bit) & 1 == 1);
            }
            hi[0].set_width(1);
        }
        Op::Part {
            dst,
            sig,
            lsb,
            width,
        } => {
            let v = &values[sig as usize];
            let m = Value::mask(width);
            let d = &mut slab[dst as usize];
            let out = d.words_mut();
            for (o, &word) in out.iter_mut().zip(&v.words()[..n]) {
                *o = (word >> lsb) & m;
            }
            d.set_width(width);
        }
        Op::Concat { dst, hi, lo } => {
            debug_assert!(hi < dst && lo < dst);
            let (rest, d) = slab.split_at_mut(dst as usize);
            let h = &rest[hi as usize];
            let l = &rest[lo as usize];
            let lw = l.width();
            let out = d[0].words_mut();
            let (hw, lo_w) = (&h.words()[..n], &l.words()[..n]);
            for ((o, &hi_word), &lo_word) in out.iter_mut().zip(hw).zip(lo_w) {
                *o = (hi_word << lw) | lo_word;
            }
            d[0].set_width(h.width() + lw);
        }
        Op::Jump { .. } | Op::JumpIfFalse { .. } | Op::JumpIfEq { .. } | Op::Assign { .. } => {
            unreachable!("control/assign ops are never wrapped in BOp::Scalar")
        }
    }
}

/// Lowers one process body into batch bytecode, reusing the scalar
/// [`Compiler`] for expressions and assignments (ops it emits are drained
/// through [`BatchCompiler::sync`]) and emitting structured mask ops for
/// `if`/`case`.
struct BatchCompiler<'a, 'n> {
    inner: Compiler<'n>,
    bops: Vec<BOp>,
    case_labels: &'a mut Vec<u16>,
    /// How many of `inner.ops` have been converted into `bops`.
    synced: usize,
}

impl BatchCompiler<'_, '_> {
    /// Converts every scalar op the inner compiler emitted since the last
    /// sync. Expressions and assignments never emit jumps, so only
    /// straight-line ops can appear here.
    fn sync(&mut self) {
        for &op in &self.inner.ops[self.synced..] {
            match op {
                Op::Assign { rhs, meta } => self.bops.push(BOp::Assign { rhs, meta }),
                Op::Jump { .. } | Op::JumpIfFalse { .. } | Op::JumpIfEq { .. } => {
                    unreachable!("expression lowering emits no jumps")
                }
                other => self.bops.push(BOp::Scalar(other)),
            }
        }
        self.synced = self.inner.ops.len();
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Option<()> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    self.inner.assign(a)?;
                    self.sync();
                }
                Stmt::If(i) => {
                    let (cond, _) = self.inner.expr(&i.cond)?;
                    self.sync();
                    let branch_at = self.bops.len();
                    self.bops.push(BOp::BranchIf { cond, else_at: 0 });
                    self.stmts(&i.then_branch)?;
                    let else_at = self.bops.len();
                    // An `Else` op is emitted even for if-without-else: the
                    // executor restores the else mask there (running zero
                    // statements under it), keeping the frame protocol
                    // uniform.
                    self.bops.push(BOp::Else { end_at: 0 });
                    self.patch(branch_at, else_at);
                    self.stmts(&i.else_branch)?;
                    let end_at = self.bops.len();
                    self.bops.push(BOp::EndIf);
                    self.patch(else_at, end_at);
                }
                Stmt::Case(c) => {
                    let (subj, _) = self.inner.expr(&c.subject)?;
                    // Evaluate ALL labels before any body, exactly like the
                    // scalar engine (labels are pure, slots are never
                    // reused within a program, so label slots stay live).
                    let mut ranges = Vec::with_capacity(c.arms.len());
                    for arm in &c.arms {
                        let start = self.case_labels.len();
                        for label in &arm.labels {
                            let (slot, _) = self.inner.expr(label)?;
                            self.case_labels.push(slot);
                        }
                        ranges.push((start as u32, arm.labels.len() as u32));
                    }
                    self.sync();
                    self.bops.push(BOp::CaseBegin { subj });
                    for (arm, (labels_start, labels_len)) in c.arms.iter().zip(ranges) {
                        let arm_at = self.bops.len();
                        self.bops.push(BOp::CaseArm {
                            labels_start,
                            labels_len,
                            next_at: 0,
                        });
                        self.stmts(&arm.body)?;
                        self.patch(arm_at, self.bops.len());
                    }
                    let default_at = self.bops.len();
                    self.bops.push(BOp::CaseDefault { end_at: 0 });
                    self.stmts(&c.default)?;
                    self.patch(default_at, self.bops.len());
                    self.bops.push(BOp::CaseEnd);
                }
            }
        }
        Some(())
    }

    /// Redirects the forward offset of the structured op at `at` to `to`.
    fn patch(&mut self, at: usize, to: usize) {
        let to = to as u32;
        match &mut self.bops[at] {
            BOp::BranchIf { else_at: t, .. }
            | BOp::Else { end_at: t }
            | BOp::CaseArm { next_at: t, .. }
            | BOp::CaseDefault { end_at: t } => *t = to,
            _ => unreachable!("patch target is a structured control op"),
        }
    }
}
