//! Simulator error types.

use std::fmt;

/// An error raised during elaboration or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design uses a construct the simulator does not support.
    Unsupported {
        /// Human-readable description.
        detail: String,
    },
    /// Combinational evaluation failed to reach a fixpoint.
    CombinationalLoop {
        /// Iterations attempted before giving up.
        iterations: u32,
    },
    /// A referenced signal does not exist.
    UnknownSignal {
        /// The missing name.
        name: String,
    },
    /// Edge-sensitive blocks disagree on the clock signal.
    ClockMismatch {
        /// The first clock seen.
        first: String,
        /// The conflicting clock.
        second: String,
    },
    /// The stimulus drives a signal that is not an input.
    NotAnInput {
        /// The offending name.
        name: String,
    },
    /// The run was stopped by its [`crate::CancelToken`] (explicit abort or
    /// deadline expiry). Partial work is discarded.
    Cancelled {
        /// The cycle at which cancellation was observed.
        at_cycle: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unsupported { detail } => write!(f, "unsupported construct: {detail}"),
            SimError::CombinationalLoop { iterations } => write!(
                f,
                "combinational logic did not settle after {iterations} iterations"
            ),
            SimError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            SimError::ClockMismatch { first, second } => write!(
                f,
                "multiple clock domains are unsupported (saw `{first}` and `{second}`)"
            ),
            SimError::NotAnInput { name } => {
                write!(f, "stimulus drives `{name}`, which is not an input port")
            }
            SimError::Cancelled { at_cycle } => {
                write!(f, "simulation cancelled at cycle {at_cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}
