//! The cycle-based simulation scheduler.
//!
//! Each simulated cycle:
//!
//! 1. apply the stimulus vector to the input ports,
//! 2. settle combinational logic to a fixpoint (silently), then run one more
//!    recording pass so executed-statement records reflect stable values,
//! 3. snapshot all signal values into the cycle record,
//! 4. fire the clock edge: run every sequential block against pre-edge
//!    values (recording executions), then commit all non-blocking writes.
//!
//! Async-reset edges are approximated synchronously: reset blocks execute at
//! every clock edge with the current reset value, which matches the paper's
//! usage (reset held during the first cycles of each GOLDMINE testbench).

use crate::batch::BatchEngine;
use crate::cancel::CancelToken;
use crate::compile::Engine;
use crate::error::SimError;
use crate::eval::{EvalCtx, Write};
use crate::netlist::{Netlist, Process};
use crate::testbench::Stimulus;
use crate::trace::{SignalSet, StmtExec, Trace, VerdictTrace};
use crate::value::{Value, LANES};
use verilog::Module;

/// Which execution strategy a [`Simulator`] settled on at elaboration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Bit-parallel bytecode evaluating up to [`LANES`] stimuli at once
    /// (the fast path for batch-shaped work; see
    /// [`Simulator::run_batch`]).
    Batch,
    /// Levelized bytecode with dirty-set re-evaluation (the fast path for
    /// one stimulus at a time).
    Compiled,
    /// AST-walking fixpoint interpreter (fallback for static combinational
    /// cycles and constructs whose single-pass equivalence is unprovable).
    Interpreted,
}

/// A reusable simulator for one design.
///
/// [`Simulator::new`] compiles the design into a levelized bytecode engine
/// when static analysis proves a single ordered combinational pass
/// equivalent to the fixpoint settle; otherwise it falls back to the AST
/// interpreter. Both engines produce bit-identical [`Trace`]s — signal
/// snapshots and [`StmtExec`] records — for every supported design.
#[derive(Debug)]
pub struct Simulator {
    netlist: Netlist,
    engine: Option<Engine>,
    batch: Option<BatchEngine>,
    cancel: CancelToken,
}

impl Simulator {
    /// Elaborates a module into a simulator.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors ([`SimError::Unsupported`],
    /// [`SimError::ClockMismatch`]).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use veribug_sim::{Simulator, TestbenchGen};
    ///
    /// let unit = verilog::parse(
    ///     "module m(input clk, input d, output reg q);\n\
    ///      always @(posedge clk) q <= d;\nendmodule",
    /// )?;
    /// let mut sim = Simulator::new(unit.top())?;
    /// let stim = TestbenchGen::new(7).generate(sim.netlist(), 16);
    /// let trace = sim.run(&stim)?;
    /// assert_eq!(trace.len(), 16);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(module: &Module) -> Result<Self, SimError> {
        let netlist = Netlist::elaborate(module)?;
        // One analysis pass feeds both engines, so they compile (or fall
        // back) under identical conditions.
        let analysis = crate::compile::analyze(&netlist);
        let engine = analysis.as_ref().and_then(|a| Engine::build(&netlist, a));
        let batch = analysis
            .as_ref()
            .and_then(|a| BatchEngine::build(&netlist, a));
        Ok(Simulator {
            netlist,
            engine,
            batch,
            cancel: CancelToken::inert(),
        })
    }

    /// Elaborates a module into a simulator that always uses the fixpoint
    /// interpreter, even when the design would compile. Used by differential
    /// tests and benchmarks comparing the two engines.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::new`].
    pub fn interpreted(module: &Module) -> Result<Self, SimError> {
        Ok(Simulator {
            netlist: Netlist::elaborate(module)?,
            engine: None,
            batch: None,
            cancel: CancelToken::inert(),
        })
    }

    /// An independent simulator for the same design that shares this one's
    /// compiled bytecode (an `Arc` bump instead of a parse→levelize→compile
    /// pass). Runtime state is fresh and the cancel token is reset to
    /// inert, so forks are safe to run concurrently on other threads. This
    /// is what the serving layer's compiled-design cache hands out per
    /// request.
    pub fn fork(&self) -> Simulator {
        Simulator {
            netlist: self.netlist.clone(),
            engine: self.engine.as_ref().map(Engine::fork),
            batch: self.batch.as_ref().map(BatchEngine::fork),
            cancel: CancelToken::inert(),
        }
    }

    /// Installs a cancellation token checked once per simulated cycle.
    /// Every subsequent [`run`](Self::run) fails with
    /// [`SimError::Cancelled`] once the token fires; partial work is
    /// discarded. Install [`CancelToken::inert`] to clear.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Which engine [`run`](Self::run) uses for a single stimulus.
    pub fn engine_kind(&self) -> EngineKind {
        if self.engine.is_some() {
            EngineKind::Compiled
        } else {
            EngineKind::Interpreted
        }
    }

    /// Which engine [`run_batch`](Self::run_batch) uses:
    /// [`EngineKind::Batch`] when the design compiled, otherwise the same
    /// fallback [`engine_kind`](Self::engine_kind) reports.
    pub fn batch_engine_kind(&self) -> EngineKind {
        if self.batch.is_some() {
            EngineKind::Batch
        } else {
            self.engine_kind()
        }
    }

    /// The installed cancellation token (inert unless
    /// [`set_cancel`](Self::set_cancel) was called). Lets batch pipelines
    /// propagate a parent simulator's token onto forks, which reset to
    /// inert.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The elaborated design.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Runs a stimulus from the all-zero reset state and returns the trace.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnInput`] when the stimulus drives a non-input,
    /// [`SimError::CombinationalLoop`] when combinational logic does not
    /// settle, [`SimError::Cancelled`] when an installed
    /// [`CancelToken`] fires, plus any evaluation error.
    pub fn run(&mut self, stimulus: &Stimulus) -> Result<Trace, SimError> {
        match &mut self.engine {
            Some(engine) => {
                crate::metrics::RUNS_COMPILED.incr();
                engine.run(&self.netlist, stimulus, &self.cancel)
            }
            None => {
                crate::metrics::RUNS_INTERPRETED.incr();
                self.run_interpreted(stimulus)
            }
        }
    }

    /// Runs many stimuli and returns one trace per stimulus, in order.
    ///
    /// When the design compiled, consecutive stimuli of equal cycle count
    /// are grouped into batches of up to [`LANES`] and simulated
    /// bit-parallel — one bytecode op evaluates every lane at once — which
    /// is how campaigns, dataset builds, and localization amortize
    /// per-stimulus cost. Traces, snapshots, and [`StmtExec`] records are
    /// bit-identical to running each stimulus through [`run`](Self::run).
    /// Designs that fell back to the interpreter run sequentially.
    ///
    /// # Errors
    ///
    /// The same errors as [`run`](Self::run); the first failing stimulus
    /// (in order) aborts the remainder, and any partial results are
    /// discarded.
    pub fn run_batch(&mut self, stimuli: &[Stimulus]) -> Result<Vec<Trace>, SimError> {
        let Some(batch) = &mut self.batch else {
            return stimuli.iter().map(|s| self.run(s)).collect();
        };
        let mut traces = Vec::with_capacity(stimuli.len());
        let mut rest = stimuli;
        while !rest.is_empty() {
            // Maximal run of equal-cycle-count stimuli, capped at LANES.
            let cycles = rest[0].vectors.len();
            let mut take = 1;
            while take < rest.len().min(LANES) && rest[take].vectors.len() == cycles {
                take += 1;
            }
            let (chunk, tail) = rest.split_at(take);
            traces.extend(batch.run(&self.netlist, chunk, &self.cancel)?);
            rest = tail;
        }
        Ok(traces)
    }

    /// Runs a stimulus in [`TraceMode::Verdict`](crate::TraceMode): value
    /// evolution, input validation, and cancellation behavior identical to
    /// [`run`](Self::run), but no [`StmtExec`] records are materialized and
    /// only `observed` signals are snapshotted per cycle. The result is
    /// exactly the observed columns of the full trace — sufficient to
    /// decide divergence verdicts and divergence cycles at those signals
    /// without paying full-trace memory traffic.
    ///
    /// # Errors
    ///
    /// The same errors as [`run`](Self::run), at the same points.
    pub fn run_verdict(
        &mut self,
        stimulus: &Stimulus,
        observed: &SignalSet,
    ) -> Result<VerdictTrace, SimError> {
        match &mut self.engine {
            Some(engine) => {
                crate::metrics::RUNS_COMPILED.incr();
                crate::metrics::RUNS_VERDICT.incr();
                engine.run_verdict(&self.netlist, stimulus, &self.cancel, observed)
            }
            None => {
                crate::metrics::RUNS_INTERPRETED.incr();
                crate::metrics::RUNS_VERDICT.incr();
                self.run_interpreted_verdict(stimulus, observed)
            }
        }
    }

    /// Runs many stimuli in verdict mode, one [`VerdictTrace`] per
    /// stimulus in order, batching exactly as [`run_batch`](Self::run_batch)
    /// does (maximal equal-cycle-count groups of up to [`LANES`] lanes).
    /// This is the campaign screening pass: the 64-lane compute win with
    /// none of the trace-production memory traffic.
    ///
    /// # Errors
    ///
    /// The same errors as [`run_batch`](Self::run_batch); the first failing
    /// stimulus aborts the remainder.
    pub fn run_batch_verdict(
        &mut self,
        stimuli: &[Stimulus],
        observed: &SignalSet,
    ) -> Result<Vec<VerdictTrace>, SimError> {
        let Some(batch) = &mut self.batch else {
            return stimuli
                .iter()
                .map(|s| self.run_verdict(s, observed))
                .collect();
        };
        let mut verdicts = Vec::with_capacity(stimuli.len());
        let mut rest = stimuli;
        while !rest.is_empty() {
            // Maximal run of equal-cycle-count stimuli, capped at LANES.
            let cycles = rest[0].vectors.len();
            let mut take = 1;
            while take < rest.len().min(LANES) && rest[take].vectors.len() == cycles {
                take += 1;
            }
            let (chunk, tail) = rest.split_at(take);
            verdicts.extend(batch.run_verdict(&self.netlist, chunk, &self.cancel, observed)?);
            rest = tail;
        }
        Ok(verdicts)
    }

    /// The fixpoint-interpreter path: settle combinational logic by
    /// iteration, then one recording pass per cycle.
    fn run_interpreted(&mut self, stimulus: &Stimulus) -> Result<Trace, SimError> {
        let mut ctx = EvalCtx::new(&self.netlist);
        let nsig = self.netlist.signal_count();
        let ncycles = stimulus.vectors.len();
        // One run-wide snapshot arena instead of a value-vector per cycle.
        let mut arena: Vec<Value> = Vec::with_capacity(ncycles * nsig);
        let mut cycle_execs: Vec<Vec<StmtExec>> = Vec::with_capacity(ncycles);
        for (cycle_idx, vector) in stimulus.vectors.iter().enumerate() {
            let cycle = cycle_idx as u32;
            if self.cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }
            // 1. Apply inputs.
            for (name, bits) in &vector.assigns {
                let id = self
                    .netlist
                    .signal_id(name)
                    .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                if self.netlist.signal(id).role != crate::netlist::SignalRole::Input {
                    return Err(SimError::NotAnInput { name: name.clone() });
                }
                ctx.values[id.0 as usize] = Value::new(*bits, self.netlist.signal(id).width);
            }

            // 2. Combinational settle + recording pass.
            let mut execs: Vec<StmtExec> = Vec::new();
            self.settle_comb(&mut ctx)?;
            for p in &self.netlist.comb {
                self.run_comb_process(&mut ctx, p, Some(&mut execs))?;
            }

            // 3. Snapshot pre-edge values into the arena.
            arena.extend_from_slice(&ctx.values);

            // 4. Clock edge: sequential blocks with deferred commits.
            let mut deferred: Vec<Write> = Vec::new();
            for p in &self.netlist.seq {
                let Process::Seq(blk) = p else { continue };
                ctx.exec_stmts(&blk.body, Some(&mut deferred), Some(&mut execs))?;
            }
            for w in deferred {
                let cur = ctx.values[w.target.0 as usize];
                ctx.values[w.target.0 as usize] = w.apply(cur);
            }

            cycle_execs.push(execs);
        }
        crate::metrics::CYCLES.add(ncycles as u64);
        Ok(Trace::assemble(arena.into(), nsig, cycle_execs))
    }

    /// The interpreter's verdict path: identical to
    /// [`run_interpreted`](Self::run_interpreted) except the per-cycle
    /// recording pass is skipped — at the settle fixpoint it is
    /// value-neutral, its only output is the records verdict mode elides —
    /// and only observed signals are snapshotted. `records_elided` is 0
    /// here (best-effort accounting; the fallback never counts would-be
    /// records).
    fn run_interpreted_verdict(
        &mut self,
        stimulus: &Stimulus,
        observed: &SignalSet,
    ) -> Result<VerdictTrace, SimError> {
        let mut ctx = EvalCtx::new(&self.netlist);
        let ncycles = stimulus.vectors.len();
        let nobs = observed.len();
        let mut values: Vec<Value> = Vec::with_capacity(ncycles * nobs);
        for (cycle_idx, vector) in stimulus.vectors.iter().enumerate() {
            let cycle = cycle_idx as u32;
            if self.cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }
            for (name, bits) in &vector.assigns {
                let id = self
                    .netlist
                    .signal_id(name)
                    .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                if self.netlist.signal(id).role != crate::netlist::SignalRole::Input {
                    return Err(SimError::NotAnInput { name: name.clone() });
                }
                ctx.values[id.0 as usize] = Value::new(*bits, self.netlist.signal(id).width);
            }

            self.settle_comb(&mut ctx)?;

            for &id in observed.ids() {
                values.push(ctx.values[id.0 as usize]);
            }

            let mut deferred: Vec<Write> = Vec::new();
            for p in &self.netlist.seq {
                let Process::Seq(blk) = p else { continue };
                ctx.exec_stmts(&blk.body, Some(&mut deferred), None)?;
            }
            for w in deferred {
                let cur = ctx.values[w.target.0 as usize];
                ctx.values[w.target.0 as usize] = w.apply(cur);
            }
        }
        crate::metrics::CYCLES.add(ncycles as u64);
        Ok(VerdictTrace {
            values,
            nobs,
            records_elided: 0,
        })
    }

    fn run_comb_process(
        &self,
        ctx: &mut EvalCtx<'_>,
        p: &Process,
        recorder: Option<&mut Vec<StmtExec>>,
    ) -> Result<(), SimError> {
        match p {
            Process::Assign(a) => ctx.exec_assign(a, None, recorder),
            Process::Comb(blk) => ctx.exec_stmts(&blk.body, None, recorder),
            Process::Seq(_) => Ok(()),
        }
    }

    /// Iterates the combinational processes until no signal changes.
    fn settle_comb(&self, ctx: &mut EvalCtx<'_>) -> Result<(), SimError> {
        let max_iters = (self.netlist.comb.len() as u32 + 4) * 4;
        // One scratch snapshot reused across iterations: `clone_from` keeps
        // the allocation instead of reallocating the value vector each pass.
        let mut before = Vec::new();
        for iter in 0..max_iters {
            before.clone_from(&ctx.values);
            for p in &self.netlist.comb {
                self.run_comb_process(ctx, p, None)?;
            }
            if ctx.values == before {
                crate::metrics::SETTLE_ITERS.add(u64::from(iter) + 1);
                return Ok(());
            }
        }
        Err(SimError::CombinationalLoop {
            iterations: max_iters,
        })
    }
}

/// One-shot convenience: elaborate, simulate, return the trace.
///
/// # Errors
///
/// See [`Simulator::new`] and [`Simulator::run`].
pub fn simulate(module: &Module, stimulus: &Stimulus) -> Result<Trace, SimError> {
    Simulator::new(module)?.run(stimulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{InputVector, Stimulus};

    fn stim(vectors: Vec<Vec<(&str, u64)>>) -> Stimulus {
        Stimulus {
            vectors: vectors
                .into_iter()
                .map(|v| InputVector {
                    assigns: v.into_iter().map(|(n, b)| (n.to_owned(), b)).collect(),
                })
                .collect(),
        }
    }

    fn run(src: &str, vectors: Vec<Vec<(&str, u64)>>) -> (Simulator, Trace) {
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let t = sim.run(&stim(vectors)).unwrap();
        (sim, t)
    }

    #[test]
    fn combinational_logic_settles_through_chain() {
        let src = "module m(input a, output y);\nwire t1, t2;\n\
                   assign t2 = ~t1;\nassign t1 = ~a;\nassign y = t2;\nendmodule";
        let (sim, t) = run(src, vec![vec![("a", 1)], vec![("a", 0)]]);
        let y = sim.netlist().signal_id("y").unwrap();
        assert_eq!(t.cycles[0].value(y).bits(), 1);
        assert_eq!(t.cycles[1].value(y).bits(), 0);
    }

    #[test]
    fn register_delays_by_one_cycle() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q <= d;\nendmodule";
        let (sim, t) = run(src, vec![vec![("d", 1)], vec![("d", 0)], vec![("d", 1)]]);
        let q = sim.netlist().signal_id("q").unwrap();
        // Pre-edge snapshot: q holds the previous cycle's d.
        assert_eq!(t.cycles[0].value(q).bits(), 0);
        assert_eq!(t.cycles[1].value(q).bits(), 1);
        assert_eq!(t.cycles[2].value(q).bits(), 0);
    }

    #[test]
    fn nonblocking_swap_is_simultaneous() {
        let src = "module m(input clk, input seed, output reg a, output reg b);\n\
                   always @(posedge clk) begin\n\
                   if (seed) begin a <= 1'b1; b <= 1'b0; end\n\
                   else begin a <= b; b <= a; end\nend\nendmodule";
        let (sim, t) = run(
            src,
            vec![
                vec![("seed", 1)],
                vec![("seed", 0)],
                vec![("seed", 0)],
                vec![("seed", 0)],
            ],
        );
        let a = sim.netlist().signal_id("a").unwrap();
        let b = sim.netlist().signal_id("b").unwrap();
        // After the seed cycle: a=1,b=0. Swaps alternate each edge.
        assert_eq!(
            (t.cycles[1].value(a).bits(), t.cycles[1].value(b).bits()),
            (1, 0)
        );
        assert_eq!(
            (t.cycles[2].value(a).bits(), t.cycles[2].value(b).bits()),
            (0, 1)
        );
        assert_eq!(
            (t.cycles[3].value(a).bits(), t.cycles[3].value(b).bits()),
            (1, 0)
        );
    }

    #[test]
    fn comb_loop_detected() {
        let src = "module m(input a, output y);\nwire t;\n\
                   assign t = ~y;\nassign y = t & a;\nendmodule";
        // With a=1: y = ~y — a genuine oscillation.
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let err = sim.run(&stim(vec![vec![("a", 1)]])).unwrap_err();
        assert!(matches!(err, SimError::CombinationalLoop { .. }));
    }

    #[test]
    fn execution_records_capture_operands_and_branches() {
        let src = "module m(input c, input a, input b, output reg y);\n\
                   always @(*) begin\nif (c) y = a; else y = b;\nend\nendmodule";
        let (_, t) = run(src, vec![vec![("c", 1), ("a", 1), ("b", 0)]]);
        let execs = &t.cycles[0].execs;
        assert_eq!(execs.len(), 1, "only the taken branch records");
        let e = execs.iter().next().unwrap();
        assert_eq!(e.stmt, verilog::StmtId(0));
        // `y = a` reads only `a`, so record position 0 holds its value.
        assert_eq!(e.operand(0).unwrap().bits(), 1);
        assert_eq!(e.operands.len(), 1);
        assert_eq!(e.result.bits(), 1);
    }

    #[test]
    fn driving_non_input_errors() {
        let src = "module m(input a, output y);\nassign y = a;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let err = sim.run(&stim(vec![vec![("y", 1)]])).unwrap_err();
        assert!(matches!(err, SimError::NotAnInput { .. }));
    }

    #[test]
    fn case_statement_executes_matching_arm() {
        let src = "module m(input [1:0] s, input a, input b, output reg y);\n\
                   always @(*) begin\ncase (s)\n2'b00: y = a;\n2'b01: y = b;\ndefault: y = 1'b1;\nendcase\nend\nendmodule";
        let (sim, t) = run(
            src,
            vec![
                vec![("s", 0), ("a", 1), ("b", 0)],
                vec![("s", 1), ("a", 1), ("b", 0)],
                vec![("s", 3), ("a", 0), ("b", 0)],
            ],
        );
        let y = sim.netlist().signal_id("y").unwrap();
        assert_eq!(t.cycles[0].value(y).bits(), 1); // y = a = 1
        assert_eq!(t.cycles[1].value(y).bits(), 0); // y = b = 0
        assert_eq!(t.cycles[2].value(y).bits(), 1); // default
    }

    #[test]
    fn async_reset_block_approximated_synchronously() {
        let src = "module m(input clk, input rst_n, input d, output reg q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   if (!rst_n) q <= 1'b0; else q <= d;\nend\nendmodule";
        let (sim, t) = run(
            src,
            vec![
                vec![("rst_n", 0), ("d", 1)],
                vec![("rst_n", 1), ("d", 1)],
                vec![("rst_n", 1), ("d", 0)],
            ],
        );
        let q = sim.netlist().signal_id("q").unwrap();
        assert_eq!(t.cycles[1].value(q).bits(), 0); // held in reset at cycle 0 edge
        assert_eq!(t.cycles[2].value(q).bits(), 1); // captured d=1 at cycle 1 edge
    }

    #[test]
    fn cancelled_token_stops_both_engines() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q <= d;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let vectors = stim(vec![vec![("d", 1)], vec![("d", 0)]]);
        for interpreted in [false, true] {
            let mut sim = if interpreted {
                Simulator::interpreted(unit.top()).unwrap()
            } else {
                Simulator::new(unit.top()).unwrap()
            };
            let token = CancelToken::new();
            token.cancel();
            sim.set_cancel(token);
            let err = sim.run(&vectors).unwrap_err();
            assert!(matches!(err, SimError::Cancelled { at_cycle: 0 }));
            // Clearing the token makes the simulator runnable again.
            sim.set_cancel(CancelToken::inert());
            assert_eq!(sim.run(&vectors).unwrap().len(), 2);
        }
    }

    #[test]
    fn fork_shares_code_and_matches_traces() {
        let src = "module m(input clk, input en, output reg [3:0] n, output y);\n\
                   assign y = n[0];\n\
                   always @(posedge clk) begin\nif (en) n <= n + 1'b1;\nend\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut original = Simulator::new(unit.top()).unwrap();
        let mut forked = original.fork();
        assert_eq!(original.engine_kind(), forked.engine_kind());
        let vectors = stim(vec![vec![("en", 1)], vec![("en", 1)], vec![("en", 0)]]);
        let a = original.run(&vectors).unwrap();
        let b = forked.run(&vectors).unwrap();
        assert_eq!(a, b, "forked simulator produces identical traces");
        // A cancelled parent does not poison the fork.
        let token = CancelToken::new();
        original.set_cancel(token.clone());
        token.cancel();
        assert!(original.run(&vectors).is_err());
        let fresh = original.fork();
        assert_eq!(fresh.engine_kind(), EngineKind::Compiled);
        let mut fresh = fresh;
        assert_eq!(fresh.run(&vectors).unwrap(), a);
    }

    #[test]
    fn run_batch_matches_sequential_runs_with_divergent_branches() {
        // A design whose control flow actually diverges across stimuli:
        // if/else plus a case over a 2-bit selector.
        let src = "module m(input clk, input [1:0] s, input [3:0] a, output reg [3:0] y, output reg [3:0] n);\n\
                   always @(*) begin\nif (s[0]) y = a + 4'd1; else y = a - 4'd1;\nend\n\
                   always @(posedge clk) begin\ncase (s)\n2'b00: n <= n + 4'd1;\n2'b01: n <= a;\ndefault: n <= 4'd0;\nendcase\nend\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        assert_eq!(sim.batch_engine_kind(), EngineKind::Batch);
        let gen = crate::testbench::TestbenchGen::new(11);
        let stimuli = gen.generate_many(sim.netlist(), 9, 7);
        let batched = sim.run_batch(&stimuli).unwrap();
        let sequential: Vec<Trace> = stimuli.iter().map(|s| sim.run(s).unwrap()).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn run_batch_splits_uneven_cycle_counts_into_chunks() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q <= d;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        // 3-cycle, 3-cycle, 5-cycle, 3-cycle: three batch chunks.
        let stimuli = vec![
            stim(vec![vec![("d", 1)]; 3]),
            stim(vec![vec![("d", 0)]; 3]),
            stim(vec![vec![("d", 1)]; 5]),
            stim(vec![vec![("d", 1)]; 3]),
        ];
        let batched = sim.run_batch(&stimuli).unwrap();
        assert_eq!(batched.len(), 4);
        for (t, s) in batched.iter().zip(&stimuli) {
            assert_eq!(t.len(), s.vectors.len());
            assert_eq!(t, &sim.run(s).unwrap());
        }
        // Empty input is a no-op.
        assert!(sim.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn run_batch_falls_back_for_interpreted_designs() {
        let src = "module m(input a, output y);\nassign y = a;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::interpreted(unit.top()).unwrap();
        assert_eq!(sim.batch_engine_kind(), EngineKind::Interpreted);
        let stimuli = vec![stim(vec![vec![("a", 1)]]), stim(vec![vec![("a", 0)]])];
        let traces = sim.run_batch(&stimuli).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0], sim.run(&stimuli[0]).unwrap());
    }

    #[test]
    fn run_batch_reports_scalar_input_errors() {
        let src = "module m(input a, output y);\nassign y = a;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let stimuli = vec![stim(vec![vec![("a", 1)]]), stim(vec![vec![("ghost", 1)]])];
        let err = sim.run_batch(&stimuli).unwrap_err();
        assert!(matches!(err, SimError::UnknownSignal { name } if name == "ghost"));
        let stimuli = vec![stim(vec![vec![("y", 1)]])];
        assert!(matches!(
            sim.run_batch(&stimuli).unwrap_err(),
            SimError::NotAnInput { .. }
        ));
    }

    #[test]
    fn run_batch_cancels_mid_batch_deterministically() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q <= d;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let stimuli = vec![stim(vec![vec![("d", 1)]; 8]); 5];
        // The batch engine polls once per cycle per chunk; a 2-poll budget
        // cancels at cycle 2 of the single 5-lane chunk.
        sim.set_cancel(CancelToken::after_polls(2));
        let err = sim.run_batch(&stimuli).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { at_cycle: 2 }));
        // Clearing the token makes the batch runnable again.
        sim.set_cancel(CancelToken::inert());
        assert_eq!(sim.run_batch(&stimuli).unwrap().len(), 5);
    }

    #[test]
    fn verdict_mode_matches_full_trace_columns_on_all_engines() {
        // Divergent control flow + nonblocking state: exercises the dirty
        // gate, masks, and deferred writes in verdict mode.
        let src = "module m(input clk, input [1:0] s, input [3:0] a, output reg [3:0] y, output reg [3:0] n);\n\
                   always @(*) begin\nif (s[0]) y = a + 4'd1; else y = a - 4'd1;\nend\n\
                   always @(posedge clk) begin\ncase (s)\n2'b00: n <= n + 4'd1;\n2'b01: n <= a;\ndefault: n <= 4'd0;\nendcase\nend\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let mut interp = Simulator::interpreted(unit.top()).unwrap();
        let y = sim.netlist().signal_id("y").unwrap();
        let n = sim.netlist().signal_id("n").unwrap();
        let observed = SignalSet::from_ids([n, y]);
        let gen = crate::testbench::TestbenchGen::new(23);
        let stimuli = gen.generate_many(sim.netlist(), 9, 7);

        let full: Vec<Trace> = stimuli.iter().map(|s| sim.run(s).unwrap()).collect();
        let expect = |t: &Trace| VerdictTrace {
            values: t
                .cycles
                .iter()
                .flat_map(|c| observed.ids().iter().map(|&id| c.value(id)))
                .collect(),
            nobs: observed.len(),
            records_elided: 0,
        };
        // Scalar compiled, interpreter, and batch verdict paths all
        // reproduce exactly the observed columns of the full trace.
        for (s, t) in stimuli.iter().zip(&full) {
            assert_eq!(sim.run_verdict(s, &observed).unwrap(), expect(t));
            assert_eq!(interp.run_verdict(s, &observed).unwrap(), expect(t));
        }
        let batched = sim.run_batch_verdict(&stimuli, &observed).unwrap();
        assert_eq!(batched.len(), full.len());
        for (v, t) in batched.iter().zip(&full) {
            assert_eq!(v, &expect(t));
            assert!(v.records_elided > 0, "batch verdict elides records");
        }
    }

    #[test]
    fn verdict_mode_cancels_and_errors_like_full_mode() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q <= d;\nendmodule";
        let unit = verilog::parse(src).unwrap();
        let mut sim = Simulator::new(unit.top()).unwrap();
        let q = sim.netlist().signal_id("q").unwrap();
        let observed = SignalSet::from_ids([q]);
        let stimuli = vec![stim(vec![vec![("d", 1)]; 8]); 5];
        sim.set_cancel(CancelToken::after_polls(2));
        let err = sim.run_batch_verdict(&stimuli, &observed).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { at_cycle: 2 }));
        sim.set_cancel(CancelToken::inert());
        assert_eq!(sim.run_batch_verdict(&stimuli, &observed).unwrap().len(), 5);
        // Input validation errors match full mode.
        let bad = vec![stim(vec![vec![("ghost", 1)]])];
        assert!(matches!(
            sim.run_batch_verdict(&bad, &observed).unwrap_err(),
            SimError::UnknownSignal { name } if name == "ghost"
        ));
        assert!(matches!(
            sim.run_verdict(&stim(vec![vec![("q", 1)]]), &observed)
                .unwrap_err(),
            SimError::NotAnInput { .. }
        ));
    }

    #[test]
    fn blocking_order_within_comb_block() {
        let src = "module m(input a, output reg y);\nreg t;\n\
                   always @(*) begin\nt = ~a;\ny = t;\nend\nendmodule";
        let (sim, t) = run(src, vec![vec![("a", 0)], vec![("a", 1)]]);
        let y = sim.netlist().signal_id("y").unwrap();
        assert_eq!(t.cycles[0].value(y).bits(), 1);
        assert_eq!(t.cycles[1].value(y).bits(), 0);
    }
}
