//! # veribug-sim
//!
//! A two-state, cycle-based RTL simulator for the VeriBug reproduction.
//!
//! Beyond computing output values, the simulator records **per-statement
//! execution records** — which assignment executed in which cycle, the values
//! of its operands at execution time, and the value it produced. Those
//! records are exactly the "free supervision" VeriBug trains its execution-
//! semantics model on (paper Sec. IV-C), and they drive the dynamic-slicing
//! step of feature extraction (Sec. IV-B).
//!
//! The crate also provides [`TestbenchGen`], a seeded constrained-random
//! stimulus generator standing in for GOLDMINE-generated testbenches.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug_sim::{Simulator, TestbenchGen};
//!
//! let unit = verilog::parse(
//!     "module counter(input clk, input en, output reg [3:0] n);\n\
//!      always @(posedge clk) begin\nif (en) n <= n + 1'b1;\nend\nendmodule",
//! )?;
//! let mut sim = Simulator::new(unit.top())?;
//! let stim = TestbenchGen::new(42).generate(sim.netlist(), 32);
//! let trace = sim.run(&stim)?;
//! assert_eq!(trace.len(), 32);
//! // Every execution of the increment was recorded with operand values.
//! let execs = trace.execs_of(verilog::StmtId(0));
//! assert!(!execs.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
pub mod cancel;
mod compile;
pub mod error;
pub mod eval;
mod metrics;
pub mod netlist;
pub mod sched;
pub mod testbench;
pub mod trace;
pub mod value;
pub mod vcd;

pub use cancel::CancelToken;
pub use error::SimError;
pub use eval::{EvalCtx, Write};
pub use netlist::{Netlist, Process, Signal, SignalId, SignalRole};
pub use sched::{simulate, EngineKind, Simulator};
pub use testbench::{InputVector, Stimulus, TestbenchGen};
pub use trace::{
    CycleRecord, Execs, ExecsIter, Operands, SignalSet, Snapshot, StmtExec, Trace, TraceLabel,
    TraceMode, VerdictTrace,
};
pub use value::{BatchValue, Value, LANES};
pub use vcd::to_vcd;
