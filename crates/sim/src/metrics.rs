//! Simulator observability counters (see `veribug-obs`).
//!
//! All counters are no-ops unless observability collection is enabled; the
//! hot loops accumulate into locals and flush once per run, so the disabled
//! cost is a handful of register adds per simulation.

use obs::{LazyCounter, LazyHistogram};

/// Simulated clock cycles.
pub(crate) static CYCLES: LazyCounter = LazyCounter::new("sim.cycles");
/// Combinational processes evaluated by the compiled engine.
pub(crate) static COMB_EVALS: LazyCounter = LazyCounter::new("sim.comb_evals");
/// Combinational processes skipped by the dirty-set gate.
pub(crate) static COMB_SKIPS: LazyCounter = LazyCounter::new("sim.comb_skips");
/// Cached [`crate::trace::StmtExec`] records replayed for skipped processes.
pub(crate) static CACHE_REPLAYS: LazyCounter = LazyCounter::new("sim.cache_replays");
/// Bytecode instructions executed by the compiled engine.
pub(crate) static BYTECODE_OPS: LazyCounter = LazyCounter::new("sim.bytecode_ops");
/// Sequential process evaluations (clock-edge programs run).
pub(crate) static SEQ_EVALS: LazyCounter = LazyCounter::new("sim.seq_evals");
/// Fixpoint iterations of the interpreter's combinational settle loop.
pub(crate) static SETTLE_ITERS: LazyCounter = LazyCounter::new("sim.settle_iters");
/// Simulations served by the compiled engine.
pub(crate) static RUNS_COMPILED: LazyCounter = LazyCounter::new("sim.runs_compiled");
/// Simulations that fell back to the fixpoint interpreter.
pub(crate) static RUNS_INTERPRETED: LazyCounter = LazyCounter::new("sim.runs_interpreted");
/// Stimuli simulated by the batch engine (lanes, not batches).
pub(crate) static RUNS_BATCH: LazyCounter = LazyCounter::new("sim.runs_batch");
/// Lane fill per batch-engine invocation (64 = full batch).
pub(crate) static BATCH_LANES: LazyHistogram = LazyHistogram::new("sim.batch_lanes");
/// Branch/case points where lanes split onto different paths.
pub(crate) static MASK_DIVERGENCES: LazyCounter = LazyCounter::new("sim.mask_divergences");
/// [`crate::trace::StmtExec`] records a verdict-mode run declined to
/// materialize (best-effort: executed assignments; replay/descriptor
/// re-use that full mode would also have elided is not re-counted).
pub(crate) static RECORDS_ELIDED: LazyCounter = LazyCounter::new("sim.records_elided");
/// Simulations served in verdict (values-only) mode, any engine.
pub(crate) static RUNS_VERDICT: LazyCounter = LazyCounter::new("sim.runs_verdict");
