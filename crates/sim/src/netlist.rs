//! Elaboration: from a parsed [`Module`] to a simulatable [`Netlist`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::SimError;
use verilog::{EdgeKind, Item, Module, NetKind, PortDir, Select, Sensitivity, StmtId};

/// Index of a signal in the elaborated design.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SignalId(pub u32);

/// How a signal is driven / observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SignalRole {
    /// Driven by the testbench.
    Input,
    /// Observable design output.
    Output,
    /// Internal wire or register.
    Internal,
}

/// An elaborated signal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Signal {
    /// Declared name.
    pub name: String,
    /// Bit width.
    pub width: u8,
    /// Input / output / internal.
    pub role: SignalRole,
    /// True for `reg` storage (procedurally assigned).
    pub is_reg: bool,
}

/// One elaborated process.
#[derive(Debug, Clone, PartialEq)]
pub enum Process {
    /// A continuous assignment.
    Assign(verilog::Assignment),
    /// A combinational always block (`@(*)` or level list).
    Comb(verilog::AlwaysBlock),
    /// An edge-sensitive always block (clocked, possibly with async reset
    /// expressed as an extra edge on a reset signal).
    Seq(verilog::AlwaysBlock),
}

/// Precomputed execution info for one assignment statement — resolved at
/// elaboration so the simulator's hot loop never re-walks expression trees
/// or re-hashes signal names.
#[derive(Debug, Clone)]
pub struct AssignInfo {
    /// Interned names of the distinct declared signals the statement reads
    /// (RHS references in first-occurrence order, then LHS bit-select index
    /// references) — the **record read order**. Execution records store
    /// operand values positionally in this order and carry no names of
    /// their own; resolve a name to a position here once per statement
    /// instead of per record.
    pub names: Arc<[Arc<str>]>,
    /// Signal ids matching `names` positionally.
    pub read_ids: Vec<SignalId>,
    /// The LHS base signal, when it resolves to a declared signal.
    /// `None` surfaces as [`SimError::UnknownSignal`] at execution time.
    pub target: Option<SignalId>,
}

/// A simulatable, flattened design.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// The source module (used for spans and feature extraction).
    pub module: Module,
    signals: Vec<Signal>,
    index: HashMap<String, SignalId>,
    assign_info: HashMap<StmtId, AssignInfo>,
    /// Combinational processes (continuous assigns + comb always) in source order.
    pub comb: Vec<Process>,
    /// Sequential processes in source order.
    pub seq: Vec<Process>,
    /// The single clock signal, if the design is sequential.
    pub clock: Option<SignalId>,
    /// Signals used as async-reset edges (excluded from random stimulus
    /// toggling after cycle 0 by convention of the testbench generator).
    pub resets: Vec<SignalId>,
}

impl Netlist {
    /// Elaborates a module.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] for `inout` ports, and
    /// [`SimError::ClockMismatch`] when several edge-sensitive blocks use
    /// different clock signals.
    pub fn elaborate(module: &Module) -> Result<Self, SimError> {
        let mut signals = Vec::new();
        let mut index = HashMap::new();
        for p in &module.ports {
            let role = match p.dir {
                PortDir::Input => SignalRole::Input,
                PortDir::Output => SignalRole::Output,
                PortDir::Inout => {
                    return Err(SimError::Unsupported {
                        detail: format!("inout port `{}`", p.name),
                    });
                }
            };
            let id = SignalId(signals.len() as u32);
            index.insert(p.name.clone(), id);
            signals.push(Signal {
                name: p.name.clone(),
                width: p.width as u8,
                role,
                is_reg: p.is_reg,
            });
        }
        for d in &module.decls {
            if index.contains_key(&d.name) {
                // Port re-declared in the body (non-ANSI style): upgrade reg-ness.
                let id = index[&d.name];
                if d.kind == NetKind::Reg {
                    signals[id.0 as usize].is_reg = true;
                }
                continue;
            }
            let id = SignalId(signals.len() as u32);
            index.insert(d.name.clone(), id);
            signals.push(Signal {
                name: d.name.clone(),
                width: d.width as u8,
                role: SignalRole::Internal,
                is_reg: d.kind == NetKind::Reg,
            });
        }

        let mut comb = Vec::new();
        let mut seq = Vec::new();
        let mut clock: Option<SignalId> = None;
        let mut resets: Vec<SignalId> = Vec::new();
        for item in &module.items {
            match item {
                Item::Assign(a) => comb.push(Process::Assign(a.clone())),
                Item::Always(blk) => match &blk.sensitivity {
                    Sensitivity::Star | Sensitivity::Level(_) => {
                        comb.push(Process::Comb(blk.clone()));
                    }
                    Sensitivity::Edges(edges) => {
                        // First posedge is the clock; any other edge signal
                        // is an async reset.
                        let mut block_clock: Option<&str> = None;
                        for (kind, name) in edges {
                            let id = *index
                                .get(name)
                                .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                            if *kind == EdgeKind::Pos && block_clock.is_none() {
                                block_clock = Some(name);
                                match clock {
                                    None => clock = Some(id),
                                    Some(c) if c == id => {}
                                    Some(c) => {
                                        return Err(SimError::ClockMismatch {
                                            first: signals[c.0 as usize].name.clone(),
                                            second: name.clone(),
                                        });
                                    }
                                }
                            } else if !resets.contains(&id) {
                                resets.push(id);
                            }
                        }
                        if block_clock.is_none() {
                            // Pure negedge-clocked block: treat its first
                            // edge signal as the clock.
                            let (_, name) = &edges[0];
                            let id = index[name];
                            match clock {
                                None => clock = Some(id),
                                Some(c) if c == id => {
                                    resets.retain(|r| *r != id);
                                }
                                Some(c) => {
                                    return Err(SimError::ClockMismatch {
                                        first: signals[c.0 as usize].name.clone(),
                                        second: name.clone(),
                                    });
                                }
                            }
                            resets.retain(|r| *r != id);
                        }
                        seq.push(Process::Seq(blk.clone()));
                    }
                },
            }
        }
        // Intern names once and resolve every assignment's read set and
        // write target up front. Undeclared RHS names are omitted: execution
        // fails during RHS evaluation before any recording happens, so the
        // cache is only consulted on paths where all reads resolved.
        let mut interned: HashMap<&str, Arc<str>> = HashMap::new();
        let mut assign_info = HashMap::new();
        for a in module.assignments() {
            let mut names = a.rhs.referenced_signals();
            if let Some(Select::Bit(idx)) = &a.lhs.select {
                names.extend(idx.referenced_signals());
            }
            let mut read_names: Vec<Arc<str>> = Vec::new();
            let mut read_ids: Vec<SignalId> = Vec::new();
            for name in names {
                let Some(&id) = index.get(name) else { continue };
                if read_names.iter().any(|n| n.as_ref() == name) {
                    continue;
                }
                let arc = interned
                    .entry(name)
                    .or_insert_with(|| Arc::from(name))
                    .clone();
                read_names.push(arc);
                read_ids.push(id);
            }
            let target = index.get(&a.lhs.base).copied();
            assign_info.insert(
                a.id,
                AssignInfo {
                    names: read_names.into(),
                    read_ids,
                    target,
                },
            );
        }

        Ok(Netlist {
            module: module.clone(),
            signals,
            index,
            assign_info,
            comb,
            seq,
            clock,
            resets,
        })
    }

    /// Precomputed execution info for an assignment, when the statement id
    /// belongs to this design.
    pub fn assign_info(&self, id: StmtId) -> Option<&AssignInfo> {
        self.assign_info.get(&id)
    }

    /// All signals, indexed by [`SignalId`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Looks a signal up by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.index.get(name).copied()
    }

    /// The signal record for an id.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.0 as usize]
    }

    /// Ids of all input ports (including the clock, if it is a port).
    pub fn inputs(&self) -> Vec<SignalId> {
        (0..self.signals.len() as u32)
            .map(SignalId)
            .filter(|id| self.signal(*id).role == SignalRole::Input)
            .collect()
    }

    /// Ids of all output ports.
    pub fn outputs(&self) -> Vec<SignalId> {
        (0..self.signals.len() as u32)
            .map(SignalId)
            .filter(|id| self.signal(*id).role == SignalRole::Output)
            .collect()
    }

    /// Input ports the testbench should randomize: inputs minus the clock.
    pub fn stimulus_inputs(&self) -> Vec<SignalId> {
        self.inputs()
            .into_iter()
            .filter(|id| Some(*id) != self.clock)
            .collect()
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist(src: &str) -> Netlist {
        Netlist::elaborate(verilog::parse(src).unwrap().top()).unwrap()
    }

    #[test]
    fn classifies_processes() {
        let n = netlist(
            "module m(input clk, input a, output reg q, output w);\n\
             assign w = a;\n\
             always @(posedge clk) q <= a;\n\
             endmodule",
        );
        assert_eq!(n.comb.len(), 1);
        assert_eq!(n.seq.len(), 1);
        assert_eq!(n.clock, n.signal_id("clk"));
    }

    #[test]
    fn stimulus_inputs_exclude_clock() {
        let n = netlist(
            "module m(input clk, input a, input b, output reg q);\n\
             always @(posedge clk) q <= a & b;\nendmodule",
        );
        let names: Vec<_> = n
            .stimulus_inputs()
            .iter()
            .map(|id| n.signal(*id).name.clone())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn async_reset_is_detected() {
        let n = netlist(
            "module m(input clk, input rst_n, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 1'b0; else q <= 1'b1;\nend\nendmodule",
        );
        assert_eq!(n.resets, vec![n.signal_id("rst_n").unwrap()]);
    }

    #[test]
    fn conflicting_clocks_rejected() {
        let err = Netlist::elaborate(
            verilog::parse(
                "module m(input c1, input c2, input d, output reg q1, output reg q2);\n\
                 always @(posedge c1) q1 <= d;\n\
                 always @(posedge c2) q2 <= d;\nendmodule",
            )
            .unwrap()
            .top(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ClockMismatch { .. }));
    }

    #[test]
    fn combinational_only_design_has_no_clock() {
        let n = netlist("module m(input a, output y);\nassign y = ~a;\nendmodule");
        assert!(n.clock.is_none());
        assert!(n.seq.is_empty());
    }

    #[test]
    fn assign_info_resolves_reads_and_target() {
        let n = netlist(
            "module m(input [3:0] a, input [1:0] i, output reg [3:0] y, output w);\n\
             assign w = a[0] & a[1];\n\
             always @(*) y[i] = a[i] ^ a[0];\n\
             endmodule",
        );
        let assigns = n.module.assignments();
        let cont = n.assign_info(assigns[0].id).expect("continuous assign");
        assert_eq!(cont.target, n.signal_id("w"));
        assert_eq!(
            cont.names.iter().map(|s| s.as_ref()).collect::<Vec<_>>(),
            vec!["a"],
            "reads are deduped"
        );
        let proc = n.assign_info(assigns[1].id).expect("procedural assign");
        assert_eq!(proc.target, n.signal_id("y"));
        // RHS reads first (a, then its index i), deduped against the
        // LHS bit-select index (i again).
        let names: Vec<&str> = proc.names.iter().map(|s| s.as_ref()).collect();
        assert_eq!(names, vec!["a", "i"]);
        assert_eq!(proc.read_ids[1], n.signal_id("i").unwrap());
        assert!(n.assign_info(verilog::StmtId(999)).is_none());
    }

    #[test]
    fn port_redeclared_as_reg_is_merged() {
        let n = netlist(
            "module m(q, d, clk);\noutput q;\ninput d;\ninput clk;\nreg q;\n\
             always @(posedge clk) q <= d;\nendmodule",
        );
        let q = n.signal(n.signal_id("q").unwrap());
        assert!(q.is_reg);
        assert_eq!(q.role, SignalRole::Output);
    }
}
