//! The compiled execution engine: levelized scheduling over flat bytecode.
//!
//! [`Engine::build`] lowers an elaborated netlist into one register-machine
//! program per process at elaboration time. Expressions and `if`/`case`
//! control flow become a flat [`Op`] array over a preallocated [`Value`]
//! slab; evaluation is a tight match-loop with no AST walking and no
//! per-node `Result` plumbing. Combinational processes run **once** per
//! cycle in a topological order computed by [`cdfg::levelize`], and only
//! when one of their fanin signals actually changed (dirty-set scheduling);
//! skipped processes replay their cached [`StmtExec`] records, so traces
//! stay bit-identical to the fixpoint interpreter's.
//!
//! `build` returns `None` — and the simulator falls back to the AST
//! interpreter — whenever single-pass equivalence cannot be proven
//! statically: static combinational cycles (including exposed self-reads),
//! multiple drivers of one signal, combinational writes to input ports or
//! overlap with sequential writes, unknown signals, or width corner cases
//! whose interpreter behavior is an error or a debug panic (over-wide
//! concats/replications, 64-bit leading concat parts, inverted part-select
//! bounds, zero-width literals). The fallback reproduces the old engine's
//! behavior exactly, including `SimError::CombinationalLoop`.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::cancel::CancelToken;
use crate::error::SimError;
use crate::eval::{eval_binary, eval_unary, Write};
use crate::metrics;
use crate::netlist::{Netlist, Process, SignalId, SignalRole};
use crate::testbench::Stimulus;
use crate::trace::{Operands, SignalSet, StmtExec, Trace, VerdictTrace};
use crate::value::Value;
use verilog::{Assignment, BinaryOp, Expr, Select, Stmt, StmtId, UnaryOp};

/// One bytecode instruction. Slots index the value slab; `sig` fields index
/// the netlist's signal values.
///
/// Shared with the batch engine: `crate::batch` reuses every non-jump
/// variant verbatim (evaluated lane-wise) and replaces the jump encoding
/// with structured mask operations.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `slab[dst] = values[sig]`
    Load { dst: u16, sig: u32 },
    /// `slab[dst] = val`
    Const { dst: u16, val: Value },
    /// `slab[dst] = op slab[a]`
    Unary { dst: u16, op: UnaryOp, a: u16 },
    /// `slab[dst] = slab[a] op slab[b]`
    Binary {
        dst: u16,
        op: BinaryOp,
        a: u16,
        b: u16,
    },
    /// `slab[dst] = slab[cond] ? slab[t] : slab[f]` (both sides evaluated).
    Ternary { dst: u16, cond: u16, t: u16, f: u16 },
    /// `slab[dst] = values[sig][slab[idx]]` (out-of-range reads as 0).
    Index { dst: u16, sig: u32, idx: u16 },
    /// `slab[dst] = values[sig][lsb + width - 1 : lsb]`
    Part {
        dst: u16,
        sig: u32,
        lsb: u32,
        width: u8,
    },
    /// `slab[dst] = {slab[hi], slab[lo]}`
    Concat { dst: u16, hi: u16, lo: u16 },
    /// Unconditional jump to instruction `to`.
    Jump { to: u32 },
    /// Jump to `to` when `slab[cond]` is all-zero.
    JumpIfFalse { cond: u16, to: u32 },
    /// Jump to `to` when `slab[a].bits() == slab[b].bits()` (case match).
    JumpIfEq { a: u16, b: u16, to: u32 },
    /// Resolve the write described by `metas[meta]` from `slab[rhs]`,
    /// record a [`StmtExec`], then apply or defer it.
    Assign { rhs: u16, meta: u32 },
}

/// How an assignment's target bits are selected.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SelKind {
    /// Whole-signal write at the signal's declared width.
    Full { width: u8 },
    /// Dynamic bit select; the index lives in slot `idx`.
    Bit { width: u8, idx: u16 },
    /// Constant part select (`lo`/`width` mirror the interpreter's casts).
    Part { lo: u8, width: u8 },
}

/// Static description of one lowered assignment statement.
#[derive(Debug, Clone)]
pub(crate) struct AssignMeta {
    pub(crate) stmt: StmtId,
    pub(crate) target: SignalId,
    pub(crate) sel: SelKind,
    pub(crate) nonblocking: bool,
    /// Signal ids of the statement's reads, in record read order (matching
    /// the netlist's `AssignInfo::names` positionally).
    pub(crate) read_ids: Vec<SignalId>,
}

/// Everything immutable after `build`.
#[derive(Debug)]
struct Code {
    /// One program per combinational process, in source order.
    comb: Vec<Vec<Op>>,
    /// One program per sequential process, in source order.
    seq: Vec<Vec<Op>>,
    /// Topological evaluation order over `comb` indices.
    order: Vec<u32>,
    /// Per-comb-process exposed-read signal ids (dirty-set gate).
    fanin: Vec<Vec<u32>>,
    metas: Vec<AssignMeta>,
    /// Slab size: the widest program's slot count.
    slots: usize,
}

/// Reusable per-run scratch, kept across runs to avoid reallocation.
#[derive(Debug)]
struct State {
    slab: Vec<Value>,
    dirty: Vec<bool>,
    /// Last-run `StmtExec`s per comb process, replayed when a process is
    /// skipped by the dirty-set gate (the interpreter records every comb
    /// process every cycle).
    exec_cache: Vec<Vec<StmtExec>>,
    deferred: Vec<Write>,
}

impl State {
    fn new(ncomb: usize) -> State {
        State {
            slab: Vec::new(),
            dirty: Vec::new(),
            exec_cache: vec![Vec::new(); ncomb],
            deferred: Vec::new(),
        }
    }
}

/// A compiled simulator for one netlist. The immutable [`Code`] is shared
/// (`Arc`) so [`Engine::fork`] can hand out independent runnable copies
/// without recompiling — the basis of the serving layer's compiled-design
/// cache.
#[derive(Debug)]
pub(crate) struct Engine {
    code: Arc<Code>,
    state: State,
}

/// The engine-independent half of compilation: levelization plus the
/// eligibility checks that prove a single ordered combinational pass
/// equivalent to the fixpoint settle. Shared by the scalar [`Engine`] and
/// the batch engine so both fall back under exactly the same conditions.
#[derive(Debug)]
pub(crate) struct Analysis {
    /// Topological evaluation order over combinational process indices.
    pub(crate) order: Vec<u32>,
    /// Per-comb-process exposed-read signal ids (the dirty-set gate).
    pub(crate) fanin: Vec<Vec<u32>>,
}

/// Levelizes and vets a netlist, or `None` when single-pass equivalence
/// with the fixpoint interpreter cannot be proven (the caller then falls
/// back to the interpreter).
pub(crate) fn analyze(netlist: &Netlist) -> Option<Analysis> {
    let lev = cdfg::levelize(&netlist.module);
    if lev.processes.len() != netlist.comb.len() {
        return None;
    }
    let order: Vec<u32> = lev.order.as_ref()?.iter().map(|&i| i as u32).collect();

    // Resolve the name-based summaries to ids. Unknown names, inputs
    // driven by combinational logic, multi-driver signals, and
    // comb/seq write overlap all void the single-pass argument.
    let mut fanin: Vec<Vec<u32>> = Vec::with_capacity(lev.processes.len());
    let mut comb_written: BTreeSet<u32> = BTreeSet::new();
    for p in &lev.processes {
        let mut f = Vec::with_capacity(p.reads.len());
        for name in &p.reads {
            f.push(netlist.signal_id(name)?.0);
        }
        fanin.push(f);
        for name in &p.writes {
            let id = netlist.signal_id(name)?;
            if netlist.signal(id).role == SignalRole::Input {
                return None;
            }
            if !comb_written.insert(id.0) {
                return None;
            }
        }
    }
    for p in &netlist.seq {
        let Process::Seq(blk) = p else { continue };
        let mut bases = Vec::new();
        collect_write_bases(&blk.body, &mut bases);
        for base in bases {
            let id = netlist.signal_id(base)?;
            if comb_written.contains(&id.0) {
                return None;
            }
        }
    }
    Some(Analysis { order, fanin })
}

impl Engine {
    /// Compiles a netlist against a precomputed [`Analysis`], or `None`
    /// when lowering hits a construct whose compiled behavior would differ
    /// from the interpreter's (the caller then falls back).
    pub(crate) fn build(netlist: &Netlist, analysis: &Analysis) -> Option<Engine> {
        let mut metas = Vec::new();
        let mut slots = 0usize;
        let mut compile = |body: &Process| -> Option<Vec<Op>> {
            let mut c = Compiler {
                netlist,
                ops: Vec::new(),
                metas: &mut metas,
                next_slot: 0,
            };
            match body {
                Process::Assign(a) => c.assign(a)?,
                Process::Comb(blk) | Process::Seq(blk) => c.stmts(&blk.body)?,
            }
            slots = slots.max(c.next_slot as usize);
            Some(c.ops)
        };
        let comb: Vec<Vec<Op>> = netlist
            .comb
            .iter()
            .map(&mut compile)
            .collect::<Option<_>>()?;
        let seq: Vec<Vec<Op>> = netlist
            .seq
            .iter()
            .map(&mut compile)
            .collect::<Option<_>>()?;

        let ncomb = comb.len();
        Some(Engine {
            code: Arc::new(Code {
                comb,
                seq,
                order: analysis.order.clone(),
                fanin: analysis.fanin.clone(),
                metas,
                slots,
            }),
            state: State::new(ncomb),
        })
    }

    /// An independent runnable engine sharing this one's compiled code.
    pub(crate) fn fork(&self) -> Engine {
        Engine {
            code: Arc::clone(&self.code),
            state: State::new(self.code.comb.len()),
        }
    }

    /// Runs a stimulus from the all-zero reset state.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSignal`] / [`SimError::NotAnInput`] for bad
    /// stimulus assignments — the same checks, in the same order, as the
    /// interpreter — and [`SimError::Cancelled`] when `cancel` fires between
    /// cycles. Compiled programs themselves cannot fail.
    pub(crate) fn run(
        &mut self,
        netlist: &Netlist,
        stimulus: &Stimulus,
        cancel: &CancelToken,
    ) -> Result<Trace, SimError> {
        let nsig = netlist.signal_count();
        let code = &*self.code;
        let State {
            slab,
            dirty,
            exec_cache,
            deferred,
        } = &mut self.state;
        let mut values: Vec<Value> = netlist
            .signals()
            .iter()
            .map(|s| Value::zero(s.width))
            .collect();
        dirty.clear();
        dirty.resize(nsig, true);
        slab.clear();
        slab.resize(code.slots, Value::bit(false));
        for cache in exec_cache.iter_mut() {
            cache.clear();
        }

        let ncycles = stimulus.vectors.len();
        let mut arena: Vec<Value> = Vec::with_capacity(ncycles * nsig);
        let mut cycle_execs: Vec<Vec<StmtExec>> = Vec::with_capacity(ncycles);
        // Observability tallies: accumulated in locals and flushed once at
        // the end, so the per-cycle cost is a register add whether or not
        // collection is enabled.
        let mut m_comb_evals = 0u64;
        let mut m_comb_skips = 0u64;
        let mut m_cache_replays = 0u64;
        let mut m_ops = 0u64;
        for (cycle_idx, vector) in stimulus.vectors.iter().enumerate() {
            let cycle = cycle_idx as u32;
            if cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }
            // 1. Apply inputs; a changed input seeds the dirty set.
            for (name, bits) in &vector.assigns {
                let id = netlist
                    .signal_id(name)
                    .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                if netlist.signal(id).role != SignalRole::Input {
                    return Err(SimError::NotAnInput { name: name.clone() });
                }
                let v = Value::new(*bits, netlist.signal(id).width);
                if values[id.0 as usize] != v {
                    values[id.0 as usize] = v;
                    dirty[id.0 as usize] = true;
                }
            }

            // 2. One levelized combinational pass. A process whose fanin is
            // clean would recompute exactly what it computed last time, so
            // it is skipped and its cached records replayed below.
            for &pi in &code.order {
                let pi = pi as usize;
                if cycle_idx != 0 && !code.fanin[pi].iter().any(|&s| dirty[s as usize]) {
                    m_comb_skips += 1;
                    m_cache_replays += exec_cache[pi].len() as u64;
                    continue;
                }
                m_comb_evals += 1;
                let cache = &mut exec_cache[pi];
                cache.clear();
                exec_ops::<true>(
                    &code.comb[pi],
                    &code.metas,
                    slab,
                    &mut values,
                    dirty,
                    cache,
                    None,
                    &mut m_ops,
                    &mut 0,
                );
            }

            // Assemble records in source-process order, as the
            // interpreter's recording pass does. Records carry no cycle
            // index, so replaying a skipped process's cache is a straight
            // copy.
            let mut execs: Vec<StmtExec> = Vec::new();
            for cache in exec_cache.iter() {
                execs.extend_from_slice(cache);
            }

            // 3. Snapshot pre-edge values into the run-wide arena.
            arena.extend_from_slice(&values);

            // Changes are consumed; anything the edge writes below seeds
            // the next cycle's gate.
            for d in dirty.iter_mut() {
                *d = false;
            }

            // 4. Clock edge: sequential programs with deferred commits.
            deferred.clear();
            for prog in &code.seq {
                exec_ops::<true>(
                    prog,
                    &code.metas,
                    slab,
                    &mut values,
                    dirty,
                    &mut execs,
                    Some(deferred),
                    &mut m_ops,
                    &mut 0,
                );
            }
            for w in deferred.drain(..) {
                let t = w.target.0 as usize;
                let cur = values[t];
                let new = w.apply(cur);
                if new != cur {
                    values[t] = new;
                    dirty[t] = true;
                }
            }
            cycle_execs.push(execs);
        }

        metrics::CYCLES.add(ncycles as u64);
        metrics::COMB_EVALS.add(m_comb_evals);
        metrics::COMB_SKIPS.add(m_comb_skips);
        metrics::CACHE_REPLAYS.add(m_cache_replays);
        metrics::BYTECODE_OPS.add(m_ops);
        metrics::SEQ_EVALS.add((ncycles * code.seq.len()) as u64);

        Ok(Trace::assemble(arena.into(), nsig, cycle_execs))
    }

    /// Runs a stimulus in verdict mode: identical value evolution, input
    /// validation, and cancellation behavior to [`Engine::run`], but no
    /// [`StmtExec`] records are materialized and only `observed` signals
    /// are snapshotted per cycle. The dirty-set gate still skips
    /// clean-fanin processes (skipping is value-neutral), it just no
    /// longer has records to replay.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Engine::run`] reports, at the same points.
    pub(crate) fn run_verdict(
        &mut self,
        netlist: &Netlist,
        stimulus: &Stimulus,
        cancel: &CancelToken,
        observed: &SignalSet,
    ) -> Result<VerdictTrace, SimError> {
        let nsig = netlist.signal_count();
        let code = &*self.code;
        let State {
            slab,
            dirty,
            deferred,
            ..
        } = &mut self.state;
        let mut values: Vec<Value> = netlist
            .signals()
            .iter()
            .map(|s| Value::zero(s.width))
            .collect();
        dirty.clear();
        dirty.resize(nsig, true);
        slab.clear();
        slab.resize(code.slots, Value::bit(false));

        let ncycles = stimulus.vectors.len();
        let nobs = observed.len();
        let mut obs_values: Vec<Value> = Vec::with_capacity(ncycles * nobs);
        let mut m_comb_evals = 0u64;
        let mut m_comb_skips = 0u64;
        let mut m_ops = 0u64;
        let mut elided = 0u64;
        for (cycle_idx, vector) in stimulus.vectors.iter().enumerate() {
            let cycle = cycle_idx as u32;
            if cancel.is_cancelled() {
                return Err(SimError::Cancelled { at_cycle: cycle });
            }
            for (name, bits) in &vector.assigns {
                let id = netlist
                    .signal_id(name)
                    .ok_or_else(|| SimError::UnknownSignal { name: name.clone() })?;
                if netlist.signal(id).role != SignalRole::Input {
                    return Err(SimError::NotAnInput { name: name.clone() });
                }
                let v = Value::new(*bits, netlist.signal(id).width);
                if values[id.0 as usize] != v {
                    values[id.0 as usize] = v;
                    dirty[id.0 as usize] = true;
                }
            }

            for &pi in &code.order {
                let pi = pi as usize;
                if cycle_idx != 0 && !code.fanin[pi].iter().any(|&s| dirty[s as usize]) {
                    m_comb_skips += 1;
                    continue;
                }
                m_comb_evals += 1;
                exec_ops::<false>(
                    &code.comb[pi],
                    &code.metas,
                    slab,
                    &mut values,
                    dirty,
                    &mut Vec::new(),
                    None,
                    &mut m_ops,
                    &mut elided,
                );
            }

            // The O(observed) snapshot: the whole point of verdict mode.
            for &id in observed.ids() {
                obs_values.push(values[id.0 as usize]);
            }

            for d in dirty.iter_mut() {
                *d = false;
            }

            deferred.clear();
            for prog in &code.seq {
                exec_ops::<false>(
                    prog,
                    &code.metas,
                    slab,
                    &mut values,
                    dirty,
                    &mut Vec::new(),
                    Some(deferred),
                    &mut m_ops,
                    &mut elided,
                );
            }
            for w in deferred.drain(..) {
                let t = w.target.0 as usize;
                let cur = values[t];
                let new = w.apply(cur);
                if new != cur {
                    values[t] = new;
                    dirty[t] = true;
                }
            }
        }

        metrics::CYCLES.add(ncycles as u64);
        metrics::COMB_EVALS.add(m_comb_evals);
        metrics::COMB_SKIPS.add(m_comb_skips);
        metrics::BYTECODE_OPS.add(m_ops);
        metrics::SEQ_EVALS.add((ncycles * code.seq.len()) as u64);
        metrics::RECORDS_ELIDED.add(elided);

        Ok(VerdictTrace {
            values: obs_values,
            nobs,
            records_elided: elided,
        })
    }
}

/// Executes one program. Infallible by construction: every condition the
/// interpreter reports as an error (or panics on in debug builds) was
/// rejected at compile time.
///
/// `RECORD` selects trace mode at monomorphization time: `true` pushes a
/// [`StmtExec`] per assignment into `recorder` (full-trace mode), `false`
/// compiles the record push away entirely and tallies the elision in
/// `elided` instead (verdict mode) — values, dirty bits, and deferred
/// writes evolve identically either way.
#[allow(clippy::too_many_arguments)]
fn exec_ops<const RECORD: bool>(
    ops: &[Op],
    metas: &[AssignMeta],
    slab: &mut [Value],
    values: &mut [Value],
    dirty: &mut [bool],
    recorder: &mut Vec<StmtExec>,
    mut deferred: Option<&mut Vec<Write>>,
    op_count: &mut u64,
    elided: &mut u64,
) {
    let mut executed = 0u64;
    let mut pc = 0usize;
    while pc < ops.len() {
        executed += 1;
        match ops[pc] {
            Op::Load { dst, sig } => slab[dst as usize] = values[sig as usize],
            Op::Const { dst, val } => slab[dst as usize] = val,
            Op::Unary { dst, op, a } => slab[dst as usize] = eval_unary(op, slab[a as usize]),
            Op::Binary { dst, op, a, b } => {
                slab[dst as usize] = eval_binary(op, slab[a as usize], slab[b as usize]);
            }
            Op::Ternary { dst, cond, t, f } => {
                let tv = slab[t as usize];
                let fv = slab[f as usize];
                let w = tv.width().max(fv.width());
                slab[dst as usize] = if slab[cond as usize].is_truthy() {
                    tv.resize(w)
                } else {
                    fv.resize(w)
                };
            }
            Op::Index { dst, sig, idx } => {
                let v = values[sig as usize];
                let i = slab[idx as usize].bits();
                slab[dst as usize] =
                    Value::bit(i < u64::from(v.width()) && (v.bits() >> i) & 1 == 1);
            }
            Op::Part {
                dst,
                sig,
                lsb,
                width,
            } => {
                slab[dst as usize] = Value::new(values[sig as usize].bits() >> lsb, width);
            }
            Op::Concat { dst, hi, lo } => {
                let h = slab[hi as usize];
                let l = slab[lo as usize];
                slab[dst as usize] =
                    Value::new((h.bits() << l.width()) | l.bits(), h.width() + l.width());
            }
            Op::Jump { to } => {
                pc = to as usize;
                continue;
            }
            Op::JumpIfFalse { cond, to } => {
                if !slab[cond as usize].is_truthy() {
                    pc = to as usize;
                    continue;
                }
            }
            Op::JumpIfEq { a, b, to } => {
                if slab[a as usize].bits() == slab[b as usize].bits() {
                    pc = to as usize;
                    continue;
                }
            }
            Op::Assign { rhs, meta } => {
                let m = &metas[meta as usize];
                let value = slab[rhs as usize];
                let write = match m.sel {
                    SelKind::Full { width } => Write {
                        target: m.target,
                        lo: 0,
                        width,
                        bits: value.resize(width).bits(),
                    },
                    SelKind::Bit { width, idx } => {
                        let i = slab[idx as usize].bits().min(63) as u8;
                        Write {
                            target: m.target,
                            lo: i.min(width - 1),
                            width: 1,
                            bits: u64::from(value.lsb()),
                        }
                    }
                    SelKind::Part { lo, width } => Write {
                        target: m.target,
                        lo,
                        width,
                        bits: value.resize(width).bits(),
                    },
                };
                // Operands are read before the write lands, like the
                // interpreter's record-then-apply order.
                if RECORD {
                    recorder.push(StmtExec {
                        stmt: m.stmt,
                        operands: Operands::capture(m.read_ids.len(), |k| {
                            values[m.read_ids[k].0 as usize]
                        }),
                        result: Value::new(write.bits, write.width),
                    });
                } else {
                    *elided += 1;
                }
                match (&mut deferred, m.nonblocking) {
                    (Some(d), true) => d.push(write),
                    _ => {
                        let t = write.target.0 as usize;
                        let cur = values[t];
                        let new = write.apply(cur);
                        if new != cur {
                            values[t] = new;
                            dirty[t] = true;
                        }
                    }
                }
            }
        }
        pc += 1;
    }
    *op_count += executed;
}

/// Collects the base names of every assignment target in a statement tree.
fn collect_write_bases<'s>(stmts: &'s [Stmt], out: &mut Vec<&'s str>) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => out.push(&a.lhs.base),
            Stmt::If(i) => {
                collect_write_bases(&i.then_branch, out);
                collect_write_bases(&i.else_branch, out);
            }
            Stmt::Case(c) => {
                for arm in &c.arms {
                    collect_write_bases(&arm.body, out);
                }
                collect_write_bases(&c.default, out);
            }
        }
    }
}

/// Lowers one process body into bytecode. Every method returns `None` to
/// request interpreter fallback.
///
/// The batch engine drives this same lowerer for expressions and
/// assignments (so fallback conditions and slot allocation are decided in
/// exactly one place) and converts the emitted ops; only `if`/`case`
/// control flow is lowered differently there.
pub(crate) struct Compiler<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) ops: Vec<Op>,
    pub(crate) metas: &'a mut Vec<AssignMeta>,
    pub(crate) next_slot: u32,
}

impl Compiler<'_> {
    fn slot(&mut self) -> Option<u16> {
        let s = self.next_slot;
        if s > u32::from(u16::MAX) {
            return None;
        }
        self.next_slot += 1;
        Some(s as u16)
    }

    fn signal(&self, name: &str) -> Option<(u32, u8)> {
        let id = self.netlist.signal_id(name)?;
        Some((id.0, self.netlist.signal(id).width))
    }

    /// Compiles an expression; returns its result slot and static width
    /// (widths are fully static in this Verilog subset, so the returned
    /// width always equals the runtime `Value` width).
    pub(crate) fn expr(&mut self, e: &Expr) -> Option<(u16, u8)> {
        match e {
            Expr::Ident { name, .. } => {
                let (sig, w) = self.signal(name)?;
                let dst = self.slot()?;
                self.ops.push(Op::Load { dst, sig });
                Some((dst, w))
            }
            Expr::Literal { width, value, .. } => {
                let w = width.unwrap_or(32).min(64) as u8;
                if w == 0 {
                    return None; // the interpreter panics at runtime
                }
                let dst = self.slot()?;
                self.ops.push(Op::Const {
                    dst,
                    val: Value::new(*value, w),
                });
                Some((dst, w))
            }
            Expr::Unary { op, operand, .. } => {
                let (a, wa) = self.expr(operand)?;
                let dst = self.slot()?;
                self.ops.push(Op::Unary { dst, op: *op, a });
                let w = match op {
                    UnaryOp::Not | UnaryOp::Negate => wa,
                    _ => 1,
                };
                Some((dst, w))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let (a, wa) = self.expr(lhs)?;
                let (b, wb) = self.expr(rhs)?;
                let dst = self.slot()?;
                self.ops.push(Op::Binary { dst, op: *op, a, b });
                let w = match op {
                    BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor
                    | BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::Div
                    | BinaryOp::Mod => wa.max(wb),
                    BinaryOp::Shl | BinaryOp::Shr => wa,
                    _ => 1,
                };
                Some((dst, w))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let (c, _) = self.expr(cond)?;
                let (t, wt) = self.expr(then_expr)?;
                let (f, wf) = self.expr(else_expr)?;
                let dst = self.slot()?;
                self.ops.push(Op::Ternary { dst, cond: c, t, f });
                Some((dst, wt.max(wf)))
            }
            Expr::Index { base, index, .. } => {
                let (sig, _) = self.signal(base)?;
                let (idx, _) = self.expr(index)?;
                let dst = self.slot()?;
                self.ops.push(Op::Index { dst, sig, idx });
                Some((dst, 1))
            }
            Expr::Part { base, msb, lsb, .. } => {
                let (sig, _) = self.signal(base)?;
                if msb < lsb || *lsb >= 64 {
                    return None; // interpreter panics (underflow / shift overflow)
                }
                let width = (msb - lsb + 1) as u8;
                if !(1..=64).contains(&width) {
                    return None;
                }
                let dst = self.slot()?;
                self.ops.push(Op::Part {
                    dst,
                    sig,
                    lsb: *lsb,
                    width,
                });
                Some((dst, width))
            }
            Expr::Concat { parts, .. } => {
                let mut compiled = Vec::with_capacity(parts.len());
                for p in parts {
                    compiled.push(self.expr(p)?);
                }
                self.concat_chain(&compiled)
            }
            Expr::Repeat { count, inner, .. } => {
                let part = self.expr(inner)?;
                let total = u32::from(part.1) * count;
                if total > 64 || total == 0 {
                    return None; // interpreter errors at runtime
                }
                // The inner expression is evaluated once; its slot repeats.
                let compiled = vec![part; *count as usize];
                self.concat_chain(&compiled)
            }
        }
    }

    /// Folds already-compiled parts most-significant-first into a chain of
    /// `Concat` ops, mirroring the interpreter's left fold. Falls back on
    /// empty part lists and totals over 64 bits (interpreter errors), and
    /// on a 64-bit leading part (the interpreter's first `0 << width`
    /// shift debug-panics there).
    fn concat_chain(&mut self, parts: &[(u16, u8)]) -> Option<(u16, u8)> {
        let (&(mut acc, mut width), rest) = parts.split_first()?;
        if width == 64 {
            return None;
        }
        for &(slot, w) in rest {
            if u32::from(width) + u32::from(w) > 64 {
                return None;
            }
            let dst = self.slot()?;
            self.ops.push(Op::Concat {
                dst,
                hi: acc,
                lo: slot,
            });
            acc = dst;
            width += w;
        }
        Some((acc, width))
    }

    pub(crate) fn assign(&mut self, a: &Assignment) -> Option<()> {
        let (rhs, _) = self.expr(&a.rhs)?;
        let info = self.netlist.assign_info(a.id)?;
        let target = info.target?;
        let full = self.netlist.signal(target).width;
        let sel = match &a.lhs.select {
            None => SelKind::Full { width: full },
            Some(Select::Bit(idx_expr)) => {
                let (idx, _) = self.expr(idx_expr)?;
                SelKind::Bit { width: full, idx }
            }
            Some(Select::Part { msb, lsb }) => {
                if msb < lsb {
                    return None; // interpreter panics on the underflow
                }
                // Mirror the interpreter's casts exactly; out-of-range
                // widths panic identically in both engines at runtime.
                SelKind::Part {
                    lo: *lsb as u8,
                    width: (msb - lsb + 1) as u8,
                }
            }
        };
        let meta = self.metas.len() as u32;
        self.metas.push(AssignMeta {
            stmt: a.id,
            target,
            sel,
            nonblocking: a.kind == verilog::AssignKind::NonBlocking,
            read_ids: info.read_ids.clone(),
        });
        self.ops.push(Op::Assign { rhs, meta });
        Some(())
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Option<()> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => self.assign(a)?,
                Stmt::If(i) => {
                    let (cond, _) = self.expr(&i.cond)?;
                    let jf = self.ops.len();
                    self.ops.push(Op::JumpIfFalse { cond, to: 0 });
                    self.stmts(&i.then_branch)?;
                    if i.else_branch.is_empty() {
                        self.patch(jf, self.ops.len());
                    } else {
                        let j = self.ops.len();
                        self.ops.push(Op::Jump { to: 0 });
                        self.patch(jf, self.ops.len());
                        self.stmts(&i.else_branch)?;
                        self.patch(j, self.ops.len());
                    }
                }
                Stmt::Case(c) => {
                    let (subj, _) = self.expr(&c.subject)?;
                    // Emit all label tests first (labels are pure, so
                    // evaluating ones past the interpreter's first match is
                    // unobservable), then the arm bodies.
                    let mut arm_tests: Vec<Vec<usize>> = Vec::with_capacity(c.arms.len());
                    for arm in &c.arms {
                        let mut tests = Vec::with_capacity(arm.labels.len());
                        for label in &arm.labels {
                            let (l, _) = self.expr(label)?;
                            tests.push(self.ops.len());
                            self.ops.push(Op::JumpIfEq {
                                a: subj,
                                b: l,
                                to: 0,
                            });
                        }
                        arm_tests.push(tests);
                    }
                    let to_default = self.ops.len();
                    self.ops.push(Op::Jump { to: 0 });
                    let mut to_end = Vec::with_capacity(c.arms.len());
                    for (arm, tests) in c.arms.iter().zip(arm_tests) {
                        let here = self.ops.len();
                        for t in tests {
                            self.patch(t, here);
                        }
                        self.stmts(&arm.body)?;
                        to_end.push(self.ops.len());
                        self.ops.push(Op::Jump { to: 0 });
                    }
                    self.patch(to_default, self.ops.len());
                    self.stmts(&c.default)?;
                    let end = self.ops.len();
                    for j in to_end {
                        self.patch(j, end);
                    }
                }
            }
        }
        Some(())
    }

    /// Redirects the jump at `at` to instruction `to`.
    fn patch(&mut self, at: usize, to: usize) {
        let to = to as u32;
        match &mut self.ops[at] {
            Op::Jump { to: t } | Op::JumpIfFalse { to: t, .. } | Op::JumpIfEq { to: t, .. } => {
                *t = to;
            }
            _ => unreachable!("patch target is a jump"),
        }
    }
}
