//! Random-stimulus testbench generation (GOLDMINE testbench substitute).
//!
//! Generates seeded, reproducible input sequences. Reset-like inputs
//! (detected by name or by appearing as an async-reset edge) are held active
//! for the first cycles and inactive afterwards; every other input is
//! re-randomized per cycle with a configurable hold probability, which keeps
//! temporal correlation in the stimulus the way constrained-random
//! testbenches do.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::netlist::Netlist;
use crate::value::Value;

/// A single cycle's input assignments, by port name.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InputVector {
    /// `(port name, bits)` pairs.
    pub assigns: Vec<(String, u64)>,
}

impl InputVector {
    /// The driven value of a port, if present in this vector.
    pub fn value_of(&self, name: &str) -> Option<u64> {
        self.assigns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A complete multi-cycle stimulus.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Stimulus {
    /// One input vector per cycle.
    pub vectors: Vec<InputVector>,
}

impl Stimulus {
    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the stimulus has no cycles.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Seeded random testbench generator.
#[derive(Debug, Clone)]
pub struct TestbenchGen {
    seed: u64,
    hold_probability: f64,
    reset_cycles: usize,
    couple_probability: f64,
}

impl TestbenchGen {
    /// Creates a generator with the default hold probability (0.5), a
    /// 2-cycle reset window, and 25% input coupling.
    pub fn new(seed: u64) -> Self {
        TestbenchGen {
            seed,
            hold_probability: 0.5,
            reset_cycles: 2,
            couple_probability: 0.25,
        }
    }

    /// Sets the probability that a multi-bit input copies the value of
    /// another same-width input in the same cycle. Coupling makes equality
    /// comparisons (address matches, tag compares) fire at useful rates —
    /// the role GOLDMINE's design-aware testbenches play in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_couple_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.couple_probability = p;
        self
    }

    /// Sets the probability that an input holds its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_hold_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.hold_probability = p;
        self
    }

    /// Sets how many leading cycles reset-like inputs stay asserted.
    pub fn with_reset_cycles(mut self, cycles: usize) -> Self {
        self.reset_cycles = cycles;
        self
    }

    /// Generates a stimulus of `cycles` cycles for a design.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use veribug_sim::{Netlist, TestbenchGen};
    ///
    /// let unit = verilog::parse(
    ///     "module m(input clk, input rst_n, input d, output reg q);\n\
    ///      always @(posedge clk) q <= d & rst_n;\nendmodule",
    /// )?;
    /// let netlist = Netlist::elaborate(unit.top())?;
    /// let stim = TestbenchGen::new(42).generate(&netlist, 8);
    /// assert_eq!(stim.len(), 8);
    /// // rst_n is active-low: held at 0 during the reset window.
    /// assert_eq!(stim.vectors[0].value_of("rst_n"), Some(0));
    /// assert_eq!(stim.vectors[7].value_of("rst_n"), Some(1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(&self, netlist: &Netlist, cycles: usize) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let inputs = netlist.stimulus_inputs();
        let mut prev: Vec<u64> = inputs.iter().map(|_| 0).collect();
        let mut vectors = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let mut assigns: Vec<(String, u64)> = Vec::with_capacity(inputs.len());
            for (slot, id) in inputs.iter().enumerate() {
                let sig = netlist.signal(*id);
                let bits = if let Some(active_low) = reset_polarity(netlist, &sig.name, *id) {
                    let in_reset = cycle < self.reset_cycles;
                    // Active-low reset: 0 while resetting. Active-high: 1.
                    u64::from(in_reset != active_low)
                } else if cycle > 0 && rng.random_bool(self.hold_probability) {
                    prev[slot]
                } else if sig.width > 1 && rng.random_bool(self.couple_probability) {
                    // Copy another same-width input already driven this
                    // cycle, so equality comparisons can fire.
                    let peers: Vec<u64> = inputs[..slot]
                        .iter()
                        .zip(&assigns)
                        .filter(|(pid, _)| netlist.signal(**pid).width == sig.width)
                        .map(|(_, (_, bits))| *bits)
                        .collect();
                    if peers.is_empty() {
                        rng.random::<u64>() & Value::mask(sig.width)
                    } else {
                        peers[rng.random_range(0..peers.len())]
                    }
                } else {
                    rng.random::<u64>() & Value::mask(sig.width)
                };
                prev[slot] = bits;
                assigns.push((sig.name.clone(), bits));
            }
            vectors.push(InputVector { assigns });
        }
        Stimulus { vectors }
    }

    /// Generates `count` independent stimuli by perturbing the seed.
    pub fn generate_many(&self, netlist: &Netlist, cycles: usize, count: usize) -> Vec<Stimulus> {
        (0..count)
            .map(|i| {
                TestbenchGen {
                    seed: self
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                    ..self.clone()
                }
                .generate(netlist, cycles)
            })
            .collect()
    }
}

/// Returns `Some(active_low)` when the signal looks like a reset.
fn reset_polarity(netlist: &Netlist, name: &str, id: crate::netlist::SignalId) -> Option<bool> {
    let lower = name.to_ascii_lowercase();
    let is_named_reset = lower == "rst"
        || lower == "reset"
        || lower.starts_with("rst_")
        || lower.starts_with("reset_")
        || lower.ends_with("_rst")
        || lower.ends_with("_reset")
        || lower.ends_with("rst_n")
        || lower.ends_with("resetn")
        || lower.ends_with("rst_ni");
    if !is_named_reset && !netlist.resets.contains(&id) {
        return None;
    }
    let active_low = lower.ends_with('n') || lower.ends_with("_ni") || lower.contains("_n");
    Some(active_low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn netlist(src: &str) -> Netlist {
        Netlist::elaborate(verilog::parse(src).unwrap().top()).unwrap()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let n = netlist(
            "module m(input clk, input [7:0] a, input b, output reg [7:0] q);\n\
             always @(posedge clk) q <= a & {8{b}};\nendmodule",
        );
        let s1 = TestbenchGen::new(123).generate(&n, 32);
        let s2 = TestbenchGen::new(123).generate(&n, 32);
        let s3 = TestbenchGen::new(124).generate(&n, 32);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn values_respect_widths() {
        let n = netlist(
            "module m(input clk, input [2:0] a, output reg [2:0] q);\n\
             always @(posedge clk) q <= a;\nendmodule",
        );
        let s = TestbenchGen::new(9)
            .with_hold_probability(0.0)
            .generate(&n, 64);
        for v in &s.vectors {
            let a = v.value_of("a").unwrap();
            assert!(a < 8, "3-bit input out of range: {a}");
        }
    }

    #[test]
    fn reset_window_polarity() {
        let n = netlist(
            "module m(input clk, input rst, input rst_n, input d, output reg q);\n\
             always @(posedge clk) q <= d & rst_n & ~rst;\nendmodule",
        );
        let s = TestbenchGen::new(5).with_reset_cycles(3).generate(&n, 6);
        for c in 0..3 {
            assert_eq!(
                s.vectors[c].value_of("rst"),
                Some(1),
                "active-high asserted"
            );
            assert_eq!(
                s.vectors[c].value_of("rst_n"),
                Some(0),
                "active-low asserted"
            );
        }
        for c in 3..6 {
            assert_eq!(s.vectors[c].value_of("rst"), Some(0));
            assert_eq!(s.vectors[c].value_of("rst_n"), Some(1));
        }
    }

    #[test]
    fn generate_many_yields_distinct_stimuli() {
        let n = netlist(
            "module m(input clk, input [7:0] a, output reg [7:0] q);\n\
             always @(posedge clk) q <= a;\nendmodule",
        );
        let many = TestbenchGen::new(1).generate_many(&n, 16, 4);
        assert_eq!(many.len(), 4);
        assert_ne!(many[0], many[1]);
        assert_ne!(many[1], many[2]);
    }

    #[test]
    fn hold_probability_one_freezes_inputs_after_first_cycle() {
        let n = netlist(
            "module m(input clk, input [7:0] a, output reg [7:0] q);\n\
             always @(posedge clk) q <= a;\nendmodule",
        );
        let s = TestbenchGen::new(2)
            .with_hold_probability(1.0)
            .generate(&n, 8);
        let first = s.vectors[0].value_of("a").unwrap();
        for v in &s.vectors {
            assert_eq!(v.value_of("a"), Some(first));
        }
    }
}
