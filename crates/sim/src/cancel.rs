//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle checked once per simulated
//! cycle by both execution engines. Serving layers install one via
//! [`crate::Simulator::set_cancel`] so a request deadline (or an explicit
//! abort) stops the cycle loop at the next cycle boundary with
//! [`crate::SimError::Cancelled`]; partial work is discarded.
//!
//! The default token is *inert*: it carries no shared state and
//! [`CancelToken::is_cancelled`] is a single `Option` check, so batch
//! pipelines that never cancel pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation state (explicit flag and/or wall-clock deadline).
#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle.
///
/// All clones observe the same state: cancelling any clone cancels them
/// all. The [`Default`] token is inert and can never fire.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that only fires on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// An inert token that can never fire (same as [`Default`]).
    pub fn inert() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. A no-op on inert tokens.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has been cancelled or its deadline has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::inert();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_fires_once_passed() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
