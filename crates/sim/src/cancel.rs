//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle checked once per simulated
//! cycle by both execution engines. Serving layers install one via
//! [`crate::Simulator::set_cancel`] so a request deadline (or an explicit
//! abort) stops the cycle loop at the next cycle boundary with
//! [`crate::SimError::Cancelled`]; partial work is discarded.
//!
//! The default token is *inert*: it carries no shared state and
//! [`CancelToken::is_cancelled`] is a single `Option` check, so batch
//! pipelines that never cancel pay nothing.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation state (explicit flag, wall-clock deadline, and/or a
/// poll budget).
#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// When present, [`CancelToken::is_cancelled`] decrements this and the
    /// token fires once it is exhausted — a deterministic stand-in for a
    /// wall-clock deadline in tests.
    poll_budget: Option<AtomicI64>,
}

/// A cloneable cancellation handle.
///
/// All clones observe the same state: cancelling any clone cancels them
/// all. The [`Default`] token is inert and can never fire.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that only fires on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                poll_budget: None,
            })),
        }
    }

    /// A token that fires once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                poll_budget: None,
            })),
        }
    }

    /// A token that fires after `polls` calls to
    /// [`is_cancelled`](Self::is_cancelled) have returned `false` (or on
    /// explicit cancel).
    ///
    /// Both engines poll once per simulated cycle, so this cancels a run
    /// deterministically mid-simulation — including mid-batch — where a
    /// wall-clock deadline would be flaky. Clones share the budget.
    pub fn after_polls(polls: u64) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                poll_budget: Some(AtomicI64::new(polls.min(i64::MAX as u64) as i64)),
            })),
        }
    }

    /// An inert token that can never fire (same as [`Default`]).
    pub fn inert() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. A no-op on inert tokens.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has been cancelled or its deadline has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
                    || inner
                        .poll_budget
                        .as_ref()
                        .is_some_and(|b| b.fetch_sub(1, Ordering::Relaxed) <= 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::inert();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn poll_budget_fires_after_n_false_polls() {
        let t = CancelToken::after_polls(3);
        for _ in 0..3 {
            assert!(!t.is_cancelled());
        }
        assert!(t.is_cancelled());
        // Stays fired.
        assert!(t.is_cancelled());
        // A zero budget fires immediately; explicit cancel still works.
        assert!(CancelToken::after_polls(0).is_cancelled());
        let t = CancelToken::after_polls(100);
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires_once_passed() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
