//! Expression evaluation and statement execution.
//!
//! Width semantics follow a simplified two-state reading of Verilog-2001:
//! bitwise/arithmetic binary operators work at the wider operand's width
//! (zero-extended, wrapping), comparisons/logical operators/reductions yield
//! one bit, shifts keep the left operand's width, concatenation sums widths.

use crate::error::SimError;
use crate::netlist::{Netlist, SignalId};
use crate::trace::{Operands, StmtExec};
use crate::value::{BatchValue, Value};
use verilog::{Assignment, BinaryOp, CaseStmt, Expr, IfStmt, LValue, Select, Stmt, UnaryOp};

/// A pending (possibly partial) write to a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Write {
    /// Target signal.
    pub target: SignalId,
    /// Lowest bit replaced.
    pub lo: u8,
    /// Number of bits replaced.
    pub width: u8,
    /// Replacement bits (already truncated to `width`).
    pub bits: u64,
}

impl Write {
    /// Applies this write to a current value, read-modify-write style.
    pub fn apply(self, current: Value) -> Value {
        let mask = Value::mask(self.width) << self.lo;
        let bits = (current.bits() & !mask) | ((self.bits << self.lo) & mask);
        Value::new(bits, current.width())
    }
}

/// Applies a unary operator. Shared by the AST interpreter and the bytecode
/// engine so both produce bit-identical results.
pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Value {
    match op {
        UnaryOp::Not => Value::new(!v.bits(), v.width()),
        UnaryOp::LogicalNot => Value::bit(!v.is_truthy()),
        UnaryOp::Negate => Value::new(v.bits().wrapping_neg(), v.width()),
        UnaryOp::RedAnd => Value::bit(v.bits() == Value::mask(v.width())),
        UnaryOp::RedOr => Value::bit(v.is_truthy()),
        UnaryOp::RedXor => Value::bit(v.bits().count_ones() & 1 == 1),
        UnaryOp::RedXnor => Value::bit(v.bits().count_ones() & 1 == 0),
    }
}

/// Applies a binary operator at the combined width. Shared by the AST
/// interpreter and the bytecode engine.
pub(crate) fn eval_binary(op: BinaryOp, a: Value, b: Value) -> Value {
    let w = a.width().max(b.width());
    match op {
        BinaryOp::And => Value::new(a.bits() & b.bits(), w),
        BinaryOp::Or => Value::new(a.bits() | b.bits(), w),
        BinaryOp::Xor => Value::new(a.bits() ^ b.bits(), w),
        BinaryOp::Xnor => Value::new(!(a.bits() ^ b.bits()), w),
        BinaryOp::LogAnd => Value::bit(a.is_truthy() && b.is_truthy()),
        BinaryOp::LogOr => Value::bit(a.is_truthy() || b.is_truthy()),
        BinaryOp::Eq | BinaryOp::CaseEq => Value::bit(a.bits() == b.bits()),
        BinaryOp::Neq | BinaryOp::CaseNeq => Value::bit(a.bits() != b.bits()),
        BinaryOp::Lt => Value::bit(a.bits() < b.bits()),
        BinaryOp::Le => Value::bit(a.bits() <= b.bits()),
        BinaryOp::Gt => Value::bit(a.bits() > b.bits()),
        BinaryOp::Ge => Value::bit(a.bits() >= b.bits()),
        BinaryOp::Add => Value::new(a.bits().wrapping_add(b.bits()), w),
        BinaryOp::Sub => Value::new(a.bits().wrapping_sub(b.bits()), w),
        BinaryOp::Mul => Value::new(a.bits().wrapping_mul(b.bits()), w),
        BinaryOp::Div => Value::new(a.bits().checked_div(b.bits()).unwrap_or(0), w),
        BinaryOp::Mod => Value::new(a.bits().checked_rem(b.bits()).unwrap_or(0), w),
        BinaryOp::Shl => {
            let sh = b.bits().min(64) as u32;
            Value::new(a.bits().checked_shl(sh).unwrap_or(0), a.width())
        }
        BinaryOp::Shr => {
            let sh = b.bits().min(64) as u32;
            Value::new(a.bits().checked_shr(sh).unwrap_or(0), a.width())
        }
    }
}

/// Batched [`eval_unary`]: applies the operator to the first `n` lanes of
/// `v`, writing the result into `out` in place (no 512-byte temporary, no
/// copy-out). Lanes `n..LANES` of `out` are left untouched — they may hold
/// garbage from a previous op, and the batch engine never reads beyond the
/// batch fill.
///
/// The operator match sits outside the lane loop so each arm is a tight,
/// auto-vectorizable pass over the word planes. Every arm restates the
/// scalar formula verbatim; the differential suite holds the two paths
/// bit-identical.
pub(crate) fn eval_unary_batch(op: UnaryOp, v: &BatchValue, n: usize, out: &mut BatchValue) {
    let w = v.width();
    let m = Value::mask(w);
    // Slicing to the fill bound lets the optimizer drop per-lane bounds
    // checks and vectorize the lane loops.
    let a = &v.words()[..n];
    let o = &mut out.words_mut()[..n];
    let mut width = 1;
    match op {
        UnaryOp::Not => {
            for l in 0..n {
                o[l] = !a[l] & m;
            }
            width = w;
        }
        UnaryOp::LogicalNot => {
            for l in 0..n {
                o[l] = u64::from(a[l] == 0);
            }
        }
        UnaryOp::Negate => {
            for l in 0..n {
                o[l] = a[l].wrapping_neg() & m;
            }
            width = w;
        }
        UnaryOp::RedAnd => {
            for l in 0..n {
                o[l] = u64::from(a[l] == m);
            }
        }
        UnaryOp::RedOr => {
            for l in 0..n {
                o[l] = u64::from(a[l] != 0);
            }
        }
        UnaryOp::RedXor => {
            for l in 0..n {
                o[l] = u64::from(a[l].count_ones() & 1 == 1);
            }
        }
        UnaryOp::RedXnor => {
            for l in 0..n {
                o[l] = u64::from(a[l].count_ones() & 1 == 0);
            }
        }
    }
    out.set_width(width);
}

/// Batched [`eval_binary`]: applies the operator to the first `n` lanes at
/// the combined width, writing into `out` in place (see
/// [`eval_unary_batch`] for the lane/garbage contract). Shift amounts,
/// divisors, and comparison operands vary per lane.
pub(crate) fn eval_binary_batch(
    op: BinaryOp,
    a: &BatchValue,
    b: &BatchValue,
    n: usize,
    out: &mut BatchValue,
) {
    let w = a.width().max(b.width());
    let m = Value::mask(w);
    let (x, y) = (&a.words()[..n], &b.words()[..n]);
    let o = &mut out.words_mut()[..n];
    let mut width = 1;
    match op {
        BinaryOp::And => {
            for l in 0..n {
                o[l] = x[l] & y[l];
            }
            width = w;
        }
        BinaryOp::Or => {
            for l in 0..n {
                o[l] = x[l] | y[l];
            }
            width = w;
        }
        BinaryOp::Xor => {
            for l in 0..n {
                o[l] = x[l] ^ y[l];
            }
            width = w;
        }
        BinaryOp::Xnor => {
            for l in 0..n {
                o[l] = !(x[l] ^ y[l]) & m;
            }
            width = w;
        }
        BinaryOp::LogAnd => {
            for l in 0..n {
                o[l] = u64::from(x[l] != 0 && y[l] != 0);
            }
        }
        BinaryOp::LogOr => {
            for l in 0..n {
                o[l] = u64::from(x[l] != 0 || y[l] != 0);
            }
        }
        BinaryOp::Eq | BinaryOp::CaseEq => {
            for l in 0..n {
                o[l] = u64::from(x[l] == y[l]);
            }
        }
        BinaryOp::Neq | BinaryOp::CaseNeq => {
            for l in 0..n {
                o[l] = u64::from(x[l] != y[l]);
            }
        }
        BinaryOp::Lt => {
            for l in 0..n {
                o[l] = u64::from(x[l] < y[l]);
            }
        }
        BinaryOp::Le => {
            for l in 0..n {
                o[l] = u64::from(x[l] <= y[l]);
            }
        }
        BinaryOp::Gt => {
            for l in 0..n {
                o[l] = u64::from(x[l] > y[l]);
            }
        }
        BinaryOp::Ge => {
            for l in 0..n {
                o[l] = u64::from(x[l] >= y[l]);
            }
        }
        BinaryOp::Add => {
            for l in 0..n {
                o[l] = x[l].wrapping_add(y[l]) & m;
            }
            width = w;
        }
        BinaryOp::Sub => {
            for l in 0..n {
                o[l] = x[l].wrapping_sub(y[l]) & m;
            }
            width = w;
        }
        BinaryOp::Mul => {
            for l in 0..n {
                o[l] = x[l].wrapping_mul(y[l]) & m;
            }
            width = w;
        }
        BinaryOp::Div => {
            for l in 0..n {
                o[l] = x[l].checked_div(y[l]).unwrap_or(0);
            }
            width = w;
        }
        BinaryOp::Mod => {
            for l in 0..n {
                o[l] = x[l].checked_rem(y[l]).unwrap_or(0);
            }
            width = w;
        }
        BinaryOp::Shl => {
            let wa = a.width();
            let ma = Value::mask(wa);
            for l in 0..n {
                let sh = y[l].min(64) as u32;
                o[l] = x[l].checked_shl(sh).unwrap_or(0) & ma;
            }
            width = wa;
        }
        BinaryOp::Shr => {
            for l in 0..n {
                let sh = y[l].min(64) as u32;
                o[l] = x[l].checked_shr(sh).unwrap_or(0);
            }
            width = a.width();
        }
    }
    out.set_width(width);
}

/// Mutable evaluation state over a netlist.
#[derive(Debug)]
pub struct EvalCtx<'n> {
    netlist: &'n Netlist,
    /// Current value of every signal, indexed by [`SignalId`].
    pub values: Vec<Value>,
}

impl<'n> EvalCtx<'n> {
    /// Creates a context with every signal at zero.
    pub fn new(netlist: &'n Netlist) -> Self {
        let values = netlist
            .signals()
            .iter()
            .map(|s| Value::zero(s.width))
            .collect();
        EvalCtx { netlist, values }
    }

    /// Resets every signal to zero.
    pub fn reset(&mut self) {
        for (v, s) in self.values.iter_mut().zip(self.netlist.signals()) {
            *v = Value::zero(s.width);
        }
    }

    /// The current value of a named signal.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSignal`] when the name is not declared.
    pub fn value_of(&self, name: &str) -> Result<Value, SimError> {
        let id = self
            .netlist
            .signal_id(name)
            .ok_or_else(|| SimError::UnknownSignal {
                name: name.to_owned(),
            })?;
        Ok(self.values[id.0 as usize])
    }

    /// Evaluates an expression against the current signal values.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSignal`] for undeclared references and
    /// [`SimError::Unsupported`] for concatenations wider than 64 bits.
    pub fn eval(&self, e: &Expr) -> Result<Value, SimError> {
        match e {
            Expr::Ident { name, .. } => self.value_of(name),
            Expr::Literal { width, value, .. } => {
                let w = width.unwrap_or(32).min(64) as u8;
                Ok(Value::new(*value, w))
            }
            Expr::Unary { op, operand, .. } => Ok(eval_unary(*op, self.eval(operand)?)),
            Expr::Binary { op, lhs, rhs, .. } => {
                Ok(eval_binary(*op, self.eval(lhs)?, self.eval(rhs)?))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let c = self.eval(cond)?;
                let t = self.eval(then_expr)?;
                let f = self.eval(else_expr)?;
                let w = t.width().max(f.width());
                Ok(if c.is_truthy() {
                    t.resize(w)
                } else {
                    f.resize(w)
                })
            }
            Expr::Index { base, index, .. } => {
                let v = self.value_of(base)?;
                let i = self.eval(index)?.bits();
                Ok(Value::bit(
                    i < u64::from(v.width()) && (v.bits() >> i) & 1 == 1,
                ))
            }
            Expr::Part { base, msb, lsb, .. } => {
                let v = self.value_of(base)?;
                let width = (msb - lsb + 1) as u8;
                Ok(Value::new(v.bits() >> lsb, width))
            }
            Expr::Concat { parts, span } => {
                let mut bits = 0u64;
                let mut width = 0u32;
                for p in parts {
                    let v = self.eval(p)?;
                    width += u32::from(v.width());
                    if width > 64 {
                        return Err(SimError::Unsupported {
                            detail: format!("concatenation wider than 64 bits at {span}"),
                        });
                    }
                    bits = (bits << v.width()) | v.bits();
                }
                Ok(Value::new(bits, width.max(1) as u8))
            }
            Expr::Repeat {
                count, inner, span, ..
            } => {
                let v = self.eval(inner)?;
                let width = u32::from(v.width()) * count;
                if width > 64 || width == 0 {
                    return Err(SimError::Unsupported {
                        detail: format!("replication width {width} at {span}"),
                    });
                }
                let mut bits = 0u64;
                for _ in 0..*count {
                    bits = (bits << v.width()) | v.bits();
                }
                Ok(Value::new(bits, width as u8))
            }
        }
    }

    /// Resolves an l-value with a pre-resolved base signal into a [`Write`]
    /// carrying `value`.
    fn resolve_write(
        &self,
        target: SignalId,
        lhs: &LValue,
        value: Value,
    ) -> Result<Write, SimError> {
        let full = self.netlist.signal(target).width;
        Ok(match &lhs.select {
            None => Write {
                target,
                lo: 0,
                width: full,
                bits: value.resize(full).bits(),
            },
            Some(Select::Bit(idx)) => {
                let i = self.eval(idx)?.bits().min(63) as u8;
                Write {
                    target,
                    lo: i.min(full - 1),
                    width: 1,
                    bits: u64::from(value.lsb()),
                }
            }
            Some(Select::Part { msb, lsb }) => {
                let width = (msb - lsb + 1) as u8;
                Write {
                    target,
                    lo: *lsb as u8,
                    width,
                    bits: value.resize(width).bits(),
                }
            }
        })
    }

    /// Executes one assignment: evaluates the RHS, optionally records the
    /// execution, and either applies the write immediately or defers it.
    ///
    /// The recorder path reads the netlist's precomputed [`AssignInfo`] when
    /// available, so per-execution work is a value copy per operand — no
    /// expression-tree walks, name hashing, or string allocation.
    pub(crate) fn exec_assign(
        &mut self,
        a: &Assignment,
        defer: Option<&mut Vec<Write>>,
        recorder: Option<&mut Vec<StmtExec>>,
    ) -> Result<(), SimError> {
        let value = self.eval(&a.rhs)?;
        let info = self.netlist.assign_info(a.id);
        let target = match info.and_then(|i| i.target) {
            Some(t) => t,
            None => self
                .netlist
                .signal_id(&a.lhs.base)
                .ok_or_else(|| SimError::UnknownSignal {
                    name: a.lhs.base.clone(),
                })?,
        };
        let write = self.resolve_write(target, &a.lhs, value)?;
        if let Some(rec) = recorder {
            let operands = match info {
                Some(i) => {
                    Operands::capture(i.read_ids.len(), |k| self.values[i.read_ids[k].0 as usize])
                }
                // Statement not elaborated with this netlist (foreign id):
                // fall back to walking the expression tree, in the same
                // record read order `AssignInfo` would use.
                None => {
                    let mut seen: Vec<&str> = Vec::new();
                    let mut vals: Vec<Value> = Vec::new();
                    for name in a.rhs.referenced_signals() {
                        if !seen.contains(&name) {
                            seen.push(name);
                            vals.push(self.value_of(name)?);
                        }
                    }
                    if let Some(Select::Bit(idx)) = &a.lhs.select {
                        for name in idx.referenced_signals() {
                            if !seen.contains(&name) {
                                seen.push(name);
                                vals.push(self.value_of(name)?);
                            }
                        }
                    }
                    Operands::from_values(&vals)
                }
            };
            rec.push(StmtExec {
                stmt: a.id,
                operands,
                result: Value::new(write.bits, write.width),
            });
        }
        match (defer, a.kind == verilog::AssignKind::NonBlocking) {
            (Some(d), true) => d.push(write),
            _ => {
                let cur = self.values[write.target.0 as usize];
                self.values[write.target.0 as usize] = write.apply(cur);
            }
        }
        Ok(())
    }

    /// Executes a statement list. Non-blocking writes are deferred into
    /// `defer` when it is provided (sequential context); blocking writes are
    /// always immediate. When `recorder` is provided, every executed
    /// assignment appends a [`StmtExec`].
    pub fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        mut defer: Option<&mut Vec<Write>>,
        mut recorder: Option<&mut Vec<StmtExec>>,
    ) -> Result<(), SimError> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    self.exec_assign(a, defer.as_deref_mut(), recorder.as_deref_mut())?;
                }
                Stmt::If(IfStmt {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                }) => {
                    let taken = if self.eval(cond)?.is_truthy() {
                        then_branch
                    } else {
                        else_branch
                    };
                    self.exec_stmts(taken, defer.as_deref_mut(), recorder.as_deref_mut())?;
                }
                Stmt::Case(CaseStmt {
                    subject,
                    arms,
                    default,
                    ..
                }) => {
                    let subj = self.eval(subject)?;
                    let mut matched = false;
                    for arm in arms {
                        for label in &arm.labels {
                            if self.eval(label)?.bits() == subj.bits() {
                                matched = true;
                                break;
                            }
                        }
                        if matched {
                            self.exec_stmts(
                                &arm.body,
                                defer.as_deref_mut(),
                                recorder.as_deref_mut(),
                            )?;
                            break;
                        }
                    }
                    if !matched {
                        self.exec_stmts(default, defer.as_deref_mut(), recorder.as_deref_mut())?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::value::LANES;

    fn ctx_for(src: &str) -> (Netlist, Vec<(String, u64)>) {
        let nl = Netlist::elaborate(verilog::parse(src).unwrap().top()).unwrap();
        (nl, vec![])
    }

    fn eval_with(src: &str, sets: &[(&str, u64)], expr_of: &str) -> Value {
        let (nl, _) = ctx_for(src);
        let mut ctx = EvalCtx::new(&nl);
        for (name, v) in sets {
            let id = nl.signal_id(name).unwrap();
            let w = nl.signal(id).width;
            ctx.values[id.0 as usize] = Value::new(*v, w);
        }
        // Find the assignment whose LHS is expr_of and evaluate its RHS.
        let module = nl.module.clone();
        let assigns = module.assignments();
        let a = assigns
            .iter()
            .find(|a| a.lhs.base == expr_of)
            .expect("target assignment");
        ctx.eval(&a.rhs).unwrap()
    }

    #[test]
    fn bitwise_ops() {
        let src = "module m(input [3:0] a, input [3:0] b, output [3:0] y);\nassign y = a & ~b;\nendmodule";
        assert_eq!(
            eval_with(src, &[("a", 0b1100), ("b", 0b1010)], "y").bits(),
            0b0100
        );
    }

    #[test]
    fn reductions() {
        let src = "module m(input [3:0] a, output y0, output y1, output y2);\n\
                   assign y0 = &a;\nassign y1 = |a;\nassign y2 = ^a;\nendmodule";
        assert_eq!(eval_with(src, &[("a", 0xF)], "y0").bits(), 1);
        assert_eq!(eval_with(src, &[("a", 0xE)], "y0").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 0x0)], "y1").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 0b0111)], "y2").bits(), 1);
    }

    #[test]
    fn comparison_and_arith() {
        let src = "module m(input [3:0] a, input [3:0] b, output y, output [3:0] s);\n\
                   assign y = a < b;\nassign s = a + b;\nendmodule";
        assert_eq!(eval_with(src, &[("a", 3), ("b", 7)], "y").bits(), 1);
        // 4-bit wrap: 12 + 7 = 19 -> 3.
        assert_eq!(eval_with(src, &[("a", 12), ("b", 7)], "s").bits(), 3);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let src = "module m(input [3:0] a, input [3:0] b, output [3:0] q, output [3:0] r);\n\
                   assign q = a / b;\nassign r = a % b;\nendmodule";
        assert_eq!(eval_with(src, &[("a", 9), ("b", 0)], "q").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 9), ("b", 0)], "r").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 9), ("b", 2)], "q").bits(), 4);
    }

    #[test]
    fn ternary_selects_branch() {
        let src = "module m(input c, input [1:0] a, input [1:0] b, output [1:0] y);\n\
                   assign y = c ? a : b;\nendmodule";
        assert_eq!(
            eval_with(src, &[("c", 1), ("a", 2), ("b", 1)], "y").bits(),
            2
        );
        assert_eq!(
            eval_with(src, &[("c", 0), ("a", 2), ("b", 1)], "y").bits(),
            1
        );
    }

    #[test]
    fn concat_and_repeat() {
        let src = "module m(input a, input [1:0] b, output [4:0] y);\n\
                   assign y = {a, {2{b}}};\nendmodule";
        // a=1, b=0b10 -> {1, 10, 10} = 0b11010 = 26.
        assert_eq!(eval_with(src, &[("a", 1), ("b", 2)], "y").bits(), 0b11010);
    }

    #[test]
    fn bit_select_out_of_range_is_zero() {
        let src = "module m(input [3:0] a, input [2:0] i, output y);\nassign y = a[i];\nendmodule";
        assert_eq!(eval_with(src, &[("a", 0xF), ("i", 6)], "y").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 0b1000), ("i", 3)], "y").bits(), 1);
    }

    #[test]
    fn shifts_keep_lhs_width() {
        let src = "module m(input [3:0] a, input [2:0] n, output [3:0] y, output [3:0] z);\n\
                   assign y = a << n;\nassign z = a >> n;\nendmodule";
        assert_eq!(
            eval_with(src, &[("a", 0b0011), ("n", 2)], "y").bits(),
            0b1100
        );
        assert_eq!(
            eval_with(src, &[("a", 0b1100), ("n", 2)], "z").bits(),
            0b0011
        );
    }

    #[test]
    fn partial_write_applies_rmw() {
        let w = Write {
            target: SignalId(0),
            lo: 2,
            width: 2,
            bits: 0b11,
        };
        let cur = Value::new(0b0001, 4);
        assert_eq!(w.apply(cur).bits(), 0b1101);
    }

    #[test]
    fn partial_write_at_top_of_64_bits() {
        // The mask for a part select touching bit 63 must not overflow.
        let w = Write {
            target: SignalId(0),
            lo: 60,
            width: 4,
            bits: 0b1010,
        };
        let cur = Value::new(u64::MAX, 64);
        let out = w.apply(cur);
        assert_eq!(out.bits() >> 60, 0b1010);
        assert_eq!(out.bits() & ((1u64 << 60) - 1), (1u64 << 60) - 1);
    }

    #[test]
    fn full_width_partial_write_replaces_everything() {
        let w = Write {
            target: SignalId(0),
            lo: 0,
            width: 64,
            bits: 0x0123_4567_89AB_CDEF,
        };
        let cur = Value::new(u64::MAX, 64);
        assert_eq!(w.apply(cur).bits(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn partial_write_excess_bits_are_masked() {
        // `bits` wider than `width` must not leak into neighbouring bits.
        let w = Write {
            target: SignalId(0),
            lo: 1,
            width: 2,
            bits: 0xFF,
        };
        let cur = Value::new(0b0000, 4);
        assert_eq!(w.apply(cur).bits(), 0b0110);
    }

    #[test]
    fn shift_by_width_or_more_is_zero() {
        // Verilog semantics for a logical shift by ≥ width: all bits fall out.
        let src = "module m(input [3:0] a, input [2:0] n, output [3:0] y, output [3:0] z);\n\
                   assign y = a << n;\nassign z = a >> n;\nendmodule";
        assert_eq!(eval_with(src, &[("a", 0b1111), ("n", 4)], "y").bits(), 0);
        assert_eq!(eval_with(src, &[("a", 0b1111), ("n", 7)], "z").bits(), 0);
        // And the free-function path used by the compiled engine agrees,
        // including a shift amount of exactly 64 on a 64-bit value.
        let a = Value::new(u64::MAX, 64);
        let sh = Value::new(64, 7);
        assert_eq!(eval_binary(BinaryOp::Shl, a, sh).bits(), 0);
        assert_eq!(eval_binary(BinaryOp::Shr, a, sh).bits(), 0);
    }

    #[test]
    fn concat_of_mixed_widths_places_every_part() {
        let src = "module m(input a, input [2:0] b, input [3:0] c, output [7:0] y);\n\
                   assign y = {a, b, c};\nendmodule";
        let v = eval_with(src, &[("a", 1), ("b", 0b010), ("c", 0b1001)], "y");
        assert_eq!(v.width(), 8);
        assert_eq!(v.bits(), 0b1010_1001);
    }

    #[test]
    fn wide_arithmetic_wraps_at_64_bits() {
        let max = Value::new(u64::MAX, 64);
        let one = Value::new(1, 64);
        assert_eq!(eval_binary(BinaryOp::Add, max, one).bits(), 0);
        assert_eq!(
            eval_binary(BinaryOp::Sub, Value::new(0, 64), one).bits(),
            u64::MAX
        );
        assert_eq!(
            eval_binary(BinaryOp::Mul, max, Value::new(2, 64)).bits(),
            u64::MAX - 1
        );
    }

    #[test]
    fn binary_ops_extend_narrow_operand_to_wider_width() {
        // 4-bit + 8-bit happens at 8 bits: 15 + 250 = 265 -> wraps to 9.
        let a = Value::new(0xF, 4);
        let b = Value::new(250, 8);
        let sum = eval_binary(BinaryOp::Add, a, b);
        assert_eq!(sum.width(), 8);
        assert_eq!(sum.bits(), 9);
    }

    /// A deterministic per-lane bit pattern covering zero, all-ones, and
    /// mixed words (xorshift over the lane index).
    fn lane_pattern(width: u8, salt: u64) -> BatchValue {
        let mut words = [0u64; LANES];
        let mut s = salt | 1;
        for (l, w) in words.iter_mut().enumerate() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *w = match l % 4 {
                0 => 0,
                1 => u64::MAX,
                2 => s,
                _ => l as u64,
            };
        }
        BatchValue::from_words(words, width)
    }

    #[test]
    fn unary_batch_matches_scalar_on_every_lane() {
        use UnaryOp::*;
        for op in [Not, LogicalNot, Negate, RedAnd, RedOr, RedXor, RedXnor] {
            for width in [1u8, 3, 7, 32, 63, 64] {
                let v = lane_pattern(width, u64::from(width) * 31 + 7);
                let mut batch = BatchValue::zeros(1);
                eval_unary_batch(op, &v, LANES, &mut batch);
                for l in 0..LANES {
                    let scalar = eval_unary(op, v.lane(l));
                    assert_eq!(
                        batch.lane(l),
                        scalar,
                        "op {op:?} width {width} lane {l} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn binary_batch_matches_scalar_on_every_lane() {
        use BinaryOp::*;
        let ops = [
            And, Or, Xor, Xnor, LogAnd, LogOr, Eq, Neq, CaseEq, CaseNeq, Lt, Le, Gt, Ge, Add, Sub,
            Mul, Div, Mod, Shl, Shr,
        ];
        for op in ops {
            for (wa, wb) in [(1u8, 1u8), (4, 8), (8, 4), (63, 64), (64, 64), (64, 7)] {
                let a = lane_pattern(wa, 0x9E37_79B9);
                let b = lane_pattern(wb, 0x85EB_CA6B);
                let mut batch = BatchValue::zeros(1);
                eval_binary_batch(op, &a, &b, LANES, &mut batch);
                for l in 0..LANES {
                    let scalar = eval_binary(op, a.lane(l), b.lane(l));
                    assert_eq!(
                        batch.lane(l),
                        scalar,
                        "op {op:?} widths ({wa},{wb}) lane {l} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn shift_batch_per_lane_amounts_cover_width_and_beyond() {
        // Shift amounts 0..=LANES-1 per lane: amounts >= the operand width
        // (and >= 64) must flush to zero, exactly like the scalar engine.
        let mut amounts = [0u64; LANES];
        for (l, a) in amounts.iter_mut().enumerate() {
            *a = l as u64;
        }
        amounts[62] = 64;
        amounts[63] = 100;
        let sh = BatchValue::from_words(amounts, 7);
        let a = BatchValue::splat(Value::new(u64::MAX, 64));
        for op in [BinaryOp::Shl, BinaryOp::Shr] {
            let mut batch = BatchValue::zeros(1);
            eval_binary_batch(op, &a, &sh, LANES, &mut batch);
            for l in 0..LANES {
                assert_eq!(batch.lane(l), eval_binary(op, a.lane(l), sh.lane(l)));
            }
        }
    }
}
