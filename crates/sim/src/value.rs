//! Two-state bit-vector values (1–64 bits), scalar and batched.

use std::fmt;

/// Number of stimulus lanes a [`BatchValue`] carries.
///
/// 64 lanes means per-lane activity masks fit in one `u64`, so branch
/// divergence bookkeeping in the batch engine is plain word arithmetic.
pub const LANES: usize = 64;

/// A two-state logic value: `width` bits stored in the low bits of `bits`.
///
/// All constructors and operations keep the invariant that bits above
/// `width` are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Value {
    bits: u64,
    width: u8,
}

impl Value {
    /// Creates a value, truncating `bits` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(bits: u64, width: u8) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        Value {
            bits: bits & Self::mask(width),
            width,
        }
    }

    /// A single-bit value.
    pub fn bit(b: bool) -> Self {
        Value {
            bits: u64::from(b),
            width: 1,
        }
    }

    /// The all-zero value of a given width.
    pub fn zero(width: u8) -> Self {
        Value::new(0, width)
    }

    /// The raw bits (above-width bits are always zero).
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The width in bits.
    pub fn width(self) -> u8 {
        self.width
    }

    /// True when any bit is set.
    pub fn is_truthy(self) -> bool {
        self.bits != 0
    }

    /// The least-significant bit.
    pub fn lsb(self) -> bool {
        self.bits & 1 != 0
    }

    /// Reinterprets the value at a new width (truncating or zero-extending).
    pub fn resize(self, width: u8) -> Self {
        Value::new(self.bits, width)
    }

    /// The low-bit mask for a width.
    pub fn mask(width: u8) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width as usize)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.bits)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bit(b)
    }
}

/// [`LANES`] independent [`Value`]s of one shared width, stored lane-major:
/// `words[l]` holds lane `l`'s bits.
///
/// Lane-major layout (one machine word per lane, rather than one word per
/// bit position across lanes) keeps arithmetic, shifts by per-lane amounts,
/// division, and comparisons as ordinary `u64` operations inside a
/// vectorizable loop; see DESIGN.md "Batch simulation" for the trade-off
/// against the transposed layout.
///
/// The scalar invariant carries over per lane: bits above `width` are zero
/// in every word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchValue {
    words: [u64; LANES],
    width: u8,
}

impl BatchValue {
    /// The all-zero batch of a given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn zeros(width: u8) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        BatchValue {
            words: [0; LANES],
            width,
        }
    }

    /// Every lane set to the same scalar value.
    pub fn splat(v: Value) -> Self {
        BatchValue {
            words: [v.bits(); LANES],
            width: v.width(),
        }
    }

    /// Builds a batch from raw per-lane words, truncating each to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn from_words(mut words: [u64; LANES], width: u8) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        let m = Value::mask(width);
        for w in &mut words {
            *w &= m;
        }
        BatchValue { words, width }
    }

    /// The shared width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Mutable access to the per-lane words, for in-place kernels. The
    /// caller is responsible for keeping live lanes masked to the width it
    /// subsequently sets with [`BatchValue::set_width`]; lanes beyond the
    /// batch fill may hold garbage (the engine never reads them).
    pub(crate) fn words_mut(&mut self) -> &mut [u64; LANES] {
        &mut self.words
    }

    /// Overwrites the width after an in-place kernel rewrote the words.
    pub(crate) fn set_width(&mut self, width: u8) {
        debug_assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        self.width = width;
    }

    /// Copies the first `n` lanes (and the width) from `src` — a
    /// fill-bounded [`Clone`] for slab slots.
    pub(crate) fn copy_lanes(&mut self, src: &BatchValue, n: usize) {
        self.words[..n].copy_from_slice(&src.words[..n]);
        self.width = src.width;
    }

    /// Sets the first `n` lanes to the same scalar value — a fill-bounded
    /// [`BatchValue::splat`].
    pub(crate) fn splat_lanes(&mut self, v: Value, n: usize) {
        self.words[..n].fill(v.bits());
        self.width = v.width();
    }

    /// The raw per-lane words (above-width bits are always zero).
    pub fn words(&self) -> &[u64; LANES] {
        &self.words
    }

    /// Extracts one lane as a scalar [`Value`].
    pub fn lane(&self, l: usize) -> Value {
        Value::new(self.words[l], self.width)
    }

    /// Overwrites one lane, truncating the value to the batch width.
    pub fn set_lane(&mut self, l: usize, v: Value) {
        self.words[l] = v.bits() & Value::mask(self.width);
    }

    /// Per-lane truthiness as a mask: bit `l` is set when lane `l` is
    /// non-zero.
    pub fn truthy_mask(&self) -> u64 {
        let mut m = 0u64;
        for (l, &w) in self.words.iter().enumerate() {
            m |= u64::from(w != 0) << l;
        }
        m
    }

    /// Per-lane raw-bit equality as a mask: bit `l` is set when the lanes'
    /// bits match (widths are ignored, mirroring the scalar case-label
    /// comparison on `Value::bits`).
    pub fn eq_mask(&self, other: &BatchValue) -> u64 {
        let mut m = 0u64;
        for l in 0..LANES {
            m |= u64::from(self.words[l] == other.words[l]) << l;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_to_width() {
        assert_eq!(Value::new(0xFF, 4).bits(), 0xF);
        assert_eq!(Value::new(u64::MAX, 64).bits(), u64::MAX);
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let v = Value::new(0b1010, 4);
        assert_eq!(v.resize(8).bits(), 0b1010);
        assert_eq!(v.resize(2).bits(), 0b10);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Value::new(0, 0);
    }

    #[test]
    fn formatting() {
        let v = Value::new(0b101, 3);
        assert_eq!(v.to_string(), "3'd5");
        assert_eq!(format!("{v:b}"), "101");
        assert_eq!(format!("{v:x}"), "5");
    }

    #[test]
    fn resize_to_64_keeps_all_bits() {
        // The 64-bit mask path must not shift by 64 (UB in release, panic in
        // debug) — a full-width value survives a resize round trip intact.
        let v = Value::new(u64::MAX, 32);
        assert_eq!(v.resize(64).bits(), 0xFFFF_FFFF);
        assert_eq!(Value::new(u64::MAX, 64).resize(64).bits(), u64::MAX);
    }

    #[test]
    fn truthiness() {
        assert!(Value::new(2, 4).is_truthy());
        assert!(!Value::zero(4).is_truthy());
        assert!(!Value::new(2, 4).lsb());
        assert!(Value::new(3, 4).lsb());
    }

    #[test]
    fn batch_splat_and_lane_round_trip() {
        let b = BatchValue::splat(Value::new(0b1011, 4));
        assert_eq!(b.width(), 4);
        for l in [0, 1, 31, 63] {
            assert_eq!(b.lane(l), Value::new(0b1011, 4));
        }
    }

    #[test]
    fn batch_from_words_truncates_every_lane() {
        let mut words = [0u64; LANES];
        words[0] = 0xFF;
        words[63] = u64::MAX;
        let b = BatchValue::from_words(words, 4);
        assert_eq!(b.lane(0).bits(), 0xF);
        assert_eq!(b.lane(63).bits(), 0xF);
        assert_eq!(b.lane(1).bits(), 0);
    }

    #[test]
    fn batch_width_64_keeps_all_bits() {
        // The width-64 mask path must not shift by 64 in any lane.
        let mut words = [0u64; LANES];
        words[5] = u64::MAX;
        let b = BatchValue::from_words(words, 64);
        assert_eq!(b.lane(5).bits(), u64::MAX);
        let mut b = BatchValue::zeros(64);
        b.set_lane(7, Value::new(u64::MAX, 64));
        assert_eq!(b.lane(7).bits(), u64::MAX);
        assert_eq!(b.lane(8).bits(), 0);
    }

    #[test]
    fn batch_set_lane_truncates_to_batch_width() {
        let mut b = BatchValue::zeros(3);
        b.set_lane(2, Value::new(0xFF, 8));
        assert_eq!(b.lane(2).bits(), 0b111);
    }

    #[test]
    fn batch_truthy_mask_is_per_lane() {
        let mut b = BatchValue::zeros(4);
        b.set_lane(0, Value::new(1, 4));
        b.set_lane(3, Value::new(0b1000, 4));
        b.set_lane(63, Value::new(0xF, 4));
        assert_eq!(b.truthy_mask(), 1 | (1 << 3) | (1 << 63));
    }

    #[test]
    fn batch_eq_mask_compares_raw_bits() {
        let a = BatchValue::splat(Value::new(0b10, 2));
        let mut b = BatchValue::splat(Value::new(0b10, 2));
        b.set_lane(9, Value::new(0b01, 2));
        assert_eq!(a.eq_mask(&b), !(1u64 << 9));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn batch_zero_width_panics() {
        let _ = BatchValue::zeros(0);
    }
}
