//! Two-state bit-vector values (1–64 bits).

use std::fmt;

/// A two-state logic value: `width` bits stored in the low bits of `bits`.
///
/// All constructors and operations keep the invariant that bits above
/// `width` are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Value {
    bits: u64,
    width: u8,
}

impl Value {
    /// Creates a value, truncating `bits` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(bits: u64, width: u8) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        Value {
            bits: bits & Self::mask(width),
            width,
        }
    }

    /// A single-bit value.
    pub fn bit(b: bool) -> Self {
        Value {
            bits: u64::from(b),
            width: 1,
        }
    }

    /// The all-zero value of a given width.
    pub fn zero(width: u8) -> Self {
        Value::new(0, width)
    }

    /// The raw bits (above-width bits are always zero).
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The width in bits.
    pub fn width(self) -> u8 {
        self.width
    }

    /// True when any bit is set.
    pub fn is_truthy(self) -> bool {
        self.bits != 0
    }

    /// The least-significant bit.
    pub fn lsb(self) -> bool {
        self.bits & 1 != 0
    }

    /// Reinterprets the value at a new width (truncating or zero-extending).
    pub fn resize(self, width: u8) -> Self {
        Value::new(self.bits, width)
    }

    /// The low-bit mask for a width.
    pub fn mask(width: u8) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width as usize)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.bits)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_to_width() {
        assert_eq!(Value::new(0xFF, 4).bits(), 0xF);
        assert_eq!(Value::new(u64::MAX, 64).bits(), u64::MAX);
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let v = Value::new(0b1010, 4);
        assert_eq!(v.resize(8).bits(), 0b1010);
        assert_eq!(v.resize(2).bits(), 0b10);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Value::new(0, 0);
    }

    #[test]
    fn formatting() {
        let v = Value::new(0b101, 3);
        assert_eq!(v.to_string(), "3'd5");
        assert_eq!(format!("{v:b}"), "101");
        assert_eq!(format!("{v:x}"), "5");
    }

    #[test]
    fn resize_to_64_keeps_all_bits() {
        // The 64-bit mask path must not shift by 64 (UB in release, panic in
        // debug) — a full-width value survives a resize round trip intact.
        let v = Value::new(u64::MAX, 32);
        assert_eq!(v.resize(64).bits(), 0xFFFF_FFFF);
        assert_eq!(Value::new(u64::MAX, 64).resize(64).bits(), u64::MAX);
    }

    #[test]
    fn truthiness() {
        assert!(Value::new(2, 4).is_truthy());
        assert!(!Value::zero(4).is_truthy());
        assert!(!Value::new(2, 4).lsb());
        assert!(Value::new(3, 4).lsb());
    }
}
