// USB 2.0 function-core protocol layer (reduced re-implementation in the
// VeriBug subset).
//
// Decodes token PIDs, matches the function address, and drives the frame
// number register from SOF tokens — the slice of the OpenCores usbf_pl.v
// that feeds the paper's two targets: match_o and frame_no_we.
module usbf_pl(
  input clk,
  input rst_n,
  // Token interface from the packet decoder
  input token_valid,
  input crc5_err,
  input [3:0] pid,
  input [6:0] token_fadr,
  input [3:0] token_endp,
  input [10:0] frame_no,
  // Configuration
  input [6:0] fa,
  input ep0_valid,
  input ep1_valid,
  input ep2_valid,
  input ep3_valid,
  // Data-phase handshakes
  input rx_data_done,
  input tx_data_done,
  input rx_data_valid,
  // Outputs
  output match_o,
  output frame_no_we,
  output [10:0] frame_no_r,
  output pid_OUT,
  output pid_IN,
  output pid_SOF,
  output pid_SETUP,
  output token_valid_str,
  output send_token,
  output [1:0] token_pid_sel
);
  // ---- PID decoding ----
  wire pid_ACK;
  wire pid_NACK;
  wire fa_match;
  wire ep_match;
  wire match_int;
  reg [10:0] frame_no_q;
  reg token_valid_r;
  reg send_token_r;
  reg [1:0] token_pid_sel_r;
  reg [1:0] state;
  reg [1:0] next_state;
  reg send_token_d;
  reg [1:0] token_pid_sel_d;

  assign pid_OUT = (pid == 4'h1);
  assign pid_IN = (pid == 4'h9);
  assign pid_SOF = (pid == 4'h5);
  assign pid_SETUP = (pid == 4'hd);
  assign pid_ACK = (pid == 4'h2);
  assign pid_NACK = (pid == 4'ha);

  // ---- Address / endpoint match ----
  assign fa_match = (token_fadr == fa);
  assign ep_match = ((token_endp == 4'h0) & ep0_valid)
                  | ((token_endp == 4'h1) & ep1_valid)
                  | ((token_endp == 4'h2) & ep2_valid)
                  | ((token_endp == 4'h3) & ep3_valid);
  assign match_int = fa_match & token_valid & ~crc5_err;
  assign match_o = match_int & (pid_OUT | pid_IN | pid_SETUP);

  // ---- Frame number register (from SOF tokens) ----
  assign frame_no_we = token_valid & ~crc5_err & pid_SOF;
  assign frame_no_r = frame_no_q;

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) frame_no_q <= 11'h0;
    else if (frame_no_we) frame_no_q <= frame_no;
  end

  // ---- Token strobe pipeline ----
  assign token_valid_str = token_valid_r;

  always @(posedge clk) begin
    token_valid_r <= token_valid & ~crc5_err;
  end

  // ---- Response FSM: IDLE -> TOKEN -> DATA -> STATUS ----
  always @(*) begin
    next_state = state;
    send_token_d = 1'b0;
    token_pid_sel_d = 2'b00;
    case (state)
      2'b00: begin
        if (match_o & ep_match & pid_IN) begin
          next_state = 2'b01;
          send_token_d = 1'b1;
          token_pid_sel_d = 2'b01;
        end
        else if (match_o & ep_match & (pid_OUT | pid_SETUP)) begin
          next_state = 2'b10;
        end
      end
      2'b01: begin
        if (tx_data_done) begin
          next_state = 2'b11;
        end
      end
      2'b10: begin
        if (rx_data_done & rx_data_valid) begin
          next_state = 2'b11;
          send_token_d = 1'b1;
          token_pid_sel_d = 2'b10;
        end
        else if (rx_data_done) begin
          next_state = 2'b00;
          send_token_d = 1'b1;
          token_pid_sel_d = 2'b11;
        end
      end
      default: begin
        next_state = 2'b00;
        send_token_d = pid_ACK | pid_NACK;
      end
    endcase
  end

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) begin
      state <= 2'b00;
      send_token_r <= 1'b0;
      token_pid_sel_r <= 2'b00;
    end
    else begin
      state <= next_state;
      send_token_r <= send_token_d;
      token_pid_sel_r <= token_pid_sel_d;
    end
  end

  assign send_token = send_token_r;
  assign token_pid_sel = token_pid_sel_r;
endmodule
