// USB 2.0 function-core internal DMA controller (reduced re-implementation
// in the VeriBug subset).
//
// Generates memory requests from the endpoint buffers and advances the
// buffer address on completed word transfers — the slice of the OpenCores
// usbf_idma.v feeding the paper's targets: mreq and adr_incw.
module usbf_idma(
  input clk,
  input rst_n,
  // Control
  input rx_dma_en,
  input tx_dma_en,
  input abort,
  input idle,
  // Memory arbiter handshake
  input mack,
  // Data-path strobes
  input rd_data_valid,
  input wr_data_ready,
  input [7:0] size,
  // Outputs
  output mreq,
  output adr_incw,
  output word_done,
  output [7:0] adr_cw,
  output dma_done,
  output buf_ovfl
);
  reg mreq_d;
  reg mack_r;
  reg word_done_r;
  reg [7:0] adr_cw_q;
  reg [7:0] sizd_c;
  reg dma_en_r;
  reg dma_done_r;
  reg ovfl_q;
  wire dma_en;
  wire word_ready;
  wire sizd_is_zero;
  wire adr_at_limit;

  assign dma_en = rx_dma_en | tx_dma_en;
  assign word_ready = (rx_dma_en & wr_data_ready) | (tx_dma_en & rd_data_valid);

  // Memory request: a pending request that has not been acknowledged yet,
  // or a freshly completed word that needs the next beat.
  assign mreq = (mreq_d & ~mack_r) | word_done_r;
  assign word_done = word_done_r;

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) begin
      mreq_d <= 1'b0;
      mack_r <= 1'b0;
      word_done_r <= 1'b0;
      dma_en_r <= 1'b0;
    end
    else begin
      dma_en_r <= dma_en & ~abort;
      mreq_d <= dma_en_r & word_ready & ~idle;
      mack_r <= mack;
      word_done_r <= mack_r & word_ready & ~abort;
    end
  end

  // Buffer address counter: advances one word per acknowledged transfer.
  assign adr_incw = mack_r & ~idle & dma_en_r & ~abort;
  assign adr_cw = adr_cw_q;
  assign adr_at_limit = (adr_cw_q == 8'hff);

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) adr_cw_q <= 8'h0;
    else if (idle & ~dma_en) adr_cw_q <= 8'h0;
    else if (adr_incw & ~adr_at_limit) adr_cw_q <= adr_cw_q + 8'h1;
  end

  // Remaining-size down-counter and completion flag.
  assign sizd_is_zero = (sizd_c == 8'h0);

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) sizd_c <= 8'h0;
    else if (idle & ~dma_en) sizd_c <= size;
    else if (adr_incw & ~sizd_is_zero) sizd_c <= sizd_c - 8'h1;
  end

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) begin
      dma_done_r <= 1'b0;
      ovfl_q <= 1'b0;
    end
    else begin
      dma_done_r <= dma_en_r & sizd_is_zero & word_done_r;
      ovfl_q <= (ovfl_q | (adr_at_limit & adr_incw)) & ~idle;
    end
  end

  assign dma_done = dma_done_r;
  assign buf_ovfl = ovfl_q;
endmodule
