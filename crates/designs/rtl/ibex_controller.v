// Ibex RISC-V processor controller (reduced re-implementation in the
// VeriBug subset).
//
// The main decode-stage controller FSM of lowRISC Ibex: stall aggregation,
// halt/flush decisions, and instruction-valid clearing — the logic cone of
// the paper's targets: stall and instr_valid_clear_o.
module ibex_controller(
  input clk,
  input rst_n,
  // Stall sources from the decode/execute stages
  input stall_lsu_i,
  input stall_multdiv_i,
  input stall_jump_i,
  input stall_branch_i,
  // Fetch/decode interface
  input instr_valid_i,
  input instr_fetch_err_i,
  // Control/status events
  input branch_set_i,
  input jump_set_i,
  input ecall_insn_i,
  input ebrk_insn_i,
  input illegal_insn_i,
  input mret_insn_i,
  input wfi_insn_i,
  input csr_pipe_flush_i,
  // Interrupt and debug requests
  input irq_pending_i,
  input irq_enabled_i,
  input debug_req_i,
  // Outputs
  output stall,
  output id_in_ready_o,
  output instr_valid_clear_o,
  output ctrl_busy_o,
  output flush_id,
  output halt_if,
  output pc_set_o,
  output [1:0] pc_mux_o,
  output exc_req_d,
  output debug_mode_o
);
  // FSM states (subset of Ibex's): RESET=0, FIRST_FETCH=1, DECODE=2,
  // FLUSH=3, IRQ_TAKEN=4, DBG_TAKEN=5, SLEEP=6.
  reg [2:0] ctrl_fsm_cs;
  reg [2:0] ctrl_fsm_ns;
  reg halt_if_d;
  reg flush_id_d;
  reg pc_set_d;
  reg [1:0] pc_mux_d;
  reg debug_mode_q;
  reg debug_mode_d;
  reg ctrl_busy_d;
  reg ctrl_busy_q;
  wire special_req;
  wire exc_req;
  wire enter_debug;
  wire handle_irq;

  // ---- Stall aggregation (the paper's Fig. 4 statement) ----
  // As in lowRISC Ibex, the stall sources are inputs from the decode and
  // execute stages; the controller only aggregates them.
  assign stall = stall_lsu_i | stall_multdiv_i | stall_jump_i | stall_branch_i;

  // ---- Exceptional-instruction requests ----
  assign exc_req = (ecall_insn_i | ebrk_insn_i | illegal_insn_i | instr_fetch_err_i)
                 & instr_valid_i;
  assign exc_req_d = exc_req;
  assign special_req = exc_req | (mret_insn_i | wfi_insn_i | csr_pipe_flush_i) & instr_valid_i;
  assign enter_debug = debug_req_i & ~debug_mode_q;
  assign handle_irq = irq_pending_i & irq_enabled_i & ~debug_mode_q;

  // ---- FSM ----
  always @(*) begin
    ctrl_fsm_ns = ctrl_fsm_cs;
    halt_if_d = 1'b0;
    flush_id_d = 1'b0;
    pc_set_d = 1'b0;
    pc_mux_d = 2'b00;
    debug_mode_d = debug_mode_q;
    ctrl_busy_d = 1'b1;
    case (ctrl_fsm_cs)
      3'b000: begin
        // RESET: set boot address and fetch.
        pc_set_d = 1'b1;
        pc_mux_d = 2'b00;
        ctrl_fsm_ns = 3'b001;
      end
      3'b001: begin
        // FIRST_FETCH: wait for a valid instruction.
        if (instr_valid_i) ctrl_fsm_ns = 3'b010;
        if (enter_debug) begin
          ctrl_fsm_ns = 3'b101;
          halt_if_d = 1'b1;
        end
        else if (handle_irq) begin
          ctrl_fsm_ns = 3'b100;
          halt_if_d = 1'b1;
        end
      end
      3'b010: begin
        // DECODE: normal operation.
        if (branch_set_i | jump_set_i) begin
          pc_set_d = ~(stall_lsu_i | stall_multdiv_i);
          pc_mux_d = 2'b01;
        end
        if (special_req & ~stall) begin
          ctrl_fsm_ns = 3'b011;
          halt_if_d = 1'b1;
        end
        else if (enter_debug & ~stall) begin
          ctrl_fsm_ns = 3'b101;
          halt_if_d = 1'b1;
        end
        else if (handle_irq & ~stall & instr_valid_i) begin
          ctrl_fsm_ns = 3'b100;
          halt_if_d = 1'b1;
        end
        else if (wfi_insn_i & instr_valid_i & ~stall) begin
          ctrl_fsm_ns = 3'b110;
          halt_if_d = 1'b1;
        end
      end
      3'b011: begin
        // FLUSH: squash the pipeline, redirect to the handler.
        flush_id_d = 1'b1;
        pc_set_d = exc_req_d;
        pc_mux_d = 2'b10;
        ctrl_fsm_ns = 3'b010;
      end
      3'b100: begin
        // IRQ_TAKEN: redirect to the vector table.
        pc_set_d = 1'b1;
        pc_mux_d = 2'b10;
        flush_id_d = 1'b1;
        ctrl_fsm_ns = 3'b010;
      end
      3'b101: begin
        // DBG_TAKEN: enter debug mode.
        pc_set_d = 1'b1;
        pc_mux_d = 2'b11;
        flush_id_d = 1'b1;
        debug_mode_d = 1'b1;
        ctrl_fsm_ns = 3'b010;
      end
      3'b110: begin
        // SLEEP: wait for a wake-up event.
        ctrl_busy_d = 1'b0;
        halt_if_d = 1'b1;
        flush_id_d = 1'b1;
        if (irq_pending_i | debug_req_i) ctrl_fsm_ns = 3'b001;
      end
      default: begin
        ctrl_fsm_ns = 3'b000;
      end
    endcase
  end

  always @(posedge clk or negedge rst_n) begin
    if (~rst_n) begin
      ctrl_fsm_cs <= 3'b000;
      debug_mode_q <= 1'b0;
      ctrl_busy_q <= 1'b1;
    end
    else begin
      ctrl_fsm_cs <= ctrl_fsm_ns;
      debug_mode_q <= debug_mode_d;
      ctrl_busy_q <= ctrl_busy_d;
    end
  end

  // ---- Pipeline-control outputs (paper Fig. 4 statements) ----
  assign halt_if = halt_if_d;
  assign flush_id = flush_id_d;
  assign id_in_ready_o = ~stall & ~halt_if;
  assign instr_valid_clear_o = (~stall & ~halt_if) | flush_id;
  assign pc_set_o = pc_set_d;
  assign pc_mux_o = pc_mux_d;
  assign ctrl_busy_o = ctrl_busy_q;
  assign debug_mode_o = debug_mode_q;
endmodule
