// Wishbone 2-port multiplexer (re-implementation in the VeriBug subset).
//
// One Wishbone master is routed to one of two slaves by address decode.
// Functionally analogous to the OpenCores / alexforencich wb_mux_2 used in
// the paper's Table I; datapath reduced to 8-bit address / 4-bit data so it
// fits the two-state 64-bit simulator subset. Targets: wbs0_we_o, wbs0_stb_o.
module wb_mux_2(
  input clk,
  // Master interface
  input [7:0] wbm_adr_i,
  input [3:0] wbm_dat_i,
  input wbm_we_i,
  input wbm_sel_i,
  input wbm_stb_i,
  input wbm_cyc_i,
  output [3:0] wbm_dat_o,
  output wbm_ack_o,
  output wbm_err_o,
  output wbm_rty_o,
  // Slave 0 interface
  input [3:0] wbs0_dat_i,
  input wbs0_ack_i,
  input wbs0_err_i,
  input wbs0_rty_i,
  output [7:0] wbs0_adr_o,
  output [3:0] wbs0_dat_o,
  output wbs0_we_o,
  output wbs0_sel_o,
  output wbs0_stb_o,
  output wbs0_cyc_o,
  // Slave 1 interface
  input [3:0] wbs1_dat_i,
  input wbs1_ack_i,
  input wbs1_err_i,
  input wbs1_rty_i,
  output [7:0] wbs1_adr_o,
  output [3:0] wbs1_dat_o,
  output wbs1_we_o,
  output wbs1_sel_o,
  output wbs1_stb_o,
  output wbs1_cyc_o
);
  // Address decode: slave 0 owns the lower half of the address space.
  wire wbs0_match;
  wire wbs1_match;
  wire wbs0_sel;
  wire wbs1_sel;

  assign wbs0_match = ~wbm_adr_i[7];
  assign wbs1_match = wbm_adr_i[7];
  assign wbs0_sel = wbs0_match;
  assign wbs1_sel = wbs1_match & ~wbs0_match;

  // Slave 0 fan-out.
  assign wbs0_adr_o = wbm_adr_i;
  assign wbs0_dat_o = wbm_dat_i;
  assign wbs0_we_o = wbm_we_i & wbs0_sel;
  assign wbs0_sel_o = wbm_sel_i;
  assign wbs0_stb_o = wbm_stb_i & wbs0_sel & wbm_cyc_i;
  assign wbs0_cyc_o = wbm_cyc_i & wbs0_sel;

  // Slave 1 fan-out.
  assign wbs1_adr_o = wbm_adr_i;
  assign wbs1_dat_o = wbm_dat_i;
  assign wbs1_we_o = wbm_we_i & wbs1_sel;
  assign wbs1_sel_o = wbm_sel_i;
  assign wbs1_stb_o = wbm_stb_i & wbs1_sel & wbm_cyc_i;
  assign wbs1_cyc_o = wbm_cyc_i & wbs1_sel;

  // Master return path.
  assign wbm_dat_o = wbs0_sel ? wbs0_dat_i : wbs1_dat_i;
  assign wbm_ack_o = (wbs0_ack_i & wbs0_sel) | (wbs1_ack_i & wbs1_sel);
  assign wbm_err_o = (wbs0_err_i & wbs0_sel) | (wbs1_err_i & wbs1_sel);
  assign wbm_rty_o = (wbs0_rty_i & wbs0_sel) | (wbs1_rty_i & wbs1_sel);
endmodule
