//! # veribug-designs
//!
//! The localization test set of the VeriBug reproduction (paper Table I):
//! reduced re-implementations of four real open-source designs, each with
//! the paper's target outputs (see DESIGN.md, substitution #3):
//!
//! | Module | Targets | Paper origin |
//! |--------|---------|--------------|
//! | `wb_mux_2` | `wbs0_we_o`, `wbs0_stb_o` | Wishbone 2-port multiplexer |
//! | `usbf_pl` | `match_o`, `frame_no_we` | USB 2.0 protocol layer |
//! | `usbf_idma` | `mreq`, `adr_incw` | USB 2.0 internal DMA controller |
//! | `ibex_controller` | `stall`, `instr_valid_clear_o` | Ibex RISC-V controller |
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug_designs::catalog;
//!
//! let designs = catalog();
//! assert_eq!(designs.len(), 4);
//! let wb = designs.iter().find(|d| d.name == "wb_mux_2").expect("known design");
//! let module = wb.module()?;
//! assert!(module.output_names().contains(&"wbs0_we_o"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use verilog::{Module, ParseError};

/// One benchmark design: source, targets, and metadata.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Design {
    /// Module name (Table I, column 1).
    pub name: &'static str,
    /// Verilog source (embedded).
    pub source: &'static str,
    /// The target outputs the paper localizes against.
    pub targets: &'static [&'static str],
    /// Short description (Table I, column 3).
    pub description: &'static str,
    /// Lines of code of the original design the paper used.
    pub paper_loc: u32,
}

impl Design {
    /// Parses the embedded source into a module.
    ///
    /// # Errors
    ///
    /// Returns the parse error; the test suite guarantees the embedded
    /// sources parse, so this only fails if the sources are edited badly.
    pub fn module(&self) -> Result<Module, ParseError> {
        Ok(verilog::parse(self.source)?.top().clone())
    }

    /// Lines of code of this re-implementation (non-blank, non-comment).
    pub fn loc(&self) -> usize {
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }
}

/// The Wishbone 2-port multiplexer.
pub const WB_MUX_2: Design = Design {
    name: "wb_mux_2",
    source: include_str!("../rtl/wb_mux_2.v"),
    targets: &["wbs0_we_o", "wbs0_stb_o"],
    description: "Wishbone 2-port Multiplexer",
    paper_loc: 65,
};

/// The USB 2.0 protocol layer.
pub const USBF_PL: Design = Design {
    name: "usbf_pl",
    source: include_str!("../rtl/usbf_pl.v"),
    targets: &["match_o", "frame_no_we"],
    description: "USB2.0 Protocol Layer",
    paper_loc: 287,
};

/// The USB 2.0 internal DMA controller.
pub const USBF_IDMA: Design = Design {
    name: "usbf_idma",
    source: include_str!("../rtl/usbf_idma.v"),
    targets: &["mreq", "adr_incw"],
    description: "USB2.0 Internal DMA Controller",
    paper_loc: 627,
};

/// The Ibex RISC-V processor controller.
pub const IBEX_CONTROLLER: Design = Design {
    name: "ibex_controller",
    source: include_str!("../rtl/ibex_controller.v"),
    targets: &["stall", "instr_valid_clear_o"],
    description: "Ibex RISC-V Processor Controller",
    paper_loc: 459,
};

/// All four Table I designs, in the paper's row order.
pub fn catalog() -> Vec<Design> {
    vec![WB_MUX_2, USBF_PL, USBF_IDMA, IBEX_CONTROLLER]
}

/// Looks up a design by name.
pub fn by_name(name: &str) -> Option<Design> {
    catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{dependencies_of, Slice, Vdg};
    use sim::{Simulator, TestbenchGen};

    #[test]
    fn all_designs_parse() {
        for d in catalog() {
            let m = d
                .module()
                .unwrap_or_else(|e| panic!("{} fails: {e}", d.name));
            assert_eq!(m.name, d.name);
        }
    }

    #[test]
    fn all_targets_are_outputs() {
        for d in catalog() {
            let m = d.module().unwrap();
            for t in d.targets {
                assert!(
                    m.output_names().contains(t),
                    "{}: target {t} is not an output",
                    d.name
                );
            }
        }
    }

    #[test]
    fn all_designs_simulate() {
        for d in catalog() {
            let m = d.module().unwrap();
            let mut sim =
                Simulator::new(&m).unwrap_or_else(|e| panic!("{}: elaboration: {e}", d.name));
            let stim = TestbenchGen::new(1).generate(sim.netlist(), 64);
            let trace = sim
                .run(&stim)
                .unwrap_or_else(|e| panic!("{}: simulation: {e}", d.name));
            assert_eq!(trace.len(), 64);
            assert!(!trace.executed_stmts().is_empty(), "{}", d.name);
        }
    }

    #[test]
    fn targets_have_nontrivial_cones() {
        for d in catalog() {
            let m = d.module().unwrap();
            let vdg = Vdg::build(&m);
            for t in d.targets {
                let dep = dependencies_of(&vdg, t);
                assert!(
                    dep.len() >= 2,
                    "{}: target {t} has a trivial cone ({dep:?})",
                    d.name
                );
                let slice = Slice::of_target(&m, t);
                assert!(!slice.is_empty(), "{}: target {t} slice empty", d.name);
            }
        }
    }

    #[test]
    fn targets_respond_to_stimulus() {
        // Each target must actually toggle under random stimulus; a stuck
        // target would make every injected bug unobservable.
        for d in catalog() {
            let m = d.module().unwrap();
            let mut sim = Simulator::new(&m).unwrap();
            let stim = TestbenchGen::new(99).generate(sim.netlist(), 256);
            let trace = sim.run(&stim).unwrap();
            for t in d.targets {
                let values = trace.values_of(sim.netlist(), t).unwrap();
                let first = values[8]; // skip the reset window
                assert!(
                    values[8..].iter().any(|v| *v != first),
                    "{}: target {t} never toggles",
                    d.name
                );
            }
        }
    }

    #[test]
    fn loc_is_reported() {
        for d in catalog() {
            assert!(d.loc() > 20, "{} suspiciously small", d.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("usbf_pl").is_some());
        assert!(by_name("nope").is_none());
    }
}
