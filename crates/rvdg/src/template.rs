//! Typed expression templates over a signal pool.
//!
//! The plain Boolean generator in [`crate::expr`] covers `&`/`|`/`^`/`~`;
//! real designs also lean on comparisons, ternaries, bit-selects, and
//! arithmetic on narrow vectors. To transfer (paper Sec. VI-A), the trained
//! token embeddings must have seen every AST node kind, so the template
//! generator mixes those constructs into the synthetic corpus with
//! controllable weights.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::expr::{random_expr, ExprConfig};

/// The signals available to the expression generator, with widths.
#[derive(Debug, Clone, Default)]
pub struct SignalPool {
    /// One-bit signals usable as Boolean operands.
    pub bits: Vec<String>,
    /// Multi-bit signals with their widths.
    pub wide: Vec<(String, u32)>,
}

impl SignalPool {
    /// True when no one-bit signals are available.
    pub fn no_bits(&self) -> bool {
        self.bits.is_empty()
    }

    fn random_bit(&self, rng: &mut StdRng) -> &str {
        &self.bits[rng.random_range(0..self.bits.len())]
    }

    fn random_wide(&self, rng: &mut StdRng) -> &(String, u32) {
        &self.wide[rng.random_range(0..self.wide.len())]
    }
}

/// Mixing weights for the one-bit-valued expression templates. Weights need
/// not sum to one; they are normalized internally.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TemplateMix {
    /// Plain Boolean combination of one-bit operands.
    pub boolean: f64,
    /// Equality/inequality of wide operands (vs each other or a literal),
    /// possibly conjoined with a one-bit operand.
    pub compare: f64,
    /// Ternary select over one-bit operands.
    pub ternary: f64,
    /// Bit-select of a wide operand folded into a Boolean combination.
    pub bit_select: f64,
    /// Reduction (`|x`, `&x`, `^x`) of a wide operand.
    pub reduction: f64,
}

impl Default for TemplateMix {
    fn default() -> Self {
        TemplateMix {
            boolean: 0.45,
            compare: 0.20,
            ternary: 0.15,
            bit_select: 0.12,
            reduction: 0.08,
        }
    }
}

impl TemplateMix {
    /// Only plain Boolean statements (the paper's minimal template).
    pub fn boolean_only() -> Self {
        TemplateMix {
            boolean: 1.0,
            compare: 0.0,
            ternary: 0.0,
            bit_select: 0.0,
            reduction: 0.0,
        }
    }
}

/// Generates a one-bit-valued expression over the pool.
///
/// # Panics
///
/// Panics when the pool has no one-bit signals.
pub fn random_bool_expr(
    rng: &mut StdRng,
    pool: &SignalPool,
    cfg: &ExprConfig,
    mix: &TemplateMix,
) -> String {
    assert!(!pool.no_bits(), "empty one-bit signal pool");
    let have_wide = !pool.wide.is_empty();
    let weights = [
        mix.boolean,
        if have_wide { mix.compare } else { 0.0 },
        mix.ternary,
        if have_wide { mix.bit_select } else { 0.0 },
        if have_wide { mix.reduction } else { 0.0 },
    ];
    match pick(rng, &weights) {
        0 => random_expr(rng, &pool.bits, cfg),
        1 => compare_expr(rng, pool, cfg),
        2 => ternary_expr(rng, pool, cfg),
        3 => bit_select_expr(rng, pool, cfg),
        _ => reduction_expr(rng, pool),
    }
}

/// Generates a wide-valued expression of the given width: arithmetic,
/// ternary select, concatenation, or a shifted/registered move.
pub fn random_wide_expr(rng: &mut StdRng, pool: &SignalPool, width: u32) -> String {
    let same_width: Vec<&(String, u32)> = pool.wide.iter().filter(|(_, w)| *w == width).collect();
    if same_width.is_empty() {
        // Fall back to a literal of the right width.
        let v = rng.random_range(0..(1u64 << width.min(16)));
        return format!("{width}'d{v}");
    }
    let a = &same_width[rng.random_range(0..same_width.len())].0;
    let b = &same_width[rng.random_range(0..same_width.len())].0;
    match rng.random_range(0..5) {
        0 => format!("{a} + {width}'d1"),
        1 => format!("{a} - {width}'d1"),
        2 => format!("{a} ^ {b}"),
        3 => {
            let c = pool
                .bits
                .get(rng.random_range(0..pool.bits.len().max(1)))
                .cloned()
                .unwrap_or_else(|| "1'b1".to_owned());
            format!("{c} ? {a} : {b}")
        }
        _ => format!("{a} & {b}"),
    }
}

fn compare_expr(rng: &mut StdRng, pool: &SignalPool, cfg: &ExprConfig) -> String {
    let (a, w) = pool.random_wide(rng).clone();
    let op = if rng.random_bool(0.5) { "==" } else { "!=" };
    let rhs = if rng.random_bool(0.5) && pool.wide.iter().filter(|(_, ww)| *ww == w).count() > 1 {
        loop {
            let (b, wb) = pool.random_wide(rng);
            if *wb == w && *b != a {
                break b.clone();
            }
        }
    } else {
        let v = rng.random_range(0..(1u64 << w.min(16)));
        format!("{w}'d{v}")
    };
    let core = format!("({a} {op} {rhs})");
    if rng.random_bool(0.5) {
        let extra = random_expr(
            rng,
            &pool.bits,
            &ExprConfig {
                min_operands: 1,
                max_operands: 1,
                ..*cfg
            },
        );
        let join = if rng.random_bool(0.5) { "&" } else { "|" };
        format!("{core} {join} {extra}")
    } else {
        core
    }
}

fn ternary_expr(rng: &mut StdRng, pool: &SignalPool, cfg: &ExprConfig) -> String {
    let one = ExprConfig {
        min_operands: 1,
        max_operands: 1,
        ..*cfg
    };
    let c = random_expr(rng, &pool.bits, &one);
    let t = random_expr(rng, &pool.bits, &one);
    let f = random_expr(rng, &pool.bits, &one);
    format!("{c} ? {t} : {f}")
}

fn bit_select_expr(rng: &mut StdRng, pool: &SignalPool, cfg: &ExprConfig) -> String {
    let (a, w) = pool.random_wide(rng).clone();
    let idx = rng.random_range(0..w);
    let core = format!("{a}[{idx}]");
    if rng.random_bool(0.6) {
        let extra = random_expr(
            rng,
            &pool.bits,
            &ExprConfig {
                min_operands: 1,
                max_operands: 2,
                ..*cfg
            },
        );
        let join = ["&", "|", "^"][rng.random_range(0..3usize)];
        format!("{core} {join} {extra}")
    } else {
        core
    }
}

fn reduction_expr(rng: &mut StdRng, pool: &SignalPool) -> String {
    let (a, _) = pool.random_wide(rng);
    let op = ["|", "&", "^"][rng.random_range(0..3usize)];
    let bit = pool.random_bit(rng);
    format!("({op}{a}) ^ {bit}")
}

fn pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool() -> SignalPool {
        SignalPool {
            bits: vec!["a".into(), "b".into(), "c".into()],
            wide: vec![("w0".into(), 3), ("w1".into(), 3), ("w2".into(), 2)],
        }
    }

    fn parses_as_bool_rhs(e: &str) {
        let src = format!(
            "module m(input a, input b, input c, input [2:0] w0, input [2:0] w1, input [1:0] w2, output y);\nassign y = {e};\nendmodule"
        );
        verilog::parse(&src).unwrap_or_else(|err| panic!("`{e}`: {err}"));
    }

    #[test]
    fn all_templates_emit_parseable_expressions() {
        let cfg = ExprConfig::default();
        let mix = TemplateMix::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            parses_as_bool_rhs(&random_bool_expr(&mut rng, &pool(), &cfg, &mix));
        }
    }

    #[test]
    fn wide_expressions_parse() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let e = random_wide_expr(&mut rng, &pool(), 3);
            let src = format!(
                "module m(input a, input b, input c, input [2:0] w0, input [2:0] w1, input [1:0] w2, output [2:0] y);\nassign y = {e};\nendmodule"
            );
            verilog::parse(&src).unwrap_or_else(|err| panic!("`{e}`: {err}"));
        }
    }

    #[test]
    fn boolean_only_mix_never_uses_wide_constructs() {
        let cfg = ExprConfig::default();
        let mix = TemplateMix::boolean_only();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let e = random_bool_expr(&mut rng, &pool(), &cfg, &mix);
            assert!(
                !e.contains("w0") && !e.contains("w1") && !e.contains("w2"),
                "wide signal leaked into boolean-only mix: {e}"
            );
        }
    }

    #[test]
    fn templates_cover_target_node_kinds() {
        // Over many samples, the generator must produce comparisons,
        // ternaries, bit-selects, and reductions (the transfer vocabulary).
        let cfg = ExprConfig::default();
        let mix = TemplateMix::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw = [false; 4];
        for _ in 0..300 {
            let e = random_bool_expr(&mut rng, &pool(), &cfg, &mix);
            saw[0] |= e.contains("==") || e.contains("!=");
            saw[1] |= e.contains('?');
            saw[2] |= e.contains('[');
            saw[3] |= e.contains("(|") || e.contains("(&") || e.contains("(^");
        }
        assert!(saw.iter().all(|s| *s), "missing template coverage: {saw:?}");
    }
}
