//! Random Boolean-expression generation for RVDG statements.
//!
//! The paper's generator "randomly generates legal blocking assignments
//! following Verilog's grammar" and "controls the maximum number of operands
//! and Boolean operators in each design statement". Expressions here are
//! random left-leaning trees of `&`/`|`/`^` over a bounded number of operand
//! references, each optionally negated.

use rand::rngs::StdRng;
use rand::RngExt;

/// Configuration for one random expression.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExprConfig {
    /// Minimum number of operands (≥ 1).
    pub min_operands: usize,
    /// Maximum number of operands.
    pub max_operands: usize,
    /// Probability that an operand is negated with `~`.
    pub negate_probability: f64,
    /// Probability of parenthesizing a sub-expression (adds AST variety).
    pub group_probability: f64,
}

impl Default for ExprConfig {
    fn default() -> Self {
        ExprConfig {
            min_operands: 2,
            max_operands: 4,
            negate_probability: 0.3,
            group_probability: 0.25,
        }
    }
}

const BOOLEAN_OPS: [&str; 3] = ["&", "|", "^"];

/// Generates one random Boolean expression over `candidates` as source text.
///
/// # Panics
///
/// Panics when `candidates` is empty or the operand bounds are invalid.
pub fn random_expr(rng: &mut StdRng, candidates: &[String], cfg: &ExprConfig) -> String {
    assert!(!candidates.is_empty(), "no candidate operands");
    assert!(
        cfg.min_operands >= 1 && cfg.min_operands <= cfg.max_operands,
        "bad operand bounds"
    );
    let n = rng.random_range(cfg.min_operands..=cfg.max_operands);
    let mut expr = random_operand(rng, candidates, cfg);
    for _ in 1..n {
        let op = BOOLEAN_OPS[rng.random_range(0..BOOLEAN_OPS.len())];
        let rhs = random_operand(rng, candidates, cfg);
        let joined = format!("{expr} {op} {rhs}");
        expr = if rng.random_bool(cfg.group_probability) {
            format!("({joined})")
        } else {
            joined
        };
    }
    expr
}

fn random_operand(rng: &mut StdRng, candidates: &[String], cfg: &ExprConfig) -> String {
    let name = &candidates[rng.random_range(0..candidates.len())];
    if rng.random_bool(cfg.negate_probability) {
        format!("~{name}")
    } else {
        name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    #[test]
    fn expressions_parse_inside_a_module() {
        let cfg = ExprConfig::default();
        let mut r = rng(42);
        for _ in 0..50 {
            let e = random_expr(&mut r, &names(), &cfg);
            let src = format!(
                "module m(input a, input b, input c, output y);\nassign y = {e};\nendmodule"
            );
            verilog::parse(&src).unwrap_or_else(|err| panic!("`{e}` failed to parse: {err}"));
        }
    }

    #[test]
    fn operand_count_is_bounded() {
        let cfg = ExprConfig {
            min_operands: 2,
            max_operands: 4,
            negate_probability: 0.0,
            group_probability: 0.0,
        };
        let mut r = rng(7);
        for _ in 0..50 {
            let e = random_expr(&mut r, &names(), &cfg);
            let ops = e.matches(['&', '|', '^']).count();
            assert!(
                (1..=3).contains(&ops),
                "operator count out of range in `{e}`"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = ExprConfig::default();
        let a = random_expr(&mut rng(5), &names(), &cfg);
        let b = random_expr(&mut rng(5), &names(), &cfg);
        assert_eq!(a, b);
    }
}
