//! The Random Verilog Design Generator (paper Sec. V, "Dataset generation").
//!
//! Each generated design follows the paper's two-part template:
//!
//! - a **clocked always block** `C` acting as the memory element — state
//!   registers capture their next-state values at the clock edge,
//! - a **non-clocked always block** `NC` computing next state and outputs
//!   from current state and inputs through chains of `if`/`else-if` arms of
//!   blocking assignments.
//!
//! Interdependencies are enforced by a layer of intermediate temporaries:
//! each `t_i` may read inputs, state, and *lower-indexed* temporaries (which
//! guarantees the combinational block is loop-free), and branch bodies
//! assign outputs/next-state from any of them.
//!
//! Beyond the paper's pure-Boolean statements, the generator mixes in
//! multi-bit signals with comparisons, ternaries, bit-selects, reductions,
//! and narrow arithmetic (see [`crate::template`]) so the trained token
//! embeddings cover the AST vocabulary the realistic designs use. Set
//! [`TemplateMix::boolean_only`] to reproduce the minimal paper template.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

use crate::expr::ExprConfig;
use crate::template::{random_bool_expr, random_wide_expr, SignalPool, TemplateMix};
use verilog::{Module, ParseError};

/// Configuration for the design generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RvdgConfig {
    /// Number of one-bit primary inputs (excluding the clock).
    pub num_inputs: usize,
    /// Number of one-bit state registers.
    pub num_state: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of intermediate temporaries (the data-flow "glue").
    pub num_temps: usize,
    /// Number of `if`/`else-if` arms in the combinational block (≥ 1; a
    /// final `else` arm is always added).
    pub num_branches: usize,
    /// Statements per branch arm.
    pub stmts_per_branch: usize,
    /// Number of multi-bit primary inputs.
    pub num_wide_inputs: usize,
    /// Width of multi-bit signals (2..=8 recommended).
    pub wide_width: u32,
    /// Expression shape bounds.
    pub expr: ExprConfig,
    /// Statement-template mixing weights.
    pub mix: TemplateMix,
}

impl Default for RvdgConfig {
    fn default() -> Self {
        RvdgConfig {
            num_inputs: 4,
            num_state: 2,
            num_outputs: 2,
            num_temps: 3,
            num_branches: 3,
            stmts_per_branch: 2,
            num_wide_inputs: 2,
            wide_width: 3,
            expr: ExprConfig::default(),
            mix: TemplateMix::default(),
        }
    }
}

/// A generated design: source text plus its parsed module.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedDesign {
    /// The Verilog source.
    pub source: String,
    /// The parsed module.
    pub module: Module,
    /// The seed that produced it.
    pub seed: u64,
}

/// The seeded design generator.
#[derive(Debug, Clone)]
pub struct Generator {
    cfg: RvdgConfig,
    seed: u64,
}

impl Generator {
    /// Creates a generator from a configuration and base seed.
    pub fn new(cfg: RvdgConfig, seed: u64) -> Self {
        Generator { cfg, seed }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &RvdgConfig {
        &self.cfg
    }

    /// Generates the `index`-th design of the corpus.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the emitted source is invalid — which
    /// would be a generator bug; the error is surfaced rather than hidden so
    /// property tests can catch regressions.
    pub fn generate(&self, index: u64) -> Result<GeneratedDesign, ParseError> {
        let seed = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
        let mut rng = StdRng::seed_from_u64(seed);
        let source = self.emit(&mut rng, index);
        let module = verilog::parse(&source)?.top().clone();
        Ok(GeneratedDesign {
            source,
            module,
            seed,
        })
    }

    /// Generates a corpus of `count` designs.
    ///
    /// # Errors
    ///
    /// Propagates the first generation failure.
    pub fn generate_corpus(&self, count: usize) -> Result<Vec<GeneratedDesign>, ParseError> {
        (0..count as u64).map(|i| self.generate(i)).collect()
    }

    fn emit(&self, rng: &mut StdRng, index: u64) -> String {
        let c = &self.cfg;
        let inputs: Vec<String> = (0..c.num_inputs).map(|i| format!("in{i}")).collect();
        let states: Vec<String> = (0..c.num_state).map(|i| format!("s{i}")).collect();
        let nexts: Vec<String> = (0..c.num_state).map(|i| format!("n{i}")).collect();
        let temps: Vec<String> = (0..c.num_temps).map(|i| format!("t{i}")).collect();
        let outputs: Vec<String> = (0..c.num_outputs).map(|i| format!("y{i}")).collect();
        let wide_inputs: Vec<String> = (0..c.num_wide_inputs).map(|i| format!("w{i}")).collect();
        let has_wide = c.num_wide_inputs > 0;
        let ww = c.wide_width.max(2);

        let mut src = String::new();
        let _ = write!(src, "module rvdg_{index}(input clk");
        for i in &inputs {
            let _ = write!(src, ", input {i}");
        }
        for w in &wide_inputs {
            let _ = write!(src, ", input [{}:0] {w}", ww - 1);
        }
        for o in &outputs {
            let _ = write!(src, ", output reg {o}");
        }
        src.push_str(");\n");
        for s in &states {
            let _ = writeln!(src, "  reg {s};");
        }
        for n in &nexts {
            let _ = writeln!(src, "  reg {n};");
        }
        for t in &temps {
            let _ = writeln!(src, "  reg {t};");
        }
        if has_wide {
            let _ = writeln!(src, "  reg [{}:0] ws;", ww - 1);
            let _ = writeln!(src, "  reg [{}:0] wn;", ww - 1);
        }

        // The clocked block C: plain state capture.
        src.push_str("  always @(posedge clk) begin\n");
        for (s, n) in states.iter().zip(&nexts) {
            let _ = writeln!(src, "    {s} <= {n};");
        }
        if has_wide {
            src.push_str("    ws <= wn;\n");
        }
        src.push_str("  end\n");

        // The combinational block NC.
        src.push_str("  always @(*) begin\n");

        // Temporaries: each may read inputs, state, and earlier temps.
        let mut pool = SignalPool {
            bits: inputs.iter().chain(&states).cloned().collect(),
            wide: wide_inputs
                .iter()
                .map(|w| (w.clone(), ww))
                .chain(has_wide.then(|| ("ws".to_owned(), ww)))
                .collect(),
        };
        let cond_pool = pool.clone();
        for t in &temps {
            let e = random_bool_expr(rng, &pool, &c.expr, &c.mix);
            let _ = writeln!(src, "    {t} = {e};");
            pool.bits.push(t.clone());
        }

        // Defaults so no latches are inferred.
        for (n, s) in nexts.iter().zip(&states) {
            let _ = writeln!(src, "    {n} = {s};");
        }
        for o in &outputs {
            let _ = writeln!(src, "    {o} = 1'b0;");
        }
        if has_wide {
            src.push_str("    wn = ws;\n");
        }

        // Branch targets: next-state (1-bit and wide) and outputs.
        let bit_targets: Vec<String> = nexts.iter().chain(&outputs).cloned().collect();
        for arm in 0..c.num_branches {
            let cond = random_bool_expr(rng, &cond_pool, &c.expr, &c.mix);
            let kw = if arm == 0 { "if" } else { "else if" };
            let _ = writeln!(src, "    {kw} ({cond}) begin");
            self.emit_branch_body(rng, &mut src, &pool, &bit_targets, has_wide, ww);
            src.push_str("    end\n");
        }
        src.push_str("    else begin\n");
        self.emit_branch_body(rng, &mut src, &pool, &bit_targets, has_wide, ww);
        src.push_str("    end\n");

        src.push_str("  end\nendmodule\n");
        src
    }

    fn emit_branch_body(
        &self,
        rng: &mut StdRng,
        src: &mut String,
        pool: &SignalPool,
        bit_targets: &[String],
        has_wide: bool,
        ww: u32,
    ) {
        for _ in 0..self.cfg.stmts_per_branch {
            // Occasionally update the wide next-state register instead of a
            // one-bit target, so wide arithmetic appears in training data.
            if has_wide && rng.random_bool(0.25) {
                let e = random_wide_expr(rng, pool, ww);
                let _ = writeln!(src, "      wn = {e};");
            } else {
                let target = &bit_targets[rng.random_range(0..bit_targets.len())];
                let e = random_bool_expr(rng, pool, &self.cfg.expr, &self.cfg.mix);
                let _ = writeln!(src, "      {target} = {e};");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{Simulator, TestbenchGen};

    #[test]
    fn generated_designs_parse_and_have_template_shape() {
        let gen = Generator::new(RvdgConfig::default(), 11);
        let d = gen.generate(0).unwrap();
        let m = &d.module;
        assert_eq!(m.input_names().len(), 7); // clk + 4 bit inputs + 2 wide
        assert_eq!(m.output_names().len(), 2);
        assert_eq!(m.items.len(), 2, "one clocked + one combinational block");
    }

    #[test]
    fn corpus_is_deterministic_and_varied() {
        let gen = Generator::new(RvdgConfig::default(), 3);
        let a = gen.generate_corpus(4).unwrap();
        let b = gen.generate_corpus(4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a[0].source, a[1].source);
        assert_ne!(a[1].source, a[2].source);
    }

    #[test]
    fn generated_designs_simulate_without_errors() {
        let gen = Generator::new(RvdgConfig::default(), 17);
        for d in gen.generate_corpus(12).unwrap() {
            let mut sim = Simulator::new(&d.module)
                .unwrap_or_else(|e| panic!("elaboration failed for seed {}: {e}", d.seed));
            let stim = TestbenchGen::new(d.seed).generate(sim.netlist(), 32);
            let trace = sim
                .run(&stim)
                .unwrap_or_else(|e| panic!("simulation failed for seed {}: {e}", d.seed));
            assert_eq!(trace.len(), 32);
            // Statements actually execute (the training corpus is non-empty).
            assert!(!trace.executed_stmts().is_empty());
        }
    }

    #[test]
    fn boolean_only_mix_reproduces_paper_template() {
        let cfg = RvdgConfig {
            num_wide_inputs: 0,
            mix: TemplateMix::boolean_only(),
            ..RvdgConfig::default()
        };
        let gen = Generator::new(cfg, 19);
        let d = gen.generate(0).unwrap();
        assert!(!d.source.contains("=="));
        assert!(!d.source.contains('?'));
        assert!(!d.source.contains("ws"));
    }

    #[test]
    fn corpus_covers_transfer_vocabulary() {
        // Across a corpus, the sources must exercise comparisons, ternaries,
        // and bit-selects so every token embedding gets trained.
        let gen = Generator::new(RvdgConfig::default(), 23);
        let all: String = gen
            .generate_corpus(8)
            .unwrap()
            .iter()
            .map(|d| d.source.clone())
            .collect();
        assert!(all.contains("==") || all.contains("!="), "no comparisons");
        assert!(all.contains('?'), "no ternaries");
        assert!(all.contains('['), "no selects");
    }

    #[test]
    fn state_feeds_back_through_clocked_block() {
        // The template must create sequential behavior: an output depends
        // on a state register through the read-set closure.
        let gen = Generator::new(RvdgConfig::default(), 23);
        let d = gen.generate(1).unwrap();
        assert!(
            influences_state(&d.module),
            "outputs never depend on state registers"
        );
    }

    // Local reachability check to avoid a dev-dependency cycle with
    // veribug-cdfg: walk assignments and confirm some output transitively
    // reads a state register.
    fn influences_state(m: &Module) -> bool {
        use std::collections::{BTreeMap, BTreeSet};
        let mut reads: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for a in m.assignments() {
            let entry = reads.entry(a.lhs.base.clone()).or_default();
            for r in a.rhs.referenced_signals() {
                entry.insert(r.to_owned());
            }
        }
        let is_state = |n: &str| n == "ws" || (n.starts_with('s') && n[1..].parse::<u32>().is_ok());
        for o in m.output_names() {
            let mut seen = BTreeSet::new();
            let mut stack = vec![o.to_owned()];
            while let Some(n) = stack.pop() {
                if !seen.insert(n.clone()) {
                    continue;
                }
                if is_state(&n) {
                    return true;
                }
                if let Some(rs) = reads.get(&n) {
                    stack.extend(rs.iter().cloned());
                }
            }
        }
        false
    }
}
