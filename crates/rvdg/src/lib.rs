//! # veribug-rvdg
//!
//! The paper's **Random Verilog Design Generator** (Sec. V): seeded synthetic
//! Verilog designs following a fixed two-block template — a clocked always
//! block for state and a combinational always block of `if`/`else-if` arms
//! of blocking Boolean assignments — with enforced variable
//! interdependencies and bounded operand counts.
//!
//! VeriBug trains **only** on this corpus; the paper's transfer claim is
//! that the learned execution semantics generalize to the realistic designs
//! in `veribug-designs` without retraining.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use veribug_rvdg::{Generator, RvdgConfig};
//!
//! let generator = Generator::new(RvdgConfig::default(), 42);
//! let design = generator.generate(0)?;
//! assert!(design.source.starts_with("module rvdg_0"));
//! assert_eq!(design.module.items.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod expr;
pub mod generator;
pub mod template;

pub use expr::{random_expr, ExprConfig};
pub use generator::{GeneratedDesign, Generator, RvdgConfig};
pub use template::{random_bool_expr, random_wide_expr, SignalPool, TemplateMix};
