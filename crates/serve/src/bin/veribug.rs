//! The `veribug` command-line tool: train, localize, explain, inject,
//! analyze, dump, serve.
//!
//! ```text
//! veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
//!                  [--log train_log.jsonl]
//! veribug localize --golden g.v --buggy b.v --target T --model model.vbm
//!                  [--runs N] [--cycles N] [--threshold X] [--ansi]
//! veribug explain  --golden g.v --buggy b.v --target T [--model model.vbm]
//!                  [--runs N] [--cycles N] [--threshold X]
//!                  [--attention] [--json] [--out PATH]
//! veribug inject   --design g.v --target T [--negation N] [--operation N]
//!                  [--misuse N] [--seed S] [--out-dir DIR]
//! veribug analyze  --design f.v --target T
//! veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd
//! veribug serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!                  [--deadline-ms N] [--max-body N] [--model model.vbm]
//!                  [--access-log] [--debug-endpoints]
//! veribug --version
//! ```
//!
//! Every subcommand also accepts `--obs <path>` (or the `VERIBUG_OBS`
//! environment variable) to write a Chrome trace / JSON-lines profile of the
//! run, and `--quiet` to suppress progress lines (see `veribug-obs`).
//!
//! Unknown subcommands and unknown `--flags` are hard errors that print
//! the valid set and exit nonzero.

use std::collections::HashMap;
use std::process::ExitCode;

use mutate::{BugBudget, Campaign};
use rvdg::{Generator, RvdgConfig};
use sim::{Simulator, TestbenchGen};
use veribug::localize::{self, LocalizeOptions};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::render::render_comparison;
use veribug::train::{self, Dataset, TrainConfig};
use veribug::{persist, AttributionReport, DEFAULT_THRESHOLD};
use veribug_serve::{Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--version" || command == "-V" || command == "version" {
        println!("veribug {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        eprintln!(
            "error: unknown command `{command}`; valid commands: {}\n\n{USAGE}",
            COMMANDS
                .iter()
                .map(|c| c.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..], spec) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    obs::init(opts.get("obs").map(String::as_str));
    obs::set_quiet(opts.contains_key("quiet"));
    let result = (spec.run)(&opts);
    obs::report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
veribug — attention-based bug localization for Verilog designs

USAGE:
  veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
                   [--log train_log.jsonl]
  veribug localize --golden g.v --buggy b.v --target T --model model.vbm
                   [--runs N] [--cycles N] [--threshold X] [--ansi]
  veribug explain  --golden g.v --buggy b.v --target T [--model model.vbm]
                   [--runs N] [--cycles N] [--threshold X]
                   [--attention] [--json] [--out PATH]
  veribug inject   --design g.v --target T [--negation N] [--operation N]
                   [--misuse N] [--seed S] [--out-dir DIR]
  veribug analyze  --design f.v --target T
  veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd
  veribug serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
                   [--deadline-ms N] [--max-body N] [--model model.vbm]
                   [--access-log] [--debug-endpoints]
  veribug --version

Every subcommand also accepts:
  --obs PATH   write a Chrome trace (or .jsonl event log) of the run
  --quiet      suppress progress lines on stderr";

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// One subcommand: its name, the flags it accepts, and its entry point.
struct Command {
    name: &'static str,
    flags: &'static [&'static str],
    run: fn(&HashMap<String, String>) -> CmdResult,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "train",
        flags: &["out", "designs", "epochs", "seed", "log"],
        run: cmd_train,
    },
    Command {
        name: "localize",
        flags: &[
            "golden",
            "buggy",
            "target",
            "model",
            "runs",
            "cycles",
            "threshold",
            "ansi",
        ],
        run: cmd_localize,
    },
    Command {
        name: "explain",
        flags: &[
            "golden",
            "buggy",
            "target",
            "model",
            "runs",
            "cycles",
            "threshold",
            "attention",
            "json",
            "out",
        ],
        run: cmd_explain,
    },
    Command {
        name: "inject",
        flags: &[
            "design",
            "target",
            "negation",
            "operation",
            "misuse",
            "seed",
            "out-dir",
        ],
        run: cmd_inject,
    },
    Command {
        name: "analyze",
        flags: &["design", "target"],
        run: cmd_analyze,
    },
    Command {
        name: "vcd",
        flags: &["design", "cycles", "seed", "out"],
        run: cmd_vcd,
    },
    Command {
        name: "serve",
        flags: &[
            "addr",
            "workers",
            "queue",
            "cache",
            "deadline-ms",
            "max-body",
            "model",
            "access-log",
            "debug-endpoints",
        ],
        run: cmd_serve,
    },
];

/// Flags every subcommand accepts.
const COMMON_FLAGS: &[&str] = &["obs", "quiet"];

fn parse_opts(args: &[String], spec: &Command) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{a}` for `veribug {}` (flags start with --)",
                spec.name
            ));
        };
        if !spec.flags.contains(&key) && !COMMON_FLAGS.contains(&key) {
            let mut valid: Vec<&str> = spec.flags.iter().chain(COMMON_FLAGS).copied().collect();
            valid.sort_unstable();
            return Err(format!(
                "unknown option --{key} for `veribug {}`; valid options: {}",
                spec.name,
                valid
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match value {
            Some(v) => {
                out.insert(key.to_owned(), v.clone());
                i += 2;
            }
            None => {
                out.insert(key.to_owned(), "true".to_owned());
                i += 1;
            }
        }
    }
    Ok(out)
}

fn required<'o>(opts: &'o HashMap<String, String>, key: &str) -> Result<&'o str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn numeric<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|e| format!("bad value for --{key}: {e}")),
    }
}

fn load_module(path: &str) -> Result<verilog::Module, Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(verilog::parse(&source)
        .map_err(|e| format!("{path}: {e}"))?
        .top()
        .clone())
}

fn cmd_train(opts: &HashMap<String, String>) -> CmdResult {
    let out = required(opts, "out")?;
    let designs: usize = numeric(opts, "designs", 32)?;
    let epochs: usize = numeric(opts, "epochs", 80)?;
    let seed: u64 = numeric(opts, "seed", 1234)?;

    obs::progress!("generating {designs} RVDG designs (seed {seed})...");
    let corpus: Vec<_> = {
        let _span = obs::span("generate");
        Generator::new(RvdgConfig::default(), seed)
            .generate_corpus(designs)?
            .into_iter()
            .map(|d| d.module)
            .collect()
    };
    let dataset = {
        let _span = obs::span("simulate");
        Dataset::from_designs(&corpus, seed ^ 1, 64, 3)?
    };
    obs::progress!("dataset: {} unique statement executions", dataset.len());
    let mut model = VeriBugModel::new(ModelConfig::default());
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let report = train::train(&mut model, &dataset, &cfg)?;
    obs::progress!(
        "trained {epochs} epochs; loss {:.4} -> {:.4}",
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0)
    );
    persist::save(&model, out)?;
    let log = opts.get("log").map_or("train_log.jsonl", String::as_str);
    train::append_train_log(std::path::Path::new(log), &report, &cfg, &model)?;
    obs::progress!("model written to {out}, epoch telemetry appended to {log}");
    Ok(())
}

fn cmd_explain(opts: &HashMap<String, String>) -> CmdResult {
    let (golden, buggy) = {
        let _span = obs::span("parse");
        (
            load_module(required(opts, "golden")?)?,
            load_module(required(opts, "buggy")?)?,
        )
    };
    let target = required(opts, "target")?;
    // Without --model, explain the freshly initialized (untrained) model —
    // the same fallback `veribug serve` uses, so CLI and `/v1/explain`
    // output can be compared directly.
    let model = match opts.get("model") {
        Some(path) => persist::load(path)?,
        None => VeriBugModel::new(ModelConfig::default()),
    };
    let localize_opts = LocalizeOptions {
        runs: numeric(opts, "runs", 160)?,
        cycles: numeric(opts, "cycles", 16)?,
        threshold: numeric(opts, "threshold", DEFAULT_THRESHOLD)?,
        ..LocalizeOptions::default()
    };
    let report = localize::run(&model, &golden, &buggy, target, &localize_opts)?;
    let rendered = if opts.contains_key("attention") {
        let att = AttributionReport::from_localize(&model, &buggy, &report);
        if opts.contains_key("json") {
            att.to_json()
        } else {
            att.to_text()
        }
    } else {
        // Plain mode: the Fig. 4-style side-by-side comparison.
        format!(
            "{}\n",
            render_comparison(&buggy, &report.heatmap, &report.correct_map, false)
        )
    };
    match opts.get("out") {
        Some(path) => std::fs::write(path, rendered)?,
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_localize(opts: &HashMap<String, String>) -> CmdResult {
    let (golden, buggy) = {
        let _span = obs::span("parse");
        (
            load_module(required(opts, "golden")?)?,
            load_module(required(opts, "buggy")?)?,
        )
    };
    let target = required(opts, "target")?;
    let model = persist::load(required(opts, "model")?)?;
    let localize_opts = LocalizeOptions {
        runs: numeric(opts, "runs", 160)?,
        cycles: numeric(opts, "cycles", 16)?,
        threshold: numeric(opts, "threshold", DEFAULT_THRESHOLD)?,
        ..LocalizeOptions::default()
    };
    let ansi = opts.contains_key("ansi");

    let report = localize::run(&model, &golden, &buggy, target, &localize_opts)?;
    obs::progress!(
        "{}/{} runs expose a failure at {target}",
        report.failing_runs,
        report.total_runs
    );
    if !report.has_failures() {
        return Err("no failing runs: nothing to localize".into());
    }
    if report.suspects.is_empty() {
        println!(
            "heatmap is empty: no statement crossed the {} threshold",
            localize_opts.threshold
        );
        return Ok(());
    }
    println!("suspicious statements (most suspicious first):");
    for s in &report.suspects {
        println!("  {:.3}  {}  {}", s.suspiciousness, s.stmt, s.source);
    }
    // Render the comparison view for the top candidates.
    println!(
        "\n{}",
        render_comparison(&buggy, &report.heatmap, &report.correct_map, ansi)
    );
    Ok(())
}

fn cmd_inject(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let budget = BugBudget {
        negation: numeric(opts, "negation", 2)?,
        operation: numeric(opts, "operation", 2)?,
        misuse: numeric(opts, "misuse", 2)?,
    };
    let seed: u64 = numeric(opts, "seed", 7)?;
    let out_dir = opts.get("out-dir").cloned();

    let mutants = Campaign::new(seed).run(&design, target, &budget)?;
    println!(
        "{} mutants produced, {} observable at {target}",
        mutants.len(),
        mutants.iter().filter(|m| m.observable).count()
    );
    for (i, m) in mutants.iter().enumerate() {
        println!(
            "  mutant {i}: {} at {} ({})",
            m.site.kind,
            m.site.stmt,
            if m.observable { "observable" } else { "masked" }
        );
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir)?;
            let path = format!("{dir}/mutant_{i}.v");
            std::fs::write(&path, &m.source)?;
        }
    }
    if let Some(dir) = &out_dir {
        println!("mutant sources written to {dir}/");
    }
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let vdg = cdfg::Vdg::build(&design);
    let dep = cdfg::dependencies_of(&vdg, target);
    let slice = cdfg::Slice::of_target(&design, target);
    let coi = cdfg::ConeOfInfluence::compute(&vdg, target, 8);
    println!("module {}", design.name);
    println!("target {target}");
    println!(
        "Dep_t ({}): {}",
        dep.len(),
        dep.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    println!("static slice ({} statements):", slice.len());
    for stmt in &slice.stmts {
        if let Some(a) = design.assignment(*stmt) {
            let depth = coi.min_cycles.get(&a.lhs.base).copied().unwrap_or(0);
            println!(
                "  {stmt} (depth {depth}): {} = {}",
                a.lhs.base,
                verilog::print_expr(&a.rhs)
            );
        }
    }
    Ok(())
}

fn cmd_vcd(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let out = required(opts, "out")?;
    let cycles: usize = numeric(opts, "cycles", 64)?;
    let seed: u64 = numeric(opts, "seed", 1)?;
    let mut sim = Simulator::new(&design)?;
    let stim = TestbenchGen::new(seed).generate(sim.netlist(), cycles);
    let trace = sim.run(&stim)?;
    std::fs::write(out, sim::to_vcd(sim.netlist(), &trace, 10))?;
    println!("{cycles} cycles dumped to {out}");
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> CmdResult {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned()),
        workers: numeric(opts, "workers", defaults.workers)?,
        queue_capacity: numeric(opts, "queue", defaults.queue_capacity)?,
        cache_capacity: numeric(opts, "cache", defaults.cache_capacity)?,
        deadline: std::time::Duration::from_millis(numeric(
            opts,
            "deadline-ms",
            defaults.deadline.as_millis() as u64,
        )?),
        max_body_bytes: numeric(opts, "max-body", defaults.max_body_bytes)?,
        model_path: opts.get("model").cloned(),
        telemetry: true,
        access_log: opts.contains_key("access-log"),
        debug_endpoints: opts.contains_key("debug-endpoints"),
    };
    let workers = config.workers;
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    // The scrape-friendly line CI and scripts wait for; flushed so readers
    // on a pipe see it before the first request lands.
    println!("veribug-serve listening on {addr} ({workers} workers)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()?;
    println!("veribug-serve drained and stopped");
    Ok(())
}
