//! The `veribug` command-line tool: train, localize, explain, inject,
//! analyze, dump, serve, store, shard-front.
//!
//! ```text
//! veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
//!                  [--log train_log.jsonl]
//! veribug localize --golden g.v --buggy b.v --target T --model model.vbm
//!                  [--runs N] [--cycles N] [--threshold X] [--ansi]
//! veribug explain  --golden g.v --buggy b.v --target T [--model model.vbm]
//!                  [--runs N] [--cycles N] [--threshold X]
//!                  [--attention] [--json] [--out PATH]
//! veribug inject   --design g.v --target T [--negation N] [--operation N]
//!                  [--misuse N] [--seed S] [--out-dir DIR]
//! veribug analyze  --design f.v --target T
//! veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd
//! veribug serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!                  [--deadline-ms N] [--max-body N] [--model model.vbm]
//!                  [--access-log] [--debug-endpoints] [--store DIR]
//! veribug store    ls|gc|rm KEY [--store DIR]
//! veribug shard-front [--addr HOST:PORT] [--backends H:P,...] [--spawn N]
//!                  [--replicas N] [--model model.vbm] [--store DIR]
//! veribug --version
//! ```
//!
//! Every subcommand also accepts `--obs <path>` (or the `VERIBUG_OBS`
//! environment variable) to write a Chrome trace / JSON-lines profile of the
//! run, and `--quiet` to suppress progress lines (see `veribug-obs`).
//!
//! Unknown subcommands and unknown `--flags` are hard errors that print
//! the valid set and exit nonzero.

use std::collections::HashMap;
use std::process::ExitCode;

use mutate::{BugBudget, Campaign};
use rvdg::{Generator, RvdgConfig};
use sim::{Simulator, TestbenchGen};
use veribug::localize::{self, LocalizeOptions};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::render::render_comparison;
use veribug::train::{self, Dataset, TrainConfig};
use veribug::{persist, AttributionReport, DEFAULT_THRESHOLD};
use veribug_serve::{Server, ServerConfig, ShardConfig, ShardFront};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--version" || command == "-V" || command == "version" {
        println!("veribug {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        eprintln!(
            "error: unknown command `{command}`; valid commands: {}\n\n{USAGE}",
            COMMANDS
                .iter()
                .map(|c| c.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    // `veribug store` takes a positional action (`ls`, `gc`, `rm <key>`)
    // ahead of its flags; everything else is flags-only.
    let mut positionals: Vec<(&'static str, String)> = Vec::new();
    let mut flag_args: &[String] = &args[1..];
    if command == "store" {
        match args.get(1).map(String::as_str) {
            Some(action @ ("ls" | "gc")) => {
                positionals.push(("action", action.to_owned()));
                flag_args = &args[2..];
            }
            Some("rm") => {
                let Some(key) = args.get(2).filter(|v| !v.starts_with("--")) else {
                    eprintln!("error: `veribug store rm` needs a key (16 hex digits, as printed by `veribug store ls`)");
                    return ExitCode::FAILURE;
                };
                positionals.push(("action", "rm".to_owned()));
                positionals.push(("key", key.clone()));
                flag_args = &args[3..];
            }
            Some(other) if !other.starts_with("--") => {
                eprintln!("error: unknown store action `{other}`; valid actions: gc, ls, rm <key>");
                return ExitCode::FAILURE;
            }
            _ => {
                eprintln!(
                    "error: `veribug store` needs an action; valid actions: gc, ls, rm <key>"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let opts = match parse_opts(flag_args, spec) {
        Ok(mut o) => {
            for (k, v) in positionals {
                o.insert(k.to_owned(), v);
            }
            o
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    obs::init(opts.get("obs").map(String::as_str));
    obs::set_quiet(opts.contains_key("quiet"));
    let result = (spec.run)(&opts);
    obs::report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
veribug — attention-based bug localization for Verilog designs

USAGE:
  veribug train    --out model.vbm [--designs N] [--epochs N] [--seed S]
                   [--log train_log.jsonl]
  veribug localize --golden g.v --buggy b.v --target T --model model.vbm
                   [--runs N] [--cycles N] [--threshold X] [--ansi]
  veribug explain  --golden g.v --buggy b.v --target T [--model model.vbm]
                   [--runs N] [--cycles N] [--threshold X]
                   [--attention] [--json] [--out PATH]
  veribug inject   --design g.v --target T [--negation N] [--operation N]
                   [--misuse N] [--seed S] [--out-dir DIR]
  veribug analyze  --design f.v --target T
  veribug vcd      --design f.v [--cycles N] [--seed S] --out trace.vcd
  veribug serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
                   [--deadline-ms N] [--max-body N] [--model model.vbm]
                   [--access-log] [--debug-endpoints] [--store DIR]
  veribug store    ls|gc|rm KEY [--store DIR]
  veribug shard-front [--addr HOST:PORT] [--backends H:P,H:P,...]
                   [--spawn N] [--replicas N] [--model model.vbm]
                   [--store DIR]
  veribug --version

Persistent artifact store: --store DIR (or the VERIBUG_STORE environment
variable) names an on-disk store; VERIBUG_STORE_BUDGET caps its size in
bytes. `veribug serve` preloads stored designs at startup so restarts
answer warm.

Every subcommand also accepts:
  --obs PATH   write a Chrome trace (or .jsonl event log) of the run
  --quiet      suppress progress lines on stderr";

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// One subcommand: its name, the flags it accepts, and its entry point.
struct Command {
    name: &'static str,
    flags: &'static [&'static str],
    run: fn(&HashMap<String, String>) -> CmdResult,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "train",
        flags: &["out", "designs", "epochs", "seed", "log", "store"],
        run: cmd_train,
    },
    Command {
        name: "localize",
        flags: &[
            "golden",
            "buggy",
            "target",
            "model",
            "runs",
            "cycles",
            "threshold",
            "ansi",
        ],
        run: cmd_localize,
    },
    Command {
        name: "explain",
        flags: &[
            "golden",
            "buggy",
            "target",
            "model",
            "runs",
            "cycles",
            "threshold",
            "attention",
            "json",
            "out",
        ],
        run: cmd_explain,
    },
    Command {
        name: "inject",
        flags: &[
            "design",
            "target",
            "negation",
            "operation",
            "misuse",
            "seed",
            "out-dir",
        ],
        run: cmd_inject,
    },
    Command {
        name: "analyze",
        flags: &["design", "target"],
        run: cmd_analyze,
    },
    Command {
        name: "vcd",
        flags: &["design", "cycles", "seed", "out"],
        run: cmd_vcd,
    },
    Command {
        name: "serve",
        flags: &[
            "addr",
            "workers",
            "queue",
            "cache",
            "deadline-ms",
            "max-body",
            "model",
            "access-log",
            "debug-endpoints",
            "store",
        ],
        run: cmd_serve,
    },
    Command {
        name: "store",
        flags: &["store"],
        run: cmd_store,
    },
    Command {
        name: "shard-front",
        flags: &["addr", "backends", "spawn", "replicas", "model", "store"],
        run: cmd_shard_front,
    },
];

/// Resolves the persistent-store root: `--store PATH` wins, then the
/// `VERIBUG_STORE` environment variable; `None` disables the store.
fn store_root(opts: &HashMap<String, String>) -> Option<String> {
    opts.get("store").cloned().or_else(|| {
        std::env::var(store::ENV_ROOT)
            .ok()
            .filter(|v| !v.is_empty())
    })
}

/// Flags every subcommand accepts.
const COMMON_FLAGS: &[&str] = &["obs", "quiet"];

fn parse_opts(args: &[String], spec: &Command) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{a}` for `veribug {}` (flags start with --)",
                spec.name
            ));
        };
        if !spec.flags.contains(&key) && !COMMON_FLAGS.contains(&key) {
            let mut valid: Vec<&str> = spec.flags.iter().chain(COMMON_FLAGS).copied().collect();
            valid.sort_unstable();
            return Err(format!(
                "unknown option --{key} for `veribug {}`; valid options: {}",
                spec.name,
                valid
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match value {
            Some(v) => {
                out.insert(key.to_owned(), v.clone());
                i += 2;
            }
            None => {
                out.insert(key.to_owned(), "true".to_owned());
                i += 1;
            }
        }
    }
    Ok(out)
}

fn required<'o>(opts: &'o HashMap<String, String>, key: &str) -> Result<&'o str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn numeric<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|e| format!("bad value for --{key}: {e}")),
    }
}

fn load_module(path: &str) -> Result<verilog::Module, Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(verilog::parse(&source)
        .map_err(|e| format!("{path}: {e}"))?
        .top()
        .clone())
}

/// The store key for a training run: a manifest of everything that
/// determines the resulting weights (corpus size, epochs, seed, and the
/// persist format version so a format bump never resurrects stale bytes).
fn train_manifest_key(designs: usize, epochs: usize, seed: u64) -> u64 {
    store::hash::fnv1a(
        format!(
            "veribug-train v1\ndesigns {designs}\nepochs {epochs}\nseed {seed}\nformat {}\n",
            persist::format_version()
        )
        .as_bytes(),
    )
}

fn cmd_train(opts: &HashMap<String, String>) -> CmdResult {
    let out = required(opts, "out")?;
    let designs: usize = numeric(opts, "designs", 32)?;
    let epochs: usize = numeric(opts, "epochs", 80)?;
    let seed: u64 = numeric(opts, "seed", 1234)?;

    // With a store configured, a training run is content-addressed by its
    // seed manifest: identical (designs, epochs, seed) reuses the stored
    // weights instead of retraining. Training is deterministic, so the
    // reused bytes are exactly what a fresh run would produce.
    let artifact_store = match store_root(opts) {
        Some(root) => Some(store::Store::open(root, store::env_budget()?)?),
        None => None,
    };
    let key = train_manifest_key(designs, epochs, seed);
    if let Some(s) = &artifact_store {
        if let Some(bytes) = s.get(store::ArtifactKind::Weights, key) {
            match std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| persist::from_str(text).ok())
            {
                Some(model) => {
                    obs::progress!(
                        "reusing stored weights {} (designs {designs}, epochs {epochs}, seed {seed})",
                        store::hash::key_hex(key)
                    );
                    persist::save(&model, out)?;
                    obs::progress!("model written to {out} (trained weights from the store)");
                    return Ok(());
                }
                None => {
                    // A stored artifact that no longer parses is treated
                    // exactly like a store miss: retrain and overwrite it.
                    let _ = s.remove(key);
                }
            }
        }
    }

    obs::progress!("generating {designs} RVDG designs (seed {seed})...");
    let corpus: Vec<_> = {
        let _span = obs::span("generate");
        Generator::new(RvdgConfig::default(), seed)
            .generate_corpus(designs)?
            .into_iter()
            .map(|d| d.module)
            .collect()
    };
    let dataset = {
        let _span = obs::span("simulate");
        Dataset::from_designs(&corpus, seed ^ 1, 64, 3)?
    };
    obs::progress!("dataset: {} unique statement executions", dataset.len());
    let mut model = VeriBugModel::new(ModelConfig::default());
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let report = train::train(&mut model, &dataset, &cfg)?;
    obs::progress!(
        "trained {epochs} epochs; loss {:.4} -> {:.4}",
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0)
    );
    persist::save(&model, out)?;
    if let Some(s) = &artifact_store {
        s.put(
            store::ArtifactKind::Weights,
            key,
            persist::to_string(&model).as_bytes(),
        )?;
        obs::progress!("weights stored as {}", store::hash::key_hex(key));
    }
    let log = opts.get("log").map_or("train_log.jsonl", String::as_str);
    train::append_train_log(std::path::Path::new(log), &report, &cfg, &model)?;
    obs::progress!("model written to {out}, epoch telemetry appended to {log}");
    Ok(())
}

fn cmd_explain(opts: &HashMap<String, String>) -> CmdResult {
    let (golden, buggy) = {
        let _span = obs::span("parse");
        (
            load_module(required(opts, "golden")?)?,
            load_module(required(opts, "buggy")?)?,
        )
    };
    let target = required(opts, "target")?;
    // Without --model, explain the freshly initialized (untrained) model —
    // the same fallback `veribug serve` uses, so CLI and `/v1/explain`
    // output can be compared directly.
    let model = match opts.get("model") {
        Some(path) => persist::load(path)?,
        None => VeriBugModel::new(ModelConfig::default()),
    };
    let localize_opts = LocalizeOptions {
        runs: numeric(opts, "runs", 160)?,
        cycles: numeric(opts, "cycles", 16)?,
        threshold: numeric(opts, "threshold", DEFAULT_THRESHOLD)?,
        ..LocalizeOptions::default()
    };
    let report = localize::run(&model, &golden, &buggy, target, &localize_opts)?;
    let rendered = if opts.contains_key("attention") {
        let att = AttributionReport::from_localize(&model, &buggy, &report);
        if opts.contains_key("json") {
            att.to_json()
        } else {
            att.to_text()
        }
    } else {
        // Plain mode: the Fig. 4-style side-by-side comparison.
        format!(
            "{}\n",
            render_comparison(&buggy, &report.heatmap, &report.correct_map, false)
        )
    };
    match opts.get("out") {
        Some(path) => std::fs::write(path, rendered)?,
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_localize(opts: &HashMap<String, String>) -> CmdResult {
    let (golden, buggy) = {
        let _span = obs::span("parse");
        (
            load_module(required(opts, "golden")?)?,
            load_module(required(opts, "buggy")?)?,
        )
    };
    let target = required(opts, "target")?;
    let model = persist::load(required(opts, "model")?)?;
    let localize_opts = LocalizeOptions {
        runs: numeric(opts, "runs", 160)?,
        cycles: numeric(opts, "cycles", 16)?,
        threshold: numeric(opts, "threshold", DEFAULT_THRESHOLD)?,
        ..LocalizeOptions::default()
    };
    let ansi = opts.contains_key("ansi");

    let report = localize::run(&model, &golden, &buggy, target, &localize_opts)?;
    obs::progress!(
        "{}/{} runs expose a failure at {target}",
        report.failing_runs,
        report.total_runs
    );
    if !report.has_failures() {
        return Err("no failing runs: nothing to localize".into());
    }
    if report.suspects.is_empty() {
        println!(
            "heatmap is empty: no statement crossed the {} threshold",
            localize_opts.threshold
        );
        return Ok(());
    }
    println!("suspicious statements (most suspicious first):");
    for s in &report.suspects {
        println!("  {:.3}  {}  {}", s.suspiciousness, s.stmt, s.source);
    }
    // Render the comparison view for the top candidates.
    println!(
        "\n{}",
        render_comparison(&buggy, &report.heatmap, &report.correct_map, ansi)
    );
    Ok(())
}

fn cmd_inject(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let budget = BugBudget {
        negation: numeric(opts, "negation", 2)?,
        operation: numeric(opts, "operation", 2)?,
        misuse: numeric(opts, "misuse", 2)?,
    };
    let seed: u64 = numeric(opts, "seed", 7)?;
    let out_dir = opts.get("out-dir").cloned();

    let mutants = Campaign::new(seed).run(&design, target, &budget)?;
    println!(
        "{} mutants produced, {} observable at {target}",
        mutants.len(),
        mutants.iter().filter(|m| m.observable).count()
    );
    for (i, m) in mutants.iter().enumerate() {
        println!(
            "  mutant {i}: {} at {} ({})",
            m.site.kind,
            m.site.stmt,
            if m.observable { "observable" } else { "masked" }
        );
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir)?;
            let path = format!("{dir}/mutant_{i}.v");
            std::fs::write(&path, &m.source)?;
        }
    }
    if let Some(dir) = &out_dir {
        println!("mutant sources written to {dir}/");
    }
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let target = required(opts, "target")?;
    let vdg = cdfg::Vdg::build(&design);
    let dep = cdfg::dependencies_of(&vdg, target);
    let slice = cdfg::Slice::of_target(&design, target);
    let coi = cdfg::ConeOfInfluence::compute(&vdg, target, 8);
    println!("module {}", design.name);
    println!("target {target}");
    println!(
        "Dep_t ({}): {}",
        dep.len(),
        dep.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    println!("static slice ({} statements):", slice.len());
    for stmt in &slice.stmts {
        if let Some(a) = design.assignment(*stmt) {
            let depth = coi.min_cycles.get(&a.lhs.base).copied().unwrap_or(0);
            println!(
                "  {stmt} (depth {depth}): {} = {}",
                a.lhs.base,
                verilog::print_expr(&a.rhs)
            );
        }
    }
    Ok(())
}

fn cmd_vcd(opts: &HashMap<String, String>) -> CmdResult {
    let design = load_module(required(opts, "design")?)?;
    let out = required(opts, "out")?;
    let cycles: usize = numeric(opts, "cycles", 64)?;
    let seed: u64 = numeric(opts, "seed", 1)?;
    let mut sim = Simulator::new(&design)?;
    let stim = TestbenchGen::new(seed).generate(sim.netlist(), cycles);
    let trace = sim.run(&stim)?;
    std::fs::write(out, sim::to_vcd(sim.netlist(), &trace, 10))?;
    println!("{cycles} cycles dumped to {out}");
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> CmdResult {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned()),
        workers: numeric(opts, "workers", defaults.workers)?,
        queue_capacity: numeric(opts, "queue", defaults.queue_capacity)?,
        cache_capacity: numeric(opts, "cache", defaults.cache_capacity)?,
        deadline: std::time::Duration::from_millis(numeric(
            opts,
            "deadline-ms",
            defaults.deadline.as_millis() as u64,
        )?),
        max_body_bytes: numeric(opts, "max-body", defaults.max_body_bytes)?,
        model_path: opts.get("model").cloned(),
        telemetry: true,
        access_log: opts.contains_key("access-log"),
        debug_endpoints: opts.contains_key("debug-endpoints"),
        store_path: store_root(opts),
    };
    let workers = config.workers;
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    // The scrape-friendly line CI and scripts wait for; flushed so readers
    // on a pipe see it before the first request lands.
    println!("veribug-serve listening on {addr} ({workers} workers)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()?;
    println!("veribug-serve drained and stopped");
    Ok(())
}

fn open_store(opts: &HashMap<String, String>) -> Result<store::Store, Box<dyn std::error::Error>> {
    let root = store_root(opts).ok_or(
        "no store configured: pass --store PATH or set the VERIBUG_STORE environment variable",
    )?;
    Ok(store::Store::open(root, store::env_budget()?)?)
}

fn cmd_store(opts: &HashMap<String, String>) -> CmdResult {
    let s = open_store(opts)?;
    match opts.get("action").map(String::as_str) {
        Some("ls") => {
            let rows = s.list()?;
            println!("{:<9} {:<16} {:>10} {:>8}", "kind", "key", "bytes", "age_s");
            for row in &rows {
                println!(
                    "{:<9} {:<16} {:>10} {:>8}",
                    row.kind,
                    store::hash::key_hex(row.key),
                    row.bytes,
                    row.age.as_secs()
                );
            }
            let total: u64 = rows.iter().map(|r| r.bytes).sum();
            println!(
                "{} entries, {total} bytes (budget {} bytes) in {}",
                rows.len(),
                s.budget(),
                s.root().display()
            );
        }
        Some("gc") => {
            let report = s.gc()?;
            println!(
                "evicted {} entries ({} bytes); {} bytes resident under a {}-byte budget",
                report.removed,
                report.freed,
                report.remaining_bytes,
                s.budget()
            );
        }
        Some("rm") => {
            let raw = required(opts, "key")?;
            let key = store::hash::parse_key(raw)
                .ok_or_else(|| format!("bad key `{raw}`: expected 16 lowercase hex digits"))?;
            let removed = s.remove(key)?;
            if removed == 0 {
                return Err(format!("no entry with key {raw} in any kind").into());
            }
            println!(
                "removed {removed} entr{} for {raw}",
                if removed == 1 { "y" } else { "ies" }
            );
        }
        _ => unreachable!("main validates the store action"),
    }
    Ok(())
}

fn cmd_shard_front(opts: &HashMap<String, String>) -> CmdResult {
    let mut backends: Vec<String> = opts
        .get("backends")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(ToOwned::to_owned)
                .collect()
        })
        .unwrap_or_default();
    let spawn: usize = numeric(opts, "spawn", 0)?;
    let mut children = Vec::new();
    for i in 0..spawn {
        let (child, addr) = spawn_backend(i, opts)?;
        children.push(child);
        backends.push(addr);
    }
    if backends.is_empty() {
        return Err(
            "no backends: pass --backends HOST:PORT[,HOST:PORT...] and/or --spawn N".into(),
        );
    }
    let server_defaults = ServerConfig::default();
    let config = ShardConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8081".to_owned()),
        backends,
        replicas: numeric(opts, "replicas", 64)?,
        local: ServerConfig {
            model_path: opts.get("model").cloned(),
            store_path: store_root(opts),
            ..server_defaults
        },
        ..ShardConfig::default()
    };
    let n_backends = config.backends.len();
    let front = ShardFront::bind(config)?;
    let addr = front.local_addr()?;
    println!("veribug-shard-front listening on {addr} ({n_backends} backends)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let result = front.run();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    result?;
    println!("veribug-shard-front stopped");
    Ok(())
}

/// Spawns one `veribug serve` child on an ephemeral port and returns it
/// with its bound address (scraped from the "listening on" line).
fn spawn_backend(
    index: usize,
    opts: &HashMap<String, String>,
) -> Result<(std::process::Child, String), Box<dyn std::error::Error>> {
    use std::io::BufRead as _;
    let mut cmd = std::process::Command::new(std::env::current_exe()?);
    cmd.args(["serve", "--addr", "127.0.0.1:0"]);
    if let Some(model) = opts.get("model") {
        cmd.args(["--model", model]);
    }
    if let Some(root) = store_root(opts) {
        // Each backend gets its own store subtree: consistent hashing
        // partitions designs across the fleet, so their stores partition
        // too.
        cmd.args(["--store", &format!("{root}/backend-{index}")]);
    }
    cmd.stdout(std::process::Stdio::piped());
    cmd.stderr(std::process::Stdio::null());
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            return Err(format!("backend {index} exited before reporting its address").into());
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .unwrap_or_default()
                .to_owned();
        }
    };
    // Keep draining the child's stdout so it never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok((child, addr))
}
