//! A thin consistent-hash front for a fleet of `veribug serve` backends.
//!
//! The front owns no localization logic. It reads one request, derives a
//! shard key from the design bytes (the `golden` field for
//! `/v1/localize` and `/v1/explain`, `design` for `/v1/analyze`, the raw
//! body otherwise), walks a consistent-hash ring of backends, and relays
//! the first healthy backend's response verbatim — plus an
//! `x-veribug-shard` header naming who answered. Because the key is the
//! same FNV-1a content hash the design cache uses, every request for a
//! given design lands on the same backend and each backend's LRU (and
//! persistent store) holds a clean partition of the design corpus.
//!
//! Failure handling is layered:
//!
//! 1. a background thread polls every backend's `/healthz` and flips an
//!    `AtomicBool` per backend;
//! 2. a forward that fails mid-flight marks the backend down immediately
//!    and re-routes to the next distinct backend on the ring;
//! 3. when no backend is reachable, the front answers from a private
//!    in-process [`Server`] (`x-veribug-shard: local`), so a dead fleet
//!    degrades to single-node service, not an error storm.
//!
//! Consistent hashing (`replicas` virtual nodes per backend) keeps the
//! partition stable under membership change: losing one backend of N
//! moves only ~1/N of the keyspace.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use store::hash::fnv1a;

use crate::http::{self, ReadError, Request};
use crate::server::{Server, ServerConfig, ServerHandle};

static SHARD_REQUESTS: obs::LazyCounter = obs::LazyCounter::new("shard.requests");
static SHARD_FORWARDED: obs::LazyCounter = obs::LazyCounter::new("shard.forwarded");
static SHARD_REROUTED: obs::LazyCounter = obs::LazyCounter::new("shard.rerouted");
static SHARD_LOCAL: obs::LazyCounter = obs::LazyCounter::new("shard.local_fallback");
static SHARD_BACKEND_DOWN: obs::LazyCounter = obs::LazyCounter::new("shard.backend_down");

const CONTENT_JSON: &str = "application/json";

/// Shard-front tunables.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address for the front; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend addresses (`host:port` of running `veribug serve`
    /// processes). May be empty, in which case every request is answered
    /// locally.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub replicas: usize,
    /// How often the health thread polls each backend's `/healthz`.
    pub health_interval: Duration,
    /// Connect timeout for forwards and health checks.
    pub connect_timeout: Duration,
    /// Read/write timeout on forwarded requests.
    pub io_timeout: Duration,
    /// Largest accepted request body (beyond this, `413`).
    pub max_body_bytes: usize,
    /// Configuration for the private local-fallback server (its `addr`
    /// is ignored; it always binds an ephemeral localhost port).
    pub local: ServerConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            replicas: 64,
            health_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(30),
            max_body_bytes: 4 * 1024 * 1024,
            local: ServerConfig::default(),
        }
    }
}

struct Backend {
    addr: String,
    healthy: AtomicBool,
}

struct ShardState {
    config: ShardConfig,
    backends: Vec<Backend>,
    /// `(point, backend index)` sorted by point: the consistent-hash ring.
    ring: Vec<(u64, usize)>,
    local: ServerHandle,
    shutdown: AtomicBool,
    /// Live client connections (bounds the thread-per-connection model).
    inflight: AtomicUsize,
}

/// A bound, not-yet-running shard front.
pub struct ShardFront {
    listener: TcpListener,
    state: Arc<ShardState>,
    local_thread: std::thread::JoinHandle<std::io::Result<()>>,
}

/// A cloneable remote control for a running [`ShardFront`].
#[derive(Clone)]
pub struct ShardHandle {
    state: Arc<ShardState>,
    addr: SocketAddr,
}

impl ShardHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins shutdown, equivalent to `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.local.shutdown();
    }
}

impl ShardFront {
    /// Binds the front and its private local-fallback server, builds the
    /// hash ring, and starts the health-check thread.
    ///
    /// # Errors
    ///
    /// I/O errors from binding either listener, or from the fallback
    /// server's model/store setup.
    pub fn bind(config: ShardConfig) -> std::io::Result<ShardFront> {
        obs::enable();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let mut local_config = config.local.clone();
        local_config.addr = "127.0.0.1:0".to_owned();
        let local_server = Server::bind(local_config)?;
        let local = local_server.handle();
        let local_thread = std::thread::spawn(move || local_server.run());

        let backends: Vec<Backend> = config
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                healthy: AtomicBool::new(true),
            })
            .collect();
        let mut ring = Vec::with_capacity(backends.len() * config.replicas.max(1));
        for (i, b) in backends.iter().enumerate() {
            for r in 0..config.replicas.max(1) {
                ring.push((fnv1a(format!("{}#{r}", b.addr).as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let state = Arc::new(ShardState {
            config,
            backends,
            ring,
            local,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
        });
        spawn_health_thread(Arc::clone(&state));
        Ok(ShardFront {
            listener,
            state,
            local_thread,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the front from another thread.
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read.
    pub fn handle(&self) -> ShardHandle {
        ShardHandle {
            state: Arc::clone(&self.state),
            addr: self.listener.local_addr().expect("shard front local addr"),
        }
    }

    /// Serves until shutdown is requested, then stops the local fallback
    /// server and returns. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are contained.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    if state.inflight.fetch_add(1, Ordering::SeqCst) >= 256 {
                        state.inflight.fetch_sub(1, Ordering::SeqCst);
                        let mut stream = stream;
                        let _ = http::write_response(
                            &mut stream,
                            429,
                            CONTENT_JSON,
                            &[],
                            b"{\"error\":\"overloaded\",\"detail\":\"shard front connection limit reached\"}\n",
                        );
                        continue;
                    }
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        handle_connection(&state, &mut stream);
                        state.inflight.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        self.state.local.shutdown();
        let _ = self.local_thread.join();
        Ok(())
    }
}

fn spawn_health_thread(state: Arc<ShardState>) {
    std::thread::spawn(move || {
        while !state.shutdown.load(Ordering::SeqCst) {
            for b in &state.backends {
                let up = probe_health(&b.addr, &state.config);
                b.healthy.store(up, Ordering::SeqCst);
            }
            std::thread::sleep(state.config.health_interval);
        }
    });
}

/// One `GET /healthz` round-trip; any failure means "down".
fn probe_health(addr: &str, config: &ShardConfig) -> bool {
    let Ok(mut stream) = connect(addr, config) else {
        return false;
    };
    let req = format!("GET /healthz HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    if stream.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut buf = Vec::new();
    if stream.read_to_end(&mut buf).is_err() {
        return false;
    }
    parse_status(&buf).is_some_and(|s| s == 200)
}

fn connect(addr: &str, config: &ShardConfig) -> std::io::Result<TcpStream> {
    let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address");
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, config.connect_timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(config.io_timeout))?;
                stream.set_write_timeout(Some(config.io_timeout))?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn handle_connection(state: &ShardState, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let req = match http::read_request(stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(ReadError::TooLarge { limit, declared }) => {
            let body = format!(
                "{{\"error\":\"too_large\",\"detail\":\"body of {declared} bytes exceeds the {limit}-byte limit\"}}\n"
            );
            let _ = http::write_response(stream, 413, CONTENT_JSON, &[], body.as_bytes());
            return;
        }
        Err(ReadError::BadRequest(detail)) => {
            let mut body = String::from("{\"error\":\"bad_request\",\"detail\":");
            obs::json::write_str(&mut body, &detail);
            body.push_str("}\n");
            let _ = http::write_response(stream, 400, CONTENT_JSON, &[], body.as_bytes());
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    SHARD_REQUESTS.incr();
    let rid = req
        .header("x-veribug-request-id")
        .unwrap_or_default()
        .to_owned();
    let path = req.path.split('?').next().unwrap_or("").to_owned();
    match (req.method.as_str(), path.as_str()) {
        ("GET", "/healthz") | ("GET", "/statusz") => {
            let body = front_status(state);
            let _ =
                http::write_response(stream, 200, CONTENT_JSON, &id_header(&rid), body.as_bytes());
        }
        ("GET", "/metricsz") => {
            obs::flush_thread();
            let body = obs::export::metricsz(&obs::snapshot());
            let _ =
                http::write_response(stream, 200, CONTENT_JSON, &id_header(&rid), body.as_bytes());
        }
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = http::write_response(
                stream,
                200,
                CONTENT_JSON,
                &id_header(&rid),
                b"{\"status\":\"shutting_down\"}\n",
            );
        }
        _ => route(state, &req, &rid, stream),
    }
}

fn id_header(rid: &str) -> Vec<(&'static str, &str)> {
    if rid.is_empty() {
        Vec::new()
    } else {
        vec![("x-veribug-request-id", rid)]
    }
}

/// The front's own `/healthz` / `/statusz` body: role, per-backend
/// health, ring size, and the local fallback address.
fn front_status(state: &ShardState) -> String {
    let mut out = String::from("{\"status\":\"ok\",\"role\":\"shard-front\",\"backends\":[");
    for (i, b) in state.backends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"addr\":");
        obs::json::write_str(&mut out, &b.addr);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(",\"healthy\":{}}}", b.healthy.load(Ordering::SeqCst)),
        );
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "],\"replicas\":{},\"ring_points\":{},\"local\":",
            state.config.replicas,
            state.ring.len()
        ),
    );
    obs::json::write_str(&mut out, &state.local.addr().to_string());
    out.push_str("}\n");
    out
}

/// Derives the shard key for a request: the design source the backend
/// will cache under the very same hash, so routing and cache partitioning
/// agree. Falls back to hashing the whole body for unknown shapes.
fn shard_key(req: &Request) -> u64 {
    if let Ok(text) = std::str::from_utf8(&req.body) {
        if let Ok(parsed) = obs::json::parse(text) {
            for field in ["golden", "design"] {
                if let Some(src) = parsed.get(field).and_then(|v| v.as_str()) {
                    return fnv1a(src.as_bytes());
                }
            }
        }
    }
    fnv1a(&req.body)
}

/// Backend candidate order for `key`: distinct backends in ring order
/// starting from the first point at or after the key.
fn candidates(state: &ShardState, key: u64) -> Vec<usize> {
    let mut order = Vec::new();
    if state.ring.is_empty() {
        return order;
    }
    let start = state.ring.partition_point(|&(p, _)| p < key) % state.ring.len();
    for off in 0..state.ring.len() {
        let (_, idx) = state.ring[(start + off) % state.ring.len()];
        if !order.contains(&idx) {
            order.push(idx);
            if order.len() == state.backends.len() {
                break;
            }
        }
    }
    order
}

fn route(state: &ShardState, req: &Request, rid: &str, stream: &mut TcpStream) {
    let key = shard_key(req);
    let order = candidates(state, key);
    let mut rerouted = false;
    for (nth, idx) in order.iter().enumerate() {
        let backend = &state.backends[*idx];
        if !backend.healthy.load(Ordering::SeqCst) {
            rerouted = true;
            continue;
        }
        match forward(&backend.addr, req, rid, &state.config) {
            Ok((status, content_type, body)) => {
                SHARD_FORWARDED.incr();
                if nth > 0 || rerouted {
                    SHARD_REROUTED.incr();
                }
                respond_as_shard(stream, status, &content_type, rid, &backend.addr, &body);
                return;
            }
            Err(_) => {
                // Mark down now; the health thread will bring it back.
                backend.healthy.store(false, Ordering::SeqCst);
                SHARD_BACKEND_DOWN.incr();
                rerouted = true;
            }
        }
    }
    // No backend answered: serve from the private local server.
    SHARD_LOCAL.incr();
    match forward(&state.local.addr().to_string(), req, rid, &state.config) {
        Ok((status, content_type, body)) => {
            respond_as_shard(stream, status, &content_type, rid, "local", &body);
        }
        Err(_) => {
            let _ = http::write_response(
                stream,
                503,
                CONTENT_JSON,
                &id_header(rid),
                b"{\"error\":\"unavailable\",\"detail\":\"no backend reachable and local fallback failed\"}\n",
            );
        }
    }
}

fn respond_as_shard(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    rid: &str,
    shard: &str,
    body: &[u8],
) {
    let mut headers: Vec<(&str, &str)> = vec![("x-veribug-shard", shard)];
    if !rid.is_empty() {
        headers.push(("x-veribug-request-id", rid));
    }
    let _ = http::write_response(stream, status, content_type, &headers, body);
}

/// Relays one request to `addr` and returns `(status, content-type,
/// body)`. The backend speaks `Connection: close`, so the body is
/// everything after the header block.
fn forward(
    addr: &str,
    req: &Request,
    rid: &str,
    config: &ShardConfig,
) -> std::io::Result<(u16, String, Vec<u8>)> {
    let mut stream = connect(addr, config)?;
    let mut head = format!(
        "{} {} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\ncontent-length: {}\r\n",
        req.method,
        req.path,
        req.body.len()
    );
    if let Some(ct) = req.header("content-type") {
        head.push_str(&format!("content-type: {ct}\r\n"));
    } else if !req.body.is_empty() {
        head.push_str("content-type: application/json\r\n");
    }
    if !rid.is_empty() {
        head.push_str(&format!("x-veribug-request-id: {rid}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = find_header_end(&raw).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "backend response has no header block",
        )
    })?;
    let status = parse_status(&raw).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "backend response has no status line",
        )
    })?;
    let head_text = String::from_utf8_lossy(&raw[..header_end]);
    let content_type = head_text
        .lines()
        .skip(1)
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-type")
                .then(|| value.trim().to_owned())
        })
        .unwrap_or_else(|| CONTENT_JSON.to_owned());
    Ok((status, content_type, raw[header_end..].to_vec()))
}

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_status(raw: &[u8]) -> Option<u16> {
    let line_end = raw.iter().position(|&b| b == b'\r')?;
    let line = std::str::from_utf8(&raw[..line_end]).ok()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(backends: &[&str], replicas: usize) -> Arc<ShardState> {
        // Build the pieces `candidates` and `shard_key` need without
        // binding sockets: a ring plus backend slots.
        let backends: Vec<Backend> = backends
            .iter()
            .map(|a| Backend {
                addr: (*a).to_owned(),
                healthy: AtomicBool::new(true),
            })
            .collect();
        let mut ring = Vec::new();
        for (i, b) in backends.iter().enumerate() {
            for r in 0..replicas {
                ring.push((fnv1a(format!("{}#{r}", b.addr).as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let local_cfg = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let server = Server::bind(local_cfg).unwrap();
        let local = server.handle();
        local.shutdown();
        let _ = std::thread::spawn(move || server.run());
        Arc::new(ShardState {
            config: ShardConfig::default(),
            backends,
            ring,
            local,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
        })
    }

    #[test]
    fn candidate_order_is_stable_and_covers_all_backends() {
        let state = state_with(&["a:1", "b:2", "c:3"], 64);
        for key in [0u64, 1, u64::MAX, fnv1a(b"some design")] {
            let order = candidates(&state, key);
            assert_eq!(order.len(), 3, "every backend appears once");
            assert_eq!(order, candidates(&state, key), "deterministic");
        }
    }

    #[test]
    fn ring_distributes_keys_across_backends() {
        let state = state_with(&["a:1", "b:2", "c:3"], 64);
        let mut counts = [0usize; 3];
        for i in 0..600u64 {
            let key = fnv1a(format!("design-{i}").as_bytes());
            counts[candidates(&state, key)[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 60, "backend {i} owns a real share, got {c}/600");
        }
    }

    #[test]
    fn losing_a_backend_only_moves_its_own_keys() {
        let full = state_with(&["a:1", "b:2", "c:3"], 64);
        let reduced = state_with(&["a:1", "b:2"], 64);
        for i in 0..300u64 {
            let key = fnv1a(format!("design-{i}").as_bytes());
            let owner = candidates(&full, key)[0];
            if owner != 2 {
                let still = candidates(&reduced, key)[0];
                assert_eq!(
                    full.backends[owner].addr, reduced.backends[still].addr,
                    "keys not owned by the removed backend stay put"
                );
            }
        }
    }

    #[test]
    fn shard_key_prefers_design_fields_over_raw_body() {
        let req = |body: &str| Request {
            method: "POST".to_owned(),
            path: "/v1/localize".to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let a = req("{\"golden\":\"module m; endmodule\",\"buggy\":\"x\",\"target\":\"t\"}");
        let b = req("{\"golden\":\"module m; endmodule\",\"buggy\":\"y\",\"target\":\"t\"}");
        assert_eq!(
            shard_key(&a),
            shard_key(&b),
            "same golden design routes identically regardless of other fields"
        );
        assert_eq!(shard_key(&a), fnv1a(b"module m; endmodule"));
        let raw = req("not json at all");
        assert_eq!(shard_key(&raw), fnv1a(b"not json at all"));
    }
}
