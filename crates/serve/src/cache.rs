//! A content-addressed LRU cache of parsed, elaborated, compiled designs.
//!
//! Keys are the FNV-1a hash of the Verilog source text, so two requests
//! carrying the same bytes share one parse → levelize → compile. A hit
//! costs one [`sim::Simulator::fork`] — the compiled bytecode is behind an
//! `Arc` and only the mutable evaluation state is reallocated. Eviction is
//! least-recently-used under a single mutex; builds happen *outside* the
//! lock so a slow compile never blocks hits on other designs.
//!
//! Failures (parse or elaboration errors) are not cached: they are cheap
//! to reproduce and the offending source is unlikely to repeat.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sim::Simulator;
use store::{ArtifactKind, Store};
use verilog::Module;

/// The cache key function, re-exported from the workspace's single
/// FNV-1a implementation ([`store::hash`]).
pub use store::hash::fnv1a;

static CACHE_HITS: obs::LazyCounter = obs::LazyCounter::new("serve.cache.hits");
static CACHE_MISSES: obs::LazyCounter = obs::LazyCounter::new("serve.cache.misses");
static CACHE_EVICTIONS: obs::LazyCounter = obs::LazyCounter::new("serve.cache.evictions");

/// Why a design could not enter the cache.
#[derive(Debug)]
pub enum BuildError {
    /// The source failed to parse (carries line/column via
    /// [`verilog::ParseError::span`]).
    Parse(verilog::ParseError),
    /// The design parsed but elaboration/compilation failed.
    Elab(sim::SimError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Elab(e) => write!(f, "{e}"),
        }
    }
}

/// What a cache lookup hands back.
#[derive(Debug)]
pub struct CachedDesign {
    /// The parsed module.
    pub module: Arc<Module>,
    /// A private simulator forked off the cached template: shares the
    /// compiled bytecode, owns its evaluation state.
    pub sim: Simulator,
    /// True when the compiled design was already cached.
    pub hit: bool,
}

struct Entry {
    module: Arc<Module>,
    template: Simulator,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// The cache itself. Cheap to share behind an `Arc`.
pub struct DesignCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    /// Optional persistent backing: successful builds write their source
    /// through ([`ArtifactKind::Design`], keyed by the same FNV hash), and
    /// [`preload`](DesignCache::preload) compiles stored sources back into
    /// the LRU so a restarted server answers its first request warm.
    store: Option<Arc<Store>>,
}

impl DesignCache {
    /// A cache holding at most `capacity` compiled designs (min 1).
    pub fn new(capacity: usize) -> DesignCache {
        DesignCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
            }),
            store: None,
        }
    }

    /// A cache that writes successful builds through to `store` and can
    /// [`preload`](DesignCache::preload) from it.
    pub fn with_store(capacity: usize, store: Arc<Store>) -> DesignCache {
        let mut cache = DesignCache::new(capacity);
        cache.store = Some(store);
        cache
    }

    /// Compiles sources persisted in the backing store into the in-memory
    /// LRU, most recently used first, up to capacity. Returns how many
    /// designs were loaded. Entries that fail verification or no longer
    /// parse are skipped — a stale store degrades to a cold cache, never
    /// an error. A no-op without a store.
    pub fn preload(&self) -> usize {
        let Some(store) = &self.store else {
            return 0;
        };
        let mut designs: Vec<store::EntryInfo> = match store.list() {
            Ok(all) => all
                .into_iter()
                .filter(|e| e.kind == ArtifactKind::Design)
                .collect(),
            Err(_) => return 0,
        };
        // Newest first, so when the store holds more designs than the LRU
        // fits, the ones evicted here are the ones least recently served.
        designs.sort_by(|a, b| b.modified.cmp(&a.modified).then(a.key.cmp(&b.key)));
        designs.truncate(self.capacity);
        // Insert oldest-first so the in-memory recency order mirrors the
        // store's: the newest stored design gets the highest tick.
        designs.reverse();
        let mut loaded = 0;
        for entry in designs {
            let Some(bytes) = store.get(ArtifactKind::Design, entry.key) else {
                continue;
            };
            let Ok(source) = String::from_utf8(bytes) else {
                continue;
            };
            // Stored under the content hash, so the key recomputes from
            // the payload; anything inconsistent was already rejected by
            // the store's checksum.
            let Ok(parsed) = verilog::parse(&source) else {
                continue;
            };
            let module = Arc::new(parsed.top().clone());
            let Ok(template) = Simulator::new(&module) else {
                continue;
            };
            let mut c = self.inner.lock().expect("design cache lock");
            c.tick += 1;
            let tick = c.tick;
            if c.entries.len() < self.capacity {
                c.entries.entry(entry.key).or_insert(Entry {
                    module,
                    template,
                    last_used: tick,
                });
                loaded += 1;
            }
        }
        loaded
    }

    /// Looks up `source`, building (and caching) on a miss.
    ///
    /// # Errors
    ///
    /// [`BuildError::Parse`] / [`BuildError::Elab`] when the source is
    /// unusable; errors are never cached.
    pub fn get(&self, source: &str) -> Result<CachedDesign, BuildError> {
        let key = fnv1a(source.as_bytes());
        {
            let mut c = self.inner.lock().expect("design cache lock");
            c.tick += 1;
            let tick = c.tick;
            if let Some(e) = c.entries.get_mut(&key) {
                e.last_used = tick;
                CACHE_HITS.incr();
                return Ok(CachedDesign {
                    module: Arc::clone(&e.module),
                    sim: e.template.fork(),
                    hit: true,
                });
            }
        }
        CACHE_MISSES.incr();
        let module = Arc::new(
            verilog::parse(source)
                .map_err(BuildError::Parse)?
                .top()
                .clone(),
        );
        let template = Simulator::new(&module).map_err(BuildError::Elab)?;
        let sim = template.fork();
        // Write the source through to the persistent store (outside the
        // lock; a full disk must not take down the serving path).
        if let Some(store) = &self.store {
            let _ = store.put(ArtifactKind::Design, key, source.as_bytes());
        }
        let mut c = self.inner.lock().expect("design cache lock");
        c.tick += 1;
        let tick = c.tick;
        if !c.entries.contains_key(&key) && c.entries.len() >= self.capacity {
            let lru = c
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            if let Some(lru) = lru {
                c.entries.remove(&lru);
                CACHE_EVICTIONS.incr();
            }
        }
        c.entries.insert(
            key,
            Entry {
                module: Arc::clone(&module),
                template,
                last_used: tick,
            },
        );
        Ok(CachedDesign {
            module,
            sim,
            hit: false,
        })
    }

    /// Number of designs currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("design cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The persistent store backing this cache, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "module a(input x, input y, output z);\nassign z = x & y;\nendmodule";
    const SRC_B: &str = "module b(input x, input y, output z);\nassign z = x | y;\nendmodule";
    const SRC_C: &str = "module c(input x, output z);\nassign z = !x;\nendmodule";

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = DesignCache::new(4);
        let first = cache.get(SRC_A).unwrap();
        assert!(!first.hit);
        let second = cache.get(SRC_A).unwrap();
        assert!(second.hit);
        assert_eq!(first.module.name, second.module.name);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn forked_sims_are_independent_and_equivalent() {
        let cache = DesignCache::new(4);
        let mut cold = cache.get(SRC_A).unwrap();
        let mut warm = cache.get(SRC_A).unwrap();
        let stim = sim::TestbenchGen::new(7).generate(cold.sim.netlist(), 8);
        let t1 = cold.sim.run(&stim).unwrap();
        let t2 = warm.sim.run(&stim).unwrap();
        assert_eq!(t1, t2, "cold and cached forks simulate identically");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = DesignCache::new(2);
        cache.get(SRC_A).unwrap();
        cache.get(SRC_B).unwrap();
        cache.get(SRC_A).unwrap(); // refresh A; B is now LRU
        cache.get(SRC_C).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        assert!(cache.get(SRC_A).unwrap().hit, "A survived");
        assert!(!cache.get(SRC_B).unwrap().hit, "B was evicted");
    }

    #[test]
    fn parse_errors_are_typed_and_not_cached() {
        let cache = DesignCache::new(4);
        let err = cache.get("module broken(").unwrap_err();
        assert!(matches!(err, BuildError::Parse(_)));
        assert_eq!(cache.len(), 0);
        let again = cache.get("module broken(").unwrap_err();
        assert!(matches!(again, BuildError::Parse(_)));
    }

    #[test]
    fn write_through_and_preload_warm_a_fresh_cache() {
        let root =
            std::env::temp_dir().join(format!("veribug-serve-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(Store::open(&root, store::DEFAULT_BUDGET).unwrap());

        let first = DesignCache::with_store(4, Arc::clone(&store));
        assert!(!first.get(SRC_A).unwrap().hit);
        assert!(!first.get(SRC_B).unwrap().hit);
        assert_eq!(store.stats().writes, 2, "misses write sources through");

        // A fresh cache over the same store — a restarted process — is
        // warm after preload: the first lookup is already a hit.
        let second = DesignCache::with_store(4, Arc::clone(&store));
        assert_eq!(second.preload(), 2);
        assert!(second.get(SRC_A).unwrap().hit);
        assert!(second.get(SRC_B).unwrap().hit);

        // Preload respects capacity.
        let tiny = DesignCache::with_store(1, Arc::clone(&store));
        assert_eq!(tiny.preload(), 1);
        assert_eq!(tiny.len(), 1);

        // A corrupted stored source degrades to a cold entry, not an
        // error.
        let key = fnv1a(SRC_A.as_bytes());
        std::fs::write(store.entry_path(ArtifactKind::Design, key), b"garbage").unwrap();
        let third = DesignCache::with_store(4, Arc::clone(&store));
        assert_eq!(third.preload(), 1, "only the intact design loads");
        assert!(!third.get(SRC_A).unwrap().hit);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(SRC_A.as_bytes()), fnv1a(SRC_B.as_bytes()));
        assert_eq!(fnv1a(SRC_A.as_bytes()), fnv1a(SRC_A.as_bytes()));
    }
}
