//! A content-addressed LRU cache of parsed, elaborated, compiled designs.
//!
//! Keys are the FNV-1a hash of the Verilog source text, so two requests
//! carrying the same bytes share one parse → levelize → compile. A hit
//! costs one [`sim::Simulator::fork`] — the compiled bytecode is behind an
//! `Arc` and only the mutable evaluation state is reallocated. Eviction is
//! least-recently-used under a single mutex; builds happen *outside* the
//! lock so a slow compile never blocks hits on other designs.
//!
//! Failures (parse or elaboration errors) are not cached: they are cheap
//! to reproduce and the offending source is unlikely to repeat.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sim::Simulator;
use verilog::Module;

static CACHE_HITS: obs::LazyCounter = obs::LazyCounter::new("serve.cache.hits");
static CACHE_MISSES: obs::LazyCounter = obs::LazyCounter::new("serve.cache.misses");
static CACHE_EVICTIONS: obs::LazyCounter = obs::LazyCounter::new("serve.cache.evictions");

/// FNV-1a over `bytes` (the 64-bit variant).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a design could not enter the cache.
#[derive(Debug)]
pub enum BuildError {
    /// The source failed to parse (carries line/column via
    /// [`verilog::ParseError::span`]).
    Parse(verilog::ParseError),
    /// The design parsed but elaboration/compilation failed.
    Elab(sim::SimError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Elab(e) => write!(f, "{e}"),
        }
    }
}

/// What a cache lookup hands back.
#[derive(Debug)]
pub struct CachedDesign {
    /// The parsed module.
    pub module: Arc<Module>,
    /// A private simulator forked off the cached template: shares the
    /// compiled bytecode, owns its evaluation state.
    pub sim: Simulator,
    /// True when the compiled design was already cached.
    pub hit: bool,
}

struct Entry {
    module: Arc<Module>,
    template: Simulator,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// The cache itself. Cheap to share behind an `Arc`.
pub struct DesignCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl DesignCache {
    /// A cache holding at most `capacity` compiled designs (min 1).
    pub fn new(capacity: usize) -> DesignCache {
        DesignCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Looks up `source`, building (and caching) on a miss.
    ///
    /// # Errors
    ///
    /// [`BuildError::Parse`] / [`BuildError::Elab`] when the source is
    /// unusable; errors are never cached.
    pub fn get(&self, source: &str) -> Result<CachedDesign, BuildError> {
        let key = fnv1a(source.as_bytes());
        {
            let mut c = self.inner.lock().expect("design cache lock");
            c.tick += 1;
            let tick = c.tick;
            if let Some(e) = c.entries.get_mut(&key) {
                e.last_used = tick;
                CACHE_HITS.incr();
                return Ok(CachedDesign {
                    module: Arc::clone(&e.module),
                    sim: e.template.fork(),
                    hit: true,
                });
            }
        }
        CACHE_MISSES.incr();
        let module = Arc::new(
            verilog::parse(source)
                .map_err(BuildError::Parse)?
                .top()
                .clone(),
        );
        let template = Simulator::new(&module).map_err(BuildError::Elab)?;
        let sim = template.fork();
        let mut c = self.inner.lock().expect("design cache lock");
        c.tick += 1;
        let tick = c.tick;
        if !c.entries.contains_key(&key) && c.entries.len() >= self.capacity {
            let lru = c
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            if let Some(lru) = lru {
                c.entries.remove(&lru);
                CACHE_EVICTIONS.incr();
            }
        }
        c.entries.insert(
            key,
            Entry {
                module: Arc::clone(&module),
                template,
                last_used: tick,
            },
        );
        Ok(CachedDesign {
            module,
            sim,
            hit: false,
        })
    }

    /// Number of designs currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("design cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "module a(input x, input y, output z);\nassign z = x & y;\nendmodule";
    const SRC_B: &str = "module b(input x, input y, output z);\nassign z = x | y;\nendmodule";
    const SRC_C: &str = "module c(input x, output z);\nassign z = !x;\nendmodule";

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = DesignCache::new(4);
        let first = cache.get(SRC_A).unwrap();
        assert!(!first.hit);
        let second = cache.get(SRC_A).unwrap();
        assert!(second.hit);
        assert_eq!(first.module.name, second.module.name);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn forked_sims_are_independent_and_equivalent() {
        let cache = DesignCache::new(4);
        let mut cold = cache.get(SRC_A).unwrap();
        let mut warm = cache.get(SRC_A).unwrap();
        let stim = sim::TestbenchGen::new(7).generate(cold.sim.netlist(), 8);
        let t1 = cold.sim.run(&stim).unwrap();
        let t2 = warm.sim.run(&stim).unwrap();
        assert_eq!(t1, t2, "cold and cached forks simulate identically");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = DesignCache::new(2);
        cache.get(SRC_A).unwrap();
        cache.get(SRC_B).unwrap();
        cache.get(SRC_A).unwrap(); // refresh A; B is now LRU
        cache.get(SRC_C).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        assert!(cache.get(SRC_A).unwrap().hit, "A survived");
        assert!(!cache.get(SRC_B).unwrap().hit, "B was evicted");
    }

    #[test]
    fn parse_errors_are_typed_and_not_cached() {
        let cache = DesignCache::new(4);
        let err = cache.get("module broken(").unwrap_err();
        assert!(matches!(err, BuildError::Parse(_)));
        assert_eq!(cache.len(), 0);
        let again = cache.get("module broken(").unwrap_err();
        assert!(matches!(again, BuildError::Parse(_)));
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(SRC_A.as_bytes()), fnv1a(SRC_B.as_bytes()));
        assert_eq!(fnv1a(SRC_A.as_bytes()), fnv1a(SRC_A.as_bytes()));
    }
}
