//! A bounded worker pool with backpressure and drain-on-shutdown.
//!
//! Jobs queue in a bounded `VecDeque` behind a mutex + condvar. When the
//! queue is full, [`Pool::submit`] refuses immediately — the accept loop
//! turns that into a `429` instead of letting latency grow without bound.
//! Workers run each job under `catch_unwind`, so a panicking request can
//! never kill a worker thread. [`Pool::shutdown`] closes the queue, lets
//! the workers finish everything already queued or running, and joins
//! them — the drain the graceful-shutdown path relies on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

static POOL_PANICS: obs::LazyCounter = obs::LazyCounter::new("serve.pool.panics");

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; try again later (HTTP `429`).
    Full,
    /// The pool is shutting down and accepts no new work (HTTP `503`).
    Closed,
}

struct Queue {
    jobs: VecDeque<Job>,
    open: bool,
    running: usize,
}

struct Inner {
    queue: Mutex<Queue>,
    cond: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded job queue.
pub struct Pool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawns `workers` threads (min 1) serving a queue of `queue_capacity`
    /// pending jobs (min 1, not counting jobs already running).
    pub fn new(workers: usize, queue_capacity: usize) -> Pool {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
                running: 0,
            }),
            cond: Condvar::new(),
            capacity: queue_capacity.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("veribug-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a job, refusing when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// [`shutdown`](Pool::shutdown) started.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        {
            let mut q = self.inner.queue.lock().expect("pool queue lock");
            if !q.open {
                return Err(SubmitError::Closed);
            }
            if q.jobs.len() >= self.inner.capacity {
                return Err(SubmitError::Full);
            }
            q.jobs.push_back(Box::new(job));
        }
        self.inner.cond.notify_one();
        Ok(())
    }

    /// `(queued, running)` occupancy right now.
    pub fn depth(&self) -> (usize, usize) {
        let q = self.inner.queue.lock().expect("pool queue lock");
        (q.jobs.len(), q.running)
    }

    /// True when a [`submit`](Pool::submit) right now would return
    /// [`SubmitError::Full`].
    pub fn is_full(&self) -> bool {
        let q = self.inner.queue.lock().expect("pool queue lock");
        q.jobs.len() >= self.inner.capacity
    }

    /// The queue capacity the pool was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Closes the queue, waits for every queued and in-flight job to
    /// finish, and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue lock");
            q.open = false;
        }
        self.inner.cond.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("pool workers lock"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("pool queue lock");
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    q.running += 1;
                    break j;
                }
                if !q.open {
                    return;
                }
                q = inner.cond.wait(q).expect("pool queue wait");
            }
        };
        // The job does its own error handling; this is the backstop that
        // keeps the worker alive when even that handling panics.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            POOL_PANICS.incr();
        }
        inner.queue.lock().expect("pool queue lock").running -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = Pool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn full_queue_refuses() {
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        // Wait until the blocker is *running*, then fill the single slot.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocker started");
        pool.submit(|| {}).unwrap();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Full));
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(1, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10, "every queued job ran");
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Closed));
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = Pool::new(1, 8);
        pool.submit(|| panic!("request blew up")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }
}
