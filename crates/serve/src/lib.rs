//! # veribug-serve
//!
//! A zero-dependency HTTP/1.1 bug-localization service built on
//! `std::net::TcpListener`. The server exposes the same localization
//! pipeline as the `veribug localize` CLI command (both call
//! [`veribug::localize`]), wrapped in the machinery a long-running process
//! needs:
//!
//! - a **bounded worker pool** ([`pool`]) fed by a bounded queue —
//!   saturation answers `429` instead of queueing unboundedly;
//! - a **content-addressed LRU cache** ([`cache`]) of parsed, elaborated,
//!   and compiled designs — repeat requests skip parse → levelize →
//!   compile and fork the cached bytecode instead;
//! - **per-request deadlines** via [`sim::CancelToken`], threaded into the
//!   simulator's cycle loop — an expired deadline answers `504` and
//!   discards partial work;
//! - **request isolation** — malformed JSON answers `400`, Verilog parse
//!   errors `422` (with line/column), oversized bodies `413`, and a
//!   panicking handler answers `500` without taking down the listener;
//! - **graceful shutdown** — `POST /v1/shutdown` stops the accept loop,
//!   drains queued and in-flight requests, then returns from
//!   [`server::Server::run`];
//! - **live request telemetry** — every request gets a trace ID (honored
//!   from `x-veribug-request-id` or minted), echoed on every response and
//!   attached to error bodies; completed requests are tail-sampled into an
//!   in-memory ring of span trees and folded into rolling per-endpoint
//!   windows, served by the `/tracez` and `/statusz` debug pages
//!   ([`telemetry`]);
//! - **warm restarts** — with a persistent `veribug-store` root
//!   configured, the design cache writes sources through to disk and a
//!   restarted server precompiles them before accepting traffic, so the
//!   first request after a restart is already a cache hit;
//! - **horizontal scale** — [`shard`] is a thin front that
//!   consistent-hashes design bytes across N backends with health-checked
//!   failover, so each backend's cache (and store) holds a clean
//!   partition of the corpus.
//!
//! ## Endpoints
//!
//! | Route                 | Meaning                                           |
//! |-----------------------|---------------------------------------------------|
//! | `POST /v1/localize`   | golden+buggy source → ranked suspect statements   |
//! | `POST /v1/analyze`    | design source → dependencies, slice, COI summary  |
//! | `GET /healthz`        | liveness + build info + pool/cache occupancy      |
//! | `GET /metricsz`       | `veribug-obs` counters/gauges/histograms as JSON  |
//! | `GET /statusz`        | rolling per-endpoint latency/status/stage window  |
//! | `GET /tracez`         | recent tail-sampled traces (`?n=`, `&fmt=text`)   |
//! | `GET /tracez/export`  | one trace (`?id=`) as a Perfetto chrome-trace     |
//! | `POST /v1/shutdown`   | begin graceful drain                              |
//!
//! Responses are deterministic: two identical `/v1/localize` requests
//! produce byte-identical bodies whether they hit the design cache or not
//! (cache status travels in the `x-veribug-cache` response *header*, and
//! the request ID in `x-veribug-request-id` — never a 200 body).

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod pool;
pub mod server;
pub mod shard;
pub mod telemetry;

pub use cache::DesignCache;
pub use pool::{Pool, SubmitError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::{ShardConfig, ShardFront, ShardHandle};
