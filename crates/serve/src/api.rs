//! Request/response bodies for the service, hand-rendered over
//! [`obs::json`].
//!
//! Rendering is deliberately deterministic: field order is fixed in code,
//! numbers go through [`obs::json::write_f64`], and nothing
//! request-varying (timestamps, cache state) enters a body — so identical
//! requests produce byte-identical responses, which the integration suite
//! and `serve_bench --smoke` assert.

use obs::json::{self, Json};
use veribug::{LocalizeOptions, LocalizeReport};

/// A structured error answer; rendered as
/// `{"error":{"status":...,"kind":...,"message":...[,"line":...,"col":...][,"request_id":...]}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status to answer with.
    pub status: u16,
    /// A stable machine-readable discriminator (`bad_json`,
    /// `verilog_parse`, `queue_full`, `deadline`, ...).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// 1-based source line for Verilog parse errors.
    pub line: Option<u32>,
    /// 1-based source column for Verilog parse errors.
    pub col: Option<u32>,
    /// The request ID (also echoed in `x-veribug-request-id`), so a client
    /// can correlate an error with its `/tracez` entry.
    pub request_id: Option<String>,
}

impl ApiError {
    /// An error without source position.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            message: message.into(),
            line: None,
            col: None,
            request_id: None,
        }
    }

    /// Attaches a Verilog source position.
    pub fn at(mut self, span: verilog::Span) -> ApiError {
        self.line = Some(span.line);
        self.col = Some(span.col);
        self
    }

    /// Attaches the request ID for `/tracez` correlation.
    pub fn with_request_id(mut self, id: impl Into<String>) -> ApiError {
        self.request_id = Some(id.into());
        self
    }

    /// The JSON body.
    pub fn body(&self) -> String {
        let mut out = String::from("{\"error\":{\"status\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.status));
        out.push_str(",\"kind\":");
        json::write_str(&mut out, self.kind);
        out.push_str(",\"message\":");
        json::write_str(&mut out, &self.message);
        if let Some(line) = self.line {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"line\":{line}"));
        }
        if let Some(col) = self.col {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"col\":{col}"));
        }
        if let Some(id) = &self.request_id {
            out.push_str(",\"request_id\":");
            json::write_str(&mut out, id);
        }
        out.push_str("}}\n");
        out
    }
}

/// A parsed `/v1/localize` request body.
#[derive(Debug, Clone)]
pub struct LocalizeRequest {
    /// Golden (reference) Verilog source.
    pub golden: String,
    /// Buggy Verilog source.
    pub buggy: String,
    /// The output signal to localize against.
    pub target: String,
    /// Localization knobs (defaults match the CLI).
    pub opts: LocalizeOptions,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A parsed `/v1/analyze` request body.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// The Verilog source to analyze.
    pub design: String,
    /// The target signal.
    pub target: String,
    /// Cone-of-influence unroll depth.
    pub depth: u32,
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_json", "request body is not utf-8"))?;
    json::parse(text).map_err(|e| ApiError::new(400, "bad_json", e))
}

fn str_field(obj: &Json, key: &str) -> Result<String, ApiError> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ApiError::new(
            400,
            "bad_field",
            format!("field `{key}` must be a string"),
        )),
        None => Err(ApiError::new(
            400,
            "missing_field",
            format!("missing required field `{key}`"),
        )),
    }
}

fn num_field(obj: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(ApiError::new(
            400,
            "bad_field",
            format!("field `{key}` must be a number"),
        )),
    }
}

fn usize_field(obj: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match num_field(obj, key)? {
        None => Ok(default),
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
        Some(_) => Err(ApiError::new(
            400,
            "bad_field",
            format!("field `{key}` must be a non-negative integer"),
        )),
    }
}

/// Parses a `/v1/localize` body.
///
/// # Errors
///
/// `400` [`ApiError`]s for malformed JSON, missing required fields, or
/// wrongly-typed options.
pub fn parse_localize(body: &[u8]) -> Result<LocalizeRequest, ApiError> {
    let doc = parse_body(body)?;
    if doc.as_obj().is_none() {
        return Err(ApiError::new(400, "bad_json", "body must be a JSON object"));
    }
    let golden = str_field(&doc, "golden")?;
    let buggy = str_field(&doc, "buggy")?;
    let target = str_field(&doc, "target")?;
    let mut opts = LocalizeOptions::default();
    let mut deadline_ms = None;
    if let Some(o) = doc.get("options") {
        if o.as_obj().is_none() {
            return Err(ApiError::new(
                400,
                "bad_field",
                "`options` must be an object",
            ));
        }
        opts.runs = usize_field(o, "runs", opts.runs)?;
        opts.cycles = usize_field(o, "cycles", opts.cycles)?;
        opts.run_groups = usize_field(o, "run_groups", opts.run_groups)?;
        if let Some(t) = num_field(o, "threshold")? {
            opts.threshold = t as f32;
        }
        if let Some(s) = num_field(o, "stim_seed")? {
            opts.stim_seed = s as u64;
        }
        if let Some(h) = num_field(o, "hold_probability")? {
            opts.hold_probability = h;
        }
        if let Some(d) = num_field(o, "deadline_ms")? {
            deadline_ms = Some(d as u64);
        }
    }
    Ok(LocalizeRequest {
        golden,
        buggy,
        target,
        opts,
        deadline_ms,
    })
}

/// Parses a `/v1/explain` body — the same shape as `/v1/localize`: the
/// endpoint runs the identical pipeline and differs only in what it
/// renders (per-operand attention attributions instead of the suspect
/// list).
///
/// # Errors
///
/// As [`parse_localize`].
pub fn parse_explain(body: &[u8]) -> Result<LocalizeRequest, ApiError> {
    parse_localize(body)
}

/// Parses a `/v1/analyze` body.
///
/// # Errors
///
/// As [`parse_localize`].
pub fn parse_analyze(body: &[u8]) -> Result<AnalyzeRequest, ApiError> {
    let doc = parse_body(body)?;
    if doc.as_obj().is_none() {
        return Err(ApiError::new(400, "bad_json", "body must be a JSON object"));
    }
    Ok(AnalyzeRequest {
        design: str_field(&doc, "design")?,
        target: str_field(&doc, "target")?,
        depth: usize_field(&doc, "depth", 8)?.min(u32::MAX as usize) as u32,
    })
}

/// Renders a [`LocalizeReport`] as the `/v1/localize` 200 body.
pub fn render_report(report: &LocalizeReport) -> String {
    let mut out = String::from("{\"module\":");
    json::write_str(&mut out, &report.module);
    out.push_str(",\"target\":");
    json::write_str(&mut out, &report.target);
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            ",\"total_runs\":{},\"failing_runs\":{},\"threshold\":",
            report.total_runs, report.failing_runs
        ),
    );
    json::write_f64(&mut out, f64::from(report.threshold));
    out.push_str(",\"engine\":");
    json::write_str(
        &mut out,
        match report.engine {
            sim::EngineKind::Batch => "batch",
            sim::EngineKind::Compiled => "compiled",
            sim::EngineKind::Interpreted => "interpreted",
        },
    );
    out.push_str(",\"suspects\":[");
    for (i, s) in report.suspects.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"stmt\":");
        json::write_str(&mut out, &s.stmt.to_string());
        out.push_str(",\"suspiciousness\":");
        json::write_f64(&mut out, f64::from(s.suspiciousness));
        out.push_str(",\"source\":");
        json::write_str(&mut out, &s.source);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localize_request_round_trips() {
        let body = br#"{"golden":"module g; endmodule","buggy":"module b; endmodule",
                        "target":"y","options":{"runs":8,"cycles":4,"threshold":0.5,
                        "deadline_ms":250}}"#;
        let req = parse_localize(body).unwrap();
        assert_eq!(req.target, "y");
        assert_eq!(req.opts.runs, 8);
        assert_eq!(req.opts.cycles, 4);
        assert!((req.opts.threshold - 0.5).abs() < 1e-6);
        assert_eq!(req.deadline_ms, Some(250));
        // Unspecified options keep the CLI defaults.
        assert_eq!(req.opts.stim_seed, LocalizeOptions::default().stim_seed);
    }

    #[test]
    fn missing_field_is_400() {
        let err = parse_localize(br#"{"golden":"x","buggy":"y"}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "missing_field");
        assert!(err.message.contains("target"));
    }

    #[test]
    fn malformed_json_is_400() {
        let err = parse_localize(b"{not json").unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "bad_json");
    }

    #[test]
    fn bad_option_type_is_400() {
        let err =
            parse_localize(br#"{"golden":"g","buggy":"b","target":"y","options":{"runs":"ten"}}"#)
                .unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "bad_field");
    }

    #[test]
    fn error_body_parses_back() {
        let e = ApiError::new(422, "verilog_parse", "unexpected token")
            .at(verilog::Span { line: 3, col: 7 });
        let doc = obs::json::parse(&e.body()).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("status").unwrap().as_num(), Some(422.0));
        assert_eq!(err.get("kind").unwrap().as_str(), Some("verilog_parse"));
        assert_eq!(err.get("line").unwrap().as_num(), Some(3.0));
        assert_eq!(err.get("col").unwrap().as_num(), Some(7.0));
    }
}
