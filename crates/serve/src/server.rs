//! The accept loop, router, and request lifecycle.
//!
//! One thread accepts connections and hands each to the bounded
//! [`Pool`](crate::pool::Pool); backpressure (queue full) is answered with
//! `429` directly from the accept loop. Workers read the request, route
//! it, and write exactly one response. Every request runs under a
//! `serve.request` span with per-stage child spans (`elaborate`,
//! `simulate`, `campaign`, `explain` come from the localize pipeline
//! itself), a panic inside a handler answers `500` without killing the
//! worker, and a fired deadline answers `504`.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) flips a flag the accept loop polls; the
//! loop stops accepting, the pool drains queued and in-flight work, and
//! [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sim::CancelToken;
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::VeriBugError;

use crate::api::{self, ApiError};
use crate::cache::{BuildError, DesignCache};
use crate::http::{self, ReadError, Request};
use crate::pool::Pool;

static REQUESTS: obs::LazyCounter = obs::LazyCounter::new("serve.requests");
static REJECTED_FULL: obs::LazyCounter = obs::LazyCounter::new("serve.rejected.queue_full");
static RESP_2XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.2xx");
static RESP_4XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.4xx");
static RESP_5XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.5xx");
static PANICS: obs::LazyCounter = obs::LazyCounter::new("serve.panics");
static DEADLINES: obs::LazyCounter = obs::LazyCounter::new("serve.deadline_exceeded");
static REQUEST_SECONDS: obs::LazyHistogram =
    obs::LazyHistogram::new_micros("serve.request.seconds");

const CONTENT_JSON: &str = "application/json";

/// Server tunables. [`Default`] is suitable for localhost use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads. Defaults to [`par::max_threads`], so
    /// `VERIBUG_THREADS` sizes the pool.
    pub workers: usize,
    /// Pending-request queue bound (beyond this, `429`).
    pub queue_capacity: usize,
    /// Compiled designs kept in the LRU cache.
    pub cache_capacity: usize,
    /// Default per-request deadline (a request's `options.deadline_ms`
    /// overrides it).
    pub deadline: Duration,
    /// Largest accepted request body (beyond this, `413`).
    pub max_body_bytes: usize,
    /// Optional path to a trained model (`veribug train --out ...`).
    /// Without one, an untrained deterministic model is used.
    pub model_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = par::max_threads();
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_capacity: workers.saturating_mul(4).max(4),
            cache_capacity: 64,
            deadline: Duration::from_secs(10),
            max_body_bytes: 4 * 1024 * 1024,
            model_path: None,
        }
    }
}

pub(crate) struct ServerState {
    config: ServerConfig,
    model: VeriBugModel,
    cache: DesignCache,
    shutdown: AtomicBool,
    started: Instant,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: Arc<Pool>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown, equivalent to `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener, loads the model (if configured), spawns the
    /// worker pool, and enables obs collection (the service's `/metricsz`
    /// is only useful with metrics on).
    ///
    /// # Errors
    ///
    /// I/O errors from binding; a model that fails to load surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        obs::enable();
        let model = match &config.model_path {
            Some(path) => veribug::persist::load(path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("cannot load model `{path}`: {e}"),
                )
            })?,
            None => VeriBugModel::new(ModelConfig::default()),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let pool = Arc::new(Pool::new(config.workers, config.queue_capacity));
        let state = Arc::new(ServerState {
            cache: DesignCache::new(config.cache_capacity),
            model,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            pool,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the server from another thread.
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.listener.local_addr().expect("server local addr"),
        }
    }

    /// Serves until shutdown is requested, then drains queued and
    /// in-flight requests and returns. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are handled
    /// in-line.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The accept loop is the only producer, so this
                    // check-then-submit cannot race another submit; workers
                    // only shrink the queue in between.
                    if self.pool.is_full() {
                        REJECTED_FULL.incr();
                        reject(
                            stream,
                            ApiError::new(429, "queue_full", "request queue is full"),
                            self.state.config.max_body_bytes,
                        );
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    let _ = self.pool.submit(move || {
                        handle_connection(&state, stream);
                        obs::flush_thread();
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        obs::progress!("serve: draining in-flight requests");
        self.pool.shutdown();
        obs::flush_thread();
        obs::progress!("serve: drained, listener closed");
        Ok(())
    }
}

/// Answers a connection the pool never saw (backpressure rejections) on a
/// short-lived throwaway thread: the request is read (and discarded)
/// before the error is written, so the client never races a connection
/// reset while still sending — and the accept loop never blocks on a slow
/// client's socket.
fn reject(stream: TcpStream, err: ApiError, max_body: usize) {
    track_status(err.status);
    obs::flush_thread();
    let _ = std::thread::Builder::new()
        .name("veribug-serve-reject".to_owned())
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = http::read_request(&mut stream, max_body);
            let _ = http::write_response(
                &mut stream,
                err.status,
                CONTENT_JSON,
                &[],
                err.body().as_bytes(),
            );
        });
}

fn track_status(status: u16) {
    match status / 100 {
        2 => RESP_2XX.incr(),
        4 => RESP_4XX.incr(),
        _ => RESP_5XX.incr(),
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    REQUESTS.incr();
    let req = match http::read_request(&mut stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(ReadError::TooLarge { limit, declared }) => {
            let err = ApiError::new(
                413,
                "body_too_large",
                format!("body of {declared} bytes exceeds the {limit}-byte limit"),
            );
            let _ =
                http::write_response(&mut stream, 413, CONTENT_JSON, &[], err.body().as_bytes());
            track_status(413);
            return;
        }
        Err(ReadError::BadRequest(detail)) => {
            let err = ApiError::new(400, "bad_request", detail);
            let _ =
                http::write_response(&mut stream, 400, CONTENT_JSON, &[], err.body().as_bytes());
            track_status(400);
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    let _span = obs::span("serve.request");
    let outcome = catch_unwind(AssertUnwindSafe(|| route(state, &req, &mut stream)));
    let status = match outcome {
        Ok(status) => status,
        Err(_) => {
            PANICS.incr();
            let err = ApiError::new(500, "panic", "request handler panicked");
            let _ =
                http::write_response(&mut stream, 500, CONTENT_JSON, &[], err.body().as_bytes());
            500
        }
    };
    track_status(status);
    let elapsed = started.elapsed();
    REQUEST_SECONDS.record_f64(elapsed.as_secs_f64());
    obs::progress!(
        "serve: {} {} -> {} in {:.1}ms",
        req.method,
        req.path,
        status,
        elapsed.as_secs_f64() * 1e3
    );
}

/// Dispatches one request, writes one response, returns the status.
fn route(state: &ServerState, req: &Request, stream: &mut TcpStream) -> u16 {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("POST", "/v1/localize") => handle_localize(state, &req.body, stream),
        ("POST", "/v1/analyze") => handle_analyze(&req.body, stream),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            respond(stream, 200, &[], "{\"status\":\"draining\"}\n")
        }
        ("GET", "/healthz") => handle_healthz(state, stream),
        ("GET", "/metricsz") => {
            obs::flush_thread();
            let body = obs::export::metricsz(&obs::snapshot());
            respond(stream, 200, &[], &body)
        }
        (
            "GET" | "POST",
            "/v1/localize" | "/v1/analyze" | "/v1/shutdown" | "/healthz" | "/metricsz",
        ) => {
            let err = ApiError::new(
                405,
                "method_not_allowed",
                format!("{} is not supported on {path}", req.method),
            );
            respond(stream, 405, &[], &err.body())
        }
        _ => {
            let err = ApiError::new(404, "not_found", format!("no route for {path}"));
            respond(stream, 404, &[], &err.body())
        }
    }
}

fn respond(stream: &mut TcpStream, status: u16, extra: &[(&str, &str)], body: &str) -> u16 {
    let _ = http::write_response(stream, status, CONTENT_JSON, extra, body.as_bytes());
    status
}

fn build_error(which: &'static str, e: BuildError) -> ApiError {
    match e {
        BuildError::Parse(p) => ApiError::new(
            422,
            "verilog_parse",
            format!("{which} design does not parse: {p}"),
        )
        .at(p.span()),
        BuildError::Elab(s) => ApiError::new(
            422,
            "elaboration",
            format!("{which} design does not elaborate: {s}"),
        ),
    }
}

fn handle_localize(state: &ServerState, body: &[u8], stream: &mut TcpStream) -> u16 {
    let parsed = match api::parse_localize(body) {
        Ok(p) => p,
        Err(e) => return respond(stream, e.status, &[], &e.body()),
    };
    let (mut golden, mut buggy) = {
        let _span = obs::span("serve.cache");
        let golden = match state.cache.get(&parsed.golden) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("golden", e);
                return respond(stream, e.status, &[], &e.body());
            }
        };
        let buggy = match state.cache.get(&parsed.buggy) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("buggy", e);
                return respond(stream, e.status, &[], &e.body());
            }
        };
        (golden, buggy)
    };
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(state.config.deadline);
    let cancel = CancelToken::with_deadline(Instant::now() + deadline);
    let result = veribug::localize::run_with_sims(
        &state.model,
        &mut golden.sim,
        &mut buggy.sim,
        &parsed.target,
        &parsed.opts,
        &cancel,
    );
    // Cache status travels in a header, never the body, so identical
    // requests stay byte-identical cold or warm.
    let cache_note = format!(
        "golden={},buggy={}",
        if golden.hit { "hit" } else { "miss" },
        if buggy.hit { "hit" } else { "miss" }
    );
    let extra: &[(&str, &str)] = &[("x-veribug-cache", &cache_note)];
    match result {
        Ok(report) => respond(stream, 200, extra, &api::render_report(&report)),
        Err(VeriBugError::Sim(sim::SimError::Cancelled { at_cycle })) => {
            DEADLINES.incr();
            let e = ApiError::new(
                504,
                "deadline",
                format!(
                    "deadline of {}ms exceeded (cancelled at cycle {at_cycle}); partial work discarded",
                    deadline.as_millis()
                ),
            );
            respond(stream, 504, extra, &e.body())
        }
        Err(VeriBugError::UnknownTarget { target }) => {
            let e = ApiError::new(
                422,
                "unknown_target",
                format!("target `{target}` is not a signal of the golden design"),
            );
            respond(stream, 422, extra, &e.body())
        }
        Err(other) => {
            let e = ApiError::new(422, "localize", other.to_string());
            respond(stream, 422, extra, &e.body())
        }
    }
}

fn handle_analyze(body: &[u8], stream: &mut TcpStream) -> u16 {
    let parsed = match api::parse_analyze(body) {
        Ok(p) => p,
        Err(e) => return respond(stream, e.status, &[], &e.body()),
    };
    let module = match verilog::parse(&parsed.design) {
        Ok(m) => m.top().clone(),
        Err(p) => {
            let e = ApiError::new(422, "verilog_parse", format!("design does not parse: {p}"))
                .at(p.span());
            return respond(stream, e.status, &[], &e.body());
        }
    };
    let _span = obs::span("serve.analyze");
    let vdg = cdfg::Vdg::build(&module);
    let dep = cdfg::dependencies_of(&vdg, &parsed.target);
    let slice = cdfg::Slice::of_target(&module, &parsed.target);
    let coi = cdfg::ConeOfInfluence::compute(&vdg, &parsed.target, parsed.depth);
    let mut out = String::from("{\"module\":");
    obs::json::write_str(&mut out, &module.name);
    out.push_str(",\"target\":");
    obs::json::write_str(&mut out, &parsed.target);
    out.push_str(",\"dep\":[");
    for (i, d) in dep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        obs::json::write_str(&mut out, d);
    }
    out.push_str("],\"slice\":[");
    for (i, stmt) in slice.stmts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"stmt\":");
        obs::json::write_str(&mut out, &stmt.to_string());
        if let Some(a) = module.assignment(*stmt) {
            let depth = coi.min_cycles.get(&a.lhs.base).copied().unwrap_or(0);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"depth\":{depth}"));
            out.push_str(",\"source\":");
            obs::json::write_str(
                &mut out,
                &format!("{} = {}", a.lhs.base, verilog::print_expr(&a.rhs)),
            );
        }
        out.push('}');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("],\"statements\":{}}}\n", slice.len()),
    );
    respond(stream, 200, &[], &out)
}

fn handle_healthz(state: &ServerState, stream: &mut TcpStream) -> u16 {
    let uptime_ms = state.started.elapsed().as_millis();
    let body = format!(
        "{{\"status\":\"ok\",\"uptime_ms\":{uptime_ms},\"workers\":{},\"queue_capacity\":{},\"cache_entries\":{},\"cache_capacity\":{}}}\n",
        state.config.workers,
        state.config.queue_capacity,
        state.cache.len(),
        state.config.cache_capacity,
    );
    respond(stream, 200, &[], &body)
}
