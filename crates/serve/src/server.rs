//! The accept loop, router, and request lifecycle.
//!
//! One thread accepts connections and hands each to the bounded
//! [`Pool`](crate::pool::Pool); backpressure (queue full) is answered with
//! `429` directly from the accept loop. Workers read the request, route
//! it, and write exactly one response. Every request runs under a
//! `serve.request` span with per-stage child spans (`elaborate`,
//! `simulate`, `campaign`, `explain` come from the localize pipeline
//! itself), a panic inside a handler answers `500` without killing the
//! worker, and a fired deadline answers `504`.
//!
//! Every request carries a **request ID** — honored from an
//! `x-veribug-request-id` header when the client sends a well-formed one,
//! minted otherwise — echoed on every response (error paths included) and
//! attached to structured error bodies. The whole request runs under a
//! live trace ([`obs::live`]): its span tree and counter deltas, including
//! work fanned out through `veribug-par`, are attributed to the ID and
//! tail-sampled into the `/tracez` ring, and its latency/status/stage
//! breakdown feeds the rolling window `/statusz` serves.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) flips a flag the accept loop polls; the
//! loop stops accepting, the pool drains queued and in-flight work, and
//! [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sim::CancelToken;
use store::Store;
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::VeriBugError;

use obs::live;

use crate::api::{self, ApiError};
use crate::cache::{BuildError, DesignCache};
use crate::http::{self, ReadError, Request};
use crate::pool::Pool;
use crate::telemetry;

static REQUESTS: obs::LazyCounter = obs::LazyCounter::new("serve.requests");
static REJECTED_FULL: obs::LazyCounter = obs::LazyCounter::new("serve.rejected.queue_full");
static RESP_2XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.2xx");
static RESP_4XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.4xx");
static RESP_5XX: obs::LazyCounter = obs::LazyCounter::new("serve.responses.5xx");
static PANICS: obs::LazyCounter = obs::LazyCounter::new("serve.panics");
static DEADLINES: obs::LazyCounter = obs::LazyCounter::new("serve.deadline_exceeded");
static REQUEST_SECONDS: obs::LazyHistogram =
    obs::LazyHistogram::new_micros("serve.request.seconds");

const CONTENT_JSON: &str = "application/json";

/// Server tunables. [`Default`] is suitable for localhost use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads. Defaults to [`par::max_threads`], so
    /// `VERIBUG_THREADS` sizes the pool.
    pub workers: usize,
    /// Pending-request queue bound (beyond this, `429`).
    pub queue_capacity: usize,
    /// Compiled designs kept in the LRU cache.
    pub cache_capacity: usize,
    /// Default per-request deadline (a request's `options.deadline_ms`
    /// overrides it).
    pub deadline: Duration,
    /// Largest accepted request body (beyond this, `413`).
    pub max_body_bytes: usize,
    /// Optional path to a trained model (`veribug train --out ...`).
    /// Without one, an untrained deterministic model is used.
    pub model_path: Option<String>,
    /// Live request telemetry (trace IDs into the `/tracez` ring, rolling
    /// `/statusz` windows). Always on in `veribug serve`; exists as a
    /// knob so `serve_bench` can measure its overhead A/B.
    pub telemetry: bool,
    /// Emit one structured JSON line per request to stderr
    /// (`--access-log`).
    pub access_log: bool,
    /// Enable `GET /debugz/panic` (a handler that panics on purpose), so
    /// tests and operators can verify 500-path behavior end to end.
    pub debug_endpoints: bool,
    /// Optional root of a persistent [`store::Store`]. When set, the
    /// design cache writes successful builds through to it and preloads
    /// from it at bind, so a restarted server answers its first request
    /// warm. The byte budget comes from `VERIBUG_STORE_BUDGET` (default
    /// [`store::DEFAULT_BUDGET`]). `veribug serve` resolves `--store`,
    /// then the `VERIBUG_STORE` environment variable, into this field.
    pub store_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = par::max_threads();
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_capacity: workers.saturating_mul(4).max(4),
            cache_capacity: 64,
            deadline: Duration::from_secs(10),
            max_body_bytes: 4 * 1024 * 1024,
            model_path: None,
            telemetry: true,
            access_log: false,
            debug_endpoints: false,
            store_path: None,
        }
    }
}

pub(crate) struct ServerState {
    config: ServerConfig,
    model: VeriBugModel,
    /// Content hash of the loaded weights (computed once at bind), so
    /// `/healthz` and `/statusz` can say which model this box serves.
    weights_hash: String,
    cache: DesignCache,
    /// The persistent artifact store behind the cache, when configured.
    store: Option<Arc<Store>>,
    /// Designs compiled into the cache from the store at bind.
    preloaded: usize,
    pool: Arc<Pool>,
    shutdown: AtomicBool,
    started: Instant,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown, equivalent to `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener, loads the model (if configured), spawns the
    /// worker pool, and enables obs collection (the service's `/metricsz`
    /// is only useful with metrics on).
    ///
    /// # Errors
    ///
    /// I/O errors from binding; a model that fails to load surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        obs::enable();
        let model = match &config.model_path {
            Some(path) => veribug::persist::load(path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("cannot load model `{path}`: {e}"),
                )
            })?,
            None => VeriBugModel::new(ModelConfig::default()),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let pool = Arc::new(Pool::new(config.workers, config.queue_capacity));
        let weights_hash = veribug::persist::content_hash_hex(&model);
        let store = match &config.store_path {
            Some(path) => Some(Arc::new(Store::open(path, store::env_budget()?)?)),
            None => None,
        };
        let cache = match &store {
            Some(s) => DesignCache::with_store(config.cache_capacity, Arc::clone(s)),
            None => DesignCache::new(config.cache_capacity),
        };
        // Compile persisted designs back into the LRU before accepting
        // traffic: the restart is warm — parse → levelize → compile for
        // returning designs happens here, off the request path. The flush
        // merges the preload's `store.*` counter shard out of this thread's
        // TLS so `/metricsz` sees the hits even before any request lands.
        let preloaded = cache.preload();
        obs::flush_thread();
        let state = Arc::new(ServerState {
            cache,
            store,
            preloaded,
            model,
            weights_hash,
            pool,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        Ok(Server { listener, state })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the server from another thread.
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.listener.local_addr().expect("server local addr"),
        }
    }

    /// Serves until shutdown is requested, then drains queued and
    /// in-flight requests and returns. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are handled
    /// in-line.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The accept loop is the only producer, so this
                    // check-then-submit cannot race another submit; workers
                    // only shrink the queue in between.
                    if self.state.pool.is_full() {
                        REJECTED_FULL.incr();
                        reject(&self.state, stream);
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    let _ = self.state.pool.submit(move || {
                        handle_connection(&state, stream);
                        obs::flush_thread();
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        obs::progress!("serve: draining in-flight requests");
        self.state.pool.shutdown();
        obs::flush_thread();
        // Render the obs report on drain only when an output file was
        // configured (the CLI's own at-exit `report()` is a no-op after
        // this — `report` renders at most once per process).
        if obs::output_configured() {
            let _ = obs::report();
        }
        obs::progress!("serve: drained, listener closed");
        Ok(())
    }
}

/// Answers a connection the pool never saw (backpressure rejections) on a
/// short-lived throwaway thread: the request is read before the error is
/// written, so the client never races a connection reset while still
/// sending — and the accept loop never blocks on a slow client's socket.
/// Reading the request also recovers the client's request ID (if any), so
/// even a `429` is echoed and lands in the `/tracez` ring.
fn reject(state: &Arc<ServerState>, stream: TcpStream) {
    track_status(429);
    obs::flush_thread();
    let state = Arc::clone(state);
    let _ = std::thread::Builder::new()
        .name("veribug-serve-reject".to_owned())
        .spawn(move || {
            let started = Instant::now();
            let mut stream = stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let (rid, method, label) =
                match http::read_request(&mut stream, state.config.max_body_bytes) {
                    Ok(req) => (request_id(&req), req.method.clone(), route_label(&req)),
                    Err(_) => (live::mint_id(), "-".to_owned(), "other"),
                };
            let err =
                ApiError::new(429, "queue_full", "request queue is full").with_request_id(&rid);
            respond(&mut stream, &rid, 429, &[], &err.body());
            if state.config.telemetry {
                live::record_untraced(
                    &rid,
                    &method,
                    label,
                    429,
                    started.elapsed().as_micros() as u64,
                );
            }
            if state.config.access_log {
                access_log_line(&rid, &method, label, 429, started.elapsed(), false);
            }
        });
}

fn track_status(status: u16) {
    match status / 100 {
        2 => RESP_2XX.incr(),
        4 => RESP_4XX.incr(),
        _ => RESP_5XX.incr(),
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    REQUESTS.incr();
    let req = match http::read_request(&mut stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(ReadError::TooLarge { limit, declared }) => {
            // The request never parsed, so no client ID is available; mint
            // one anyway so even this response is correlatable.
            let rid = live::mint_id();
            let err = ApiError::new(
                413,
                "body_too_large",
                format!("body of {declared} bytes exceeds the {limit}-byte limit"),
            )
            .with_request_id(&rid);
            respond(&mut stream, &rid, 413, &[], &err.body());
            finish_unrouted(state, &rid, 413, started);
            return;
        }
        Err(ReadError::BadRequest(detail)) => {
            let rid = live::mint_id();
            let err = ApiError::new(400, "bad_request", detail).with_request_id(&rid);
            respond(&mut stream, &rid, 400, &[], &err.body());
            finish_unrouted(state, &rid, 400, started);
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    let rid = request_id(&req);
    let label = route_label(&req);
    let scope = state
        .config
        .telemetry
        .then(|| live::begin(&rid, &req.method, label));
    let status = {
        // The root span must drop before `scope.finish` so it lands in the
        // trace's span tree.
        let _span = obs::span("serve.request");
        match catch_unwind(AssertUnwindSafe(|| route(state, &req, &rid, &mut stream))) {
            Ok(status) => status,
            Err(_) => {
                PANICS.incr();
                let err =
                    ApiError::new(500, "panic", "request handler panicked").with_request_id(&rid);
                respond(&mut stream, &rid, 500, &[], &err.body())
            }
        }
    };
    let sampled = scope
        .and_then(|s| s.finish(status))
        .is_some_and(|t| t.sampled());
    track_status(status);
    let elapsed = started.elapsed();
    REQUEST_SECONDS.record_f64(elapsed.as_secs_f64());
    if state.config.access_log {
        access_log_line(&rid, &req.method, label, status, elapsed, sampled);
    }
    obs::progress!(
        "serve: {} {} -> {} in {:.1}ms [{}]",
        req.method,
        req.path,
        status,
        elapsed.as_secs_f64() * 1e3,
        rid
    );
}

/// Books an early-failure request (unreadable head or oversized body) into
/// counters, the trace ring, and the access log — the route is unknown, so
/// it books under `"other"`.
fn finish_unrouted(state: &ServerState, rid: &str, status: u16, started: Instant) {
    track_status(status);
    let elapsed = started.elapsed();
    REQUEST_SECONDS.record_f64(elapsed.as_secs_f64());
    if state.config.telemetry {
        live::record_untraced(rid, "-", "other", status, elapsed.as_micros() as u64);
    }
    if state.config.access_log {
        access_log_line(rid, "-", "other", status, elapsed, false);
    }
}

/// The request's ID: the client's `x-veribug-request-id` when well-formed,
/// a freshly minted one otherwise.
fn request_id(req: &Request) -> String {
    req.header("x-veribug-request-id")
        .filter(|v| live::valid_id(v))
        .map(str::to_owned)
        .unwrap_or_else(live::mint_id)
}

/// Maps a request path onto a bounded label for the rolling window: known
/// routes verbatim, anything else `"other"`, so hostile or misspelled
/// paths cannot blow up per-endpoint cardinality.
fn route_label(req: &Request) -> &'static str {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match path {
        "/v1/localize" => "/v1/localize",
        "/v1/explain" => "/v1/explain",
        "/v1/analyze" => "/v1/analyze",
        "/v1/shutdown" => "/v1/shutdown",
        "/healthz" => "/healthz",
        "/metricsz" => "/metricsz",
        "/statusz" => "/statusz",
        "/tracez" => "/tracez",
        "/tracez/export" => "/tracez/export",
        "/debugz/panic" => "/debugz/panic",
        _ => "other",
    }
}

/// One structured access-log line per request, on stderr.
fn access_log_line(
    rid: &str,
    method: &str,
    path: &str,
    status: u16,
    elapsed: Duration,
    sampled: bool,
) {
    use std::fmt::Write as _;
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut line = format!("{{\"ts_ms\":{ts_ms},\"id\":");
    obs::json::write_str(&mut line, rid);
    line.push_str(",\"method\":");
    obs::json::write_str(&mut line, method);
    line.push_str(",\"path\":");
    obs::json::write_str(&mut line, path);
    let _ = write!(
        line,
        ",\"status\":{status},\"dur_us\":{},\"sampled\":{sampled}}}",
        elapsed.as_micros()
    );
    eprintln!("{line}");
}

/// Dispatches one request, writes one response, returns the status.
fn route(state: &ServerState, req: &Request, rid: &str, stream: &mut TcpStream) -> u16 {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("POST", "/v1/localize") => handle_localize(state, &req.body, rid, stream),
        ("POST", "/v1/explain") => handle_explain(state, &req.body, rid, stream),
        ("POST", "/v1/analyze") => handle_analyze(&req.body, rid, stream),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            respond(stream, rid, 200, &[], "{\"status\":\"draining\"}\n")
        }
        ("GET", "/healthz") => handle_healthz(state, rid, stream),
        ("GET", "/metricsz") => {
            obs::flush_thread();
            let body = obs::export::metricsz(&obs::snapshot());
            respond(stream, rid, 200, &[], &body)
        }
        ("GET", "/statusz") => handle_statusz(state, rid, stream),
        ("GET", "/tracez") => handle_tracez(req, rid, stream),
        ("GET", "/tracez/export") => handle_tracez_export(req, rid, stream),
        ("GET", "/debugz/panic") if state.config.debug_endpoints => {
            panic!("debug panic endpoint")
        }
        (
            "GET" | "POST",
            "/v1/localize" | "/v1/explain" | "/v1/analyze" | "/v1/shutdown" | "/healthz"
            | "/metricsz" | "/statusz" | "/tracez" | "/tracez/export",
        ) => {
            let err = ApiError::new(
                405,
                "method_not_allowed",
                format!("{} is not supported on {path}", req.method),
            )
            .with_request_id(rid);
            respond(stream, rid, 405, &[], &err.body())
        }
        _ => {
            let err = ApiError::new(404, "not_found", format!("no route for {path}"))
                .with_request_id(rid);
            respond(stream, rid, 404, &[], &err.body())
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    rid: &str,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> u16 {
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
    headers.push(("x-veribug-request-id", rid));
    headers.extend_from_slice(extra);
    let _ = http::write_response(stream, status, CONTENT_JSON, &headers, body.as_bytes());
    status
}

fn build_error(which: &'static str, e: BuildError) -> ApiError {
    match e {
        BuildError::Parse(p) => ApiError::new(
            422,
            "verilog_parse",
            format!("{which} design does not parse: {p}"),
        )
        .at(p.span()),
        BuildError::Elab(s) => ApiError::new(
            422,
            "elaboration",
            format!("{which} design does not elaborate: {s}"),
        ),
    }
}

fn handle_localize(state: &ServerState, body: &[u8], rid: &str, stream: &mut TcpStream) -> u16 {
    let parsed = match api::parse_localize(body) {
        Ok(p) => p,
        Err(e) => {
            let e = e.with_request_id(rid);
            return respond(stream, rid, e.status, &[], &e.body());
        }
    };
    let (mut golden, mut buggy) = {
        let _span = obs::span("serve.cache");
        let golden = match state.cache.get(&parsed.golden) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("golden", e).with_request_id(rid);
                return respond(stream, rid, e.status, &[], &e.body());
            }
        };
        let buggy = match state.cache.get(&parsed.buggy) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("buggy", e).with_request_id(rid);
                return respond(stream, rid, e.status, &[], &e.body());
            }
        };
        (golden, buggy)
    };
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(state.config.deadline);
    let cancel = CancelToken::with_deadline(Instant::now() + deadline);
    let result = veribug::localize::run_with_sims(
        &state.model,
        &mut golden.sim,
        &mut buggy.sim,
        &parsed.target,
        &parsed.opts,
        &cancel,
    );
    // Cache status travels in a header, never the body, so identical
    // requests stay byte-identical cold or warm.
    let cache_note = format!(
        "golden={},buggy={}",
        if golden.hit { "hit" } else { "miss" },
        if buggy.hit { "hit" } else { "miss" }
    );
    let extra: &[(&str, &str)] = &[("x-veribug-cache", &cache_note)];
    match result {
        Ok(report) => respond(stream, rid, 200, extra, &api::render_report(&report)),
        Err(VeriBugError::Sim(sim::SimError::Cancelled { at_cycle })) => {
            DEADLINES.incr();
            let e = ApiError::new(
                504,
                "deadline",
                format!(
                    "deadline of {}ms exceeded (cancelled at cycle {at_cycle}); partial work discarded",
                    deadline.as_millis()
                ),
            )
            .with_request_id(rid);
            respond(stream, rid, 504, extra, &e.body())
        }
        Err(VeriBugError::UnknownTarget { target }) => {
            let e = ApiError::new(
                422,
                "unknown_target",
                format!("target `{target}` is not a signal of the golden design"),
            )
            .with_request_id(rid);
            respond(stream, rid, 422, extra, &e.body())
        }
        Err(other) => {
            let e = ApiError::new(422, "localize", other.to_string()).with_request_id(rid);
            respond(stream, rid, 422, extra, &e.body())
        }
    }
}

/// `POST /v1/explain`: the localize pipeline, answered as per-operand
/// attention attributions. The body is rendered by
/// [`veribug::AttributionReport::to_json`] — the exact string
/// `veribug explain --attention --json` prints — so CLI and service
/// attributions are identical by construction (asserted by test).
fn handle_explain(state: &ServerState, body: &[u8], rid: &str, stream: &mut TcpStream) -> u16 {
    let parsed = match api::parse_explain(body) {
        Ok(p) => p,
        Err(e) => {
            let e = e.with_request_id(rid);
            return respond(stream, rid, e.status, &[], &e.body());
        }
    };
    let (mut golden, mut buggy) = {
        let _span = obs::span("serve.cache");
        let golden = match state.cache.get(&parsed.golden) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("golden", e).with_request_id(rid);
                return respond(stream, rid, e.status, &[], &e.body());
            }
        };
        let buggy = match state.cache.get(&parsed.buggy) {
            Ok(d) => d,
            Err(e) => {
                let e = build_error("buggy", e).with_request_id(rid);
                return respond(stream, rid, e.status, &[], &e.body());
            }
        };
        (golden, buggy)
    };
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(state.config.deadline);
    let cancel = CancelToken::with_deadline(Instant::now() + deadline);
    let result = veribug::localize::run_with_sims(
        &state.model,
        &mut golden.sim,
        &mut buggy.sim,
        &parsed.target,
        &parsed.opts,
        &cancel,
    );
    let cache_note = format!(
        "golden={},buggy={}",
        if golden.hit { "hit" } else { "miss" },
        if buggy.hit { "hit" } else { "miss" }
    );
    let extra: &[(&str, &str)] = &[("x-veribug-cache", &cache_note)];
    match result {
        Ok(report) => {
            let att =
                veribug::AttributionReport::from_localize(&state.model, &buggy.module, &report);
            respond(stream, rid, 200, extra, &att.to_json())
        }
        Err(VeriBugError::Sim(sim::SimError::Cancelled { at_cycle })) => {
            DEADLINES.incr();
            let e = ApiError::new(
                504,
                "deadline",
                format!(
                    "deadline of {}ms exceeded (cancelled at cycle {at_cycle}); partial work discarded",
                    deadline.as_millis()
                ),
            )
            .with_request_id(rid);
            respond(stream, rid, 504, extra, &e.body())
        }
        Err(VeriBugError::UnknownTarget { target }) => {
            let e = ApiError::new(
                422,
                "unknown_target",
                format!("target `{target}` is not a signal of the golden design"),
            )
            .with_request_id(rid);
            respond(stream, rid, 422, extra, &e.body())
        }
        Err(other) => {
            let e = ApiError::new(422, "localize", other.to_string()).with_request_id(rid);
            respond(stream, rid, 422, extra, &e.body())
        }
    }
}

fn handle_analyze(body: &[u8], rid: &str, stream: &mut TcpStream) -> u16 {
    let parsed = match api::parse_analyze(body) {
        Ok(p) => p,
        Err(e) => {
            let e = e.with_request_id(rid);
            return respond(stream, rid, e.status, &[], &e.body());
        }
    };
    let module = match verilog::parse(&parsed.design) {
        Ok(m) => m.top().clone(),
        Err(p) => {
            let e = ApiError::new(422, "verilog_parse", format!("design does not parse: {p}"))
                .at(p.span())
                .with_request_id(rid);
            return respond(stream, rid, e.status, &[], &e.body());
        }
    };
    let _span = obs::span("serve.analyze");
    let vdg = cdfg::Vdg::build(&module);
    let dep = cdfg::dependencies_of(&vdg, &parsed.target);
    let slice = cdfg::Slice::of_target(&module, &parsed.target);
    let coi = cdfg::ConeOfInfluence::compute(&vdg, &parsed.target, parsed.depth);
    let mut out = String::from("{\"module\":");
    obs::json::write_str(&mut out, &module.name);
    out.push_str(",\"target\":");
    obs::json::write_str(&mut out, &parsed.target);
    out.push_str(",\"dep\":[");
    for (i, d) in dep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        obs::json::write_str(&mut out, d);
    }
    out.push_str("],\"slice\":[");
    for (i, stmt) in slice.stmts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"stmt\":");
        obs::json::write_str(&mut out, &stmt.to_string());
        if let Some(a) = module.assignment(*stmt) {
            let depth = coi.min_cycles.get(&a.lhs.base).copied().unwrap_or(0);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"depth\":{depth}"));
            out.push_str(",\"source\":");
            obs::json::write_str(
                &mut out,
                &format!("{} = {}", a.lhs.base, verilog::print_expr(&a.rhs)),
            );
        }
        out.push('}');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("],\"statements\":{}}}\n", slice.len()),
    );
    respond(stream, rid, 200, &[], &out)
}

fn handle_healthz(state: &ServerState, rid: &str, stream: &mut TcpStream) -> u16 {
    let uptime = state.started.elapsed();
    let body = format!(
        "{{\"status\":\"ok\",\"version\":\"{}\",\"engines\":[\"batch\",\"compiled\",\"interpreted\"],\"weights_hash\":\"{}\",\"model_format\":\"{}\",\"uptime_ms\":{},\"uptime_s\":{},\"workers\":{},\"queue_capacity\":{},\"cache_entries\":{},\"cache_capacity\":{}}}\n",
        env!("CARGO_PKG_VERSION"),
        state.weights_hash,
        veribug::persist::format_version(),
        uptime.as_millis(),
        uptime.as_secs(),
        state.config.workers,
        state.config.queue_capacity,
        state.cache.len(),
        state.config.cache_capacity,
    );
    respond(stream, rid, 200, &[], &body)
}

fn handle_statusz(state: &ServerState, rid: &str, stream: &mut TcpStream) -> u16 {
    let (queued, running) = state.pool.depth();
    // Flush this worker's metric shards so the model counters below see
    // evaluations recorded by this very request's predecessors.
    obs::flush_thread();
    let snapshot = obs::snapshot();
    let info = telemetry::StatusInfo {
        uptime_s: state.started.elapsed().as_secs(),
        workers: state.config.workers,
        queue_capacity: state.config.queue_capacity,
        queued,
        running,
        cache_entries: state.cache.len(),
        cache_capacity: state.config.cache_capacity,
        store: state.store.as_ref().map(|s| telemetry::StoreStatus {
            path: s.root().display().to_string(),
            budget: s.budget(),
            entries: s.list().map(|l| l.len()).unwrap_or(0),
            bytes: s.total_bytes().unwrap_or(0),
            preloaded: state.preloaded,
            stats: s.stats(),
        }),
        weights_hash: state.weights_hash.clone(),
        model_format: veribug::persist::format_version(),
        evals: snapshot
            .counters
            .get("model.evals")
            .copied()
            .unwrap_or_default(),
        score_margin: snapshot.histograms.get("model.score_margin").copied(),
    };
    let body = telemetry::statusz_json(&info, obs::rolling::WINDOW_SECONDS);
    respond(stream, rid, 200, &[], &body)
}

fn handle_tracez(req: &Request, rid: &str, stream: &mut TcpStream) -> u16 {
    let limit = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .clamp(1, 512);
    if req.query_param("fmt") == Some("text") {
        let body = telemetry::tracez_text(limit);
        let headers = [("x-veribug-request-id", rid)];
        let _ = http::write_response(
            stream,
            200,
            "text/plain; charset=utf-8",
            &headers,
            body.as_bytes(),
        );
        200
    } else {
        respond(stream, rid, 200, &[], &telemetry::tracez_json(limit))
    }
}

fn handle_tracez_export(req: &Request, rid: &str, stream: &mut TcpStream) -> u16 {
    let Some(id) = req.query_param("id") else {
        let err = ApiError::new(
            400,
            "missing_param",
            "`/tracez/export` needs an `id` query parameter",
        )
        .with_request_id(rid);
        return respond(stream, rid, 400, &[], &err.body());
    };
    let Some(trace) = live::find(id) else {
        let err = ApiError::new(
            404,
            "trace_not_found",
            format!("no retained trace with id `{id}` (evicted or never recorded)"),
        )
        .with_request_id(rid);
        return respond(stream, rid, 404, &[], &err.body());
    };
    if !trace.sampled() {
        let err = ApiError::new(
            404,
            "trace_not_sampled",
            format!("trace `{id}` was retained as a digest; only error and slow traces keep a span tree"),
        )
        .with_request_id(rid);
        return respond(stream, rid, 404, &[], &err.body());
    }
    respond(stream, rid, 200, &[], &live::chrome_trace_of(&trace))
}
