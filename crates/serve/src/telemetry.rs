//! Renderers for the live-telemetry debug pages: `/tracez` (recent
//! tail-sampled traces, JSON or text), `/statusz` (build info + rolling
//! per-endpoint statistics), and the per-trace Perfetto export.
//!
//! Pages are debug surfaces, not API: their bodies are *not* covered by
//! the byte-identical-response guarantee (they change as requests flow),
//! but the JSON schema is stable and checked by `obs::validate::tracez`.

use std::fmt::Write as _;

use obs::json;
use obs::live::{self, CompletedTrace, TraceSpan};
use obs::rolling;

/// Renders the `/tracez` JSON page: ring occupancy plus the most recent
/// `limit` retained traces, newest first.
pub(crate) fn tracez_json(limit: usize) -> String {
    let (retained, sampled, active) = live::occupancy();
    let traces = live::recent(limit);
    let mut out = format!(
        "{{\"ring\":{{\"retained\":{retained},\"sampled\":{sampled},\"active\":{active}}},\"traces\":["
    );
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_trace_json(&mut out, t);
    }
    out.push_str("]}\n");
    out
}

fn write_trace_json(out: &mut String, t: &CompletedTrace) {
    out.push_str("{\"id\":");
    json::write_str(out, &t.id);
    let _ = write!(out, ",\"seq\":{}", t.seq);
    out.push_str(",\"method\":");
    json::write_str(out, &t.method);
    out.push_str(",\"path\":");
    json::write_str(out, &t.path);
    let _ = write!(
        out,
        ",\"status\":{},\"start_us\":{},\"dur_us\":{}",
        t.status, t.start_us, t.dur_us
    );
    out.push_str(",\"keep\":");
    json::write_str(out, t.keep.label());
    let _ = write!(
        out,
        ",\"sampled\":{},\"dropped_spans\":{}",
        t.sampled(),
        t.dropped_spans
    );
    out.push_str(",\"spans\":[");
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(out, &s.name);
        let _ = write!(
            out,
            ",\"tid\":{},\"id\":{},\"parent\":{},\"ts_us\":{},\"dur_us\":{}}}",
            s.tid, s.id, s.parent, s.ts_us, s.dur_us
        );
    }
    out.push_str("],\"counters\":{");
    for (i, (name, value)) in t.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("}}");
}

/// Renders the `/tracez?fmt=text` page: one block per retained trace,
/// sampled traces with an indented span tree.
pub(crate) fn tracez_text(limit: usize) -> String {
    let (retained, sampled, active) = live::occupancy();
    let traces = live::recent(limit);
    let mut out =
        format!("tracez — {retained} retained ({sampled} sampled, {active} in flight)\n\n");
    for t in &traces {
        let _ = writeln!(
            out,
            "#{} {} {} {} -> {} in {:.1}ms [{}]",
            t.seq,
            t.id,
            t.method,
            t.path,
            t.status,
            t.dur_us as f64 / 1e3,
            t.keep.label(),
        );
        if t.sampled() {
            write_span_tree(&mut out, &t.spans);
            if !t.counters.is_empty() {
                let counters: Vec<String> =
                    t.counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
                let _ = writeln!(out, "  counters: {}", counters.join(" "));
            }
            if t.dropped_spans > 0 {
                let _ = writeln!(out, "  ({} spans dropped past cap)", t.dropped_spans);
            }
        }
    }
    out
}

fn write_span_tree(out: &mut String, spans: &[TraceSpan]) {
    // Roots are spans whose parent is not itself in the trace (the request
    // root has parent 0; a worker span's parent is an in-trace span).
    let in_trace = |id: u64| spans.iter().any(|s| s.id == id);
    fn emit(out: &mut String, spans: &[TraceSpan], parent: u64, depth: usize) {
        if depth > 16 {
            return;
        }
        for s in spans.iter().filter(|s| s.parent == parent) {
            let _ = writeln!(
                out,
                "  {:indent$}{} {:.1}ms (tid {})",
                "",
                s.name,
                s.dur_us as f64 / 1e3,
                s.tid,
                indent = depth * 2
            );
            emit(out, spans, s.id, depth + 1);
        }
    }
    for root in spans.iter().filter(|s| !in_trace(s.parent)) {
        let _ = writeln!(
            out,
            "  {} {:.1}ms (tid {})",
            root.name,
            root.dur_us as f64 / 1e3,
            root.tid
        );
        emit(out, spans, root.id, 1);
    }
}

/// Occupancy and configuration the server passes into [`statusz_json`]
/// (the renderer cannot reach into `ServerState` without a cycle).
pub(crate) struct StatusInfo {
    pub(crate) uptime_s: u64,
    pub(crate) workers: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) queued: usize,
    pub(crate) running: usize,
    pub(crate) cache_entries: usize,
    pub(crate) cache_capacity: usize,
    /// Persistent artifact store occupancy, when one is configured.
    pub(crate) store: Option<StoreStatus>,
    /// Content hash of the served model's weights.
    pub(crate) weights_hash: String,
    /// Persist-format version of those weights.
    pub(crate) model_format: &'static str,
    /// Total `model.evals` served (process lifetime).
    pub(crate) evals: u64,
    /// `model.score_margin` summary, once any evaluation recorded one.
    pub(crate) score_margin: Option<obs::HistSummary>,
}

/// Occupancy of the persistent artifact store, for the `/statusz` page.
pub(crate) struct StoreStatus {
    /// The store root directory.
    pub(crate) path: String,
    /// Configured byte budget.
    pub(crate) budget: u64,
    /// Entries currently resident (all kinds).
    pub(crate) entries: usize,
    /// Bytes currently resident (all kinds).
    pub(crate) bytes: u64,
    /// Designs compiled into the LRU from the store at bind.
    pub(crate) preloaded: usize,
    /// This process's store operation counts.
    pub(crate) stats: store::StoreStats,
}

/// Renders the `/statusz` JSON page: uptime, build info, worker/queue
/// occupancy, live-trace ring occupancy, and the rolling per-endpoint
/// window (rps, p50/p99 latency, status classes, stage breakdown, cache
/// attribution).
pub(crate) fn statusz_json(info: &StatusInfo, window_s: u64) -> String {
    let (retained, sampled, active) = live::occupancy();
    let snap = rolling::snapshot(window_s);
    let mut out = String::from("{\"status\":\"ok\",\"version\":");
    json::write_str(&mut out, env!("CARGO_PKG_VERSION"));
    // The engines the sim crate can dispatch to (see `sim::EngineKind`).
    out.push_str(",\"engines\":[\"batch\",\"compiled\",\"interpreted\"]");
    let _ = write!(
        out,
        ",\"uptime_s\":{},\"workers\":{},\"queue\":{{\"capacity\":{},\"queued\":{},\"running\":{}}}",
        info.uptime_s, info.workers, info.queue_capacity, info.queued, info.running
    );
    let _ = write!(
        out,
        ",\"cache\":{{\"entries\":{},\"capacity\":{}}}",
        info.cache_entries, info.cache_capacity
    );
    out.push_str(",\"store\":");
    match &info.store {
        Some(s) => {
            out.push_str("{\"path\":");
            json::write_str(&mut out, &s.path);
            let _ = write!(
                out,
                ",\"budget_bytes\":{},\"entries\":{},\"bytes\":{},\"preloaded\":{},\"hits\":{},\"misses\":{},\"writes\":{},\"evictions\":{},\"corrupt\":{}}}",
                s.budget,
                s.entries,
                s.bytes,
                s.preloaded,
                s.stats.hits,
                s.stats.misses,
                s.stats.writes,
                s.stats.evictions,
                s.stats.corrupt
            );
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"model\":{\"weights_hash\":");
    json::write_str(&mut out, &info.weights_hash);
    out.push_str(",\"format\":");
    json::write_str(&mut out, info.model_format);
    let _ = write!(out, ",\"evals\":{}", info.evals);
    out.push_str(",\"score_margin\":");
    match &info.score_margin {
        Some(h) => {
            let _ = write!(out, "{{\"count\":{},\"mean\":", h.count);
            json::write_f64(&mut out, h.mean);
            out.push_str(",\"p50\":");
            json::write_f64(&mut out, h.p50);
            out.push_str(",\"p99\":");
            json::write_f64(&mut out, h.p99);
            out.push_str(",\"max\":");
            json::write_f64(&mut out, h.max);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push('}');
    let _ = write!(
        out,
        ",\"ring\":{{\"retained\":{retained},\"sampled\":{sampled},\"active\":{active}}}"
    );
    let _ = write!(out, ",\"window_s\":{},\"endpoints\":[", snap.window_s);
    for (i, ep) in snap.endpoints.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        json::write_str(&mut out, &ep.path);
        let _ = write!(out, ",\"count\":{},\"rps\":", ep.count);
        json::write_f64(&mut out, ep.rps);
        let _ = write!(
            out,
            ",\"s2xx\":{},\"s4xx\":{},\"s5xx\":{}",
            ep.s2xx, ep.s4xx, ep.s5xx
        );
        out.push_str(",\"latency_s\":{\"p50\":");
        json::write_f64(&mut out, ep.latency.p50);
        out.push_str(",\"p90\":");
        json::write_f64(&mut out, ep.latency.p90);
        out.push_str(",\"p99\":");
        json::write_f64(&mut out, ep.latency.p99);
        out.push_str(",\"mean\":");
        json::write_f64(&mut out, ep.latency.mean);
        out.push_str(",\"max\":");
        json::write_f64(&mut out, ep.latency.max);
        out.push('}');
        let _ = write!(
            out,
            ",\"cache\":{{\"hits\":{},\"misses\":{}}}",
            ep.cache_hits, ep.cache_misses
        );
        out.push_str(",\"stages_us\":{");
        for (j, (name, us)) in ep.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{us}");
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracez_json_matches_the_validator_schema() {
        obs::enable();
        let scope = live::begin("telemetry-test", "POST", "/v1/localize");
        {
            let _root = obs::span("serve.request");
            let _child = obs::span("serve.cache");
        }
        scope.finish(200);
        let page = tracez_json(64);
        let v = obs::validate::tracez(&page).expect("page validates");
        // Our trace may be a digest (if faster than the slow set), but the
        // page as a whole must carry it.
        assert!(page.contains("telemetry-test"));
        let _ = v;
    }

    #[test]
    fn tracez_text_renders_a_tree() {
        obs::enable();
        let scope = live::begin("telemetry-text", "POST", "/v1/localize");
        {
            let _root = obs::span("serve.request");
            let _child = obs::span("serve.analyze");
        }
        scope.finish(500); // errors always keep the tree
        let page = tracez_text(64);
        assert!(page.contains("telemetry-text"));
        assert!(page.contains("serve.request"));
        let req_line = page
            .lines()
            .find(|l| l.trim_start().starts_with("serve.analyze"))
            .expect("child span rendered");
        assert!(
            req_line.starts_with("    "),
            "child is indented under the root: {req_line:?}"
        );
    }

    #[test]
    fn statusz_is_valid_json_with_required_fields() {
        obs::enable();
        let info = StatusInfo {
            uptime_s: 12,
            workers: 4,
            queue_capacity: 16,
            queued: 1,
            running: 2,
            cache_entries: 3,
            cache_capacity: 64,
            store: Some(StoreStatus {
                path: "/tmp/veribug-store".to_owned(),
                budget: 1 << 30,
                entries: 5,
                bytes: 4096,
                preloaded: 3,
                stats: store::StoreStats {
                    hits: 7,
                    misses: 2,
                    writes: 5,
                    evictions: 1,
                    corrupt: 0,
                },
            }),
            weights_hash: "00f1e2d3c4b5a697".to_owned(),
            model_format: "veribug-model v1",
            evals: 42,
            score_margin: Some(obs::HistSummary {
                count: 42,
                mean: 0.5,
                ..obs::HistSummary::default()
            }),
        };
        let page = statusz_json(&info, 60);
        let doc = obs::json::parse(&page).expect("valid json");
        assert_eq!(
            doc.get("version").and_then(|v| v.as_str()),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(doc.get("uptime_s").and_then(|v| v.as_num()), Some(12.0));
        let engines = doc
            .get("engines")
            .and_then(|v| v.as_arr())
            .expect("engines");
        assert_eq!(engines.len(), 3);
        assert!(doc.get("endpoints").and_then(|v| v.as_arr()).is_some());
        let queue = doc.get("queue").expect("queue block");
        assert_eq!(queue.get("queued").and_then(|v| v.as_num()), Some(1.0));
        let store_block = doc.get("store").expect("store block");
        assert_eq!(
            store_block.get("path").and_then(|v| v.as_str()),
            Some("/tmp/veribug-store")
        );
        assert_eq!(
            store_block.get("entries").and_then(|v| v.as_num()),
            Some(5.0)
        );
        assert_eq!(
            store_block.get("bytes").and_then(|v| v.as_num()),
            Some(4096.0)
        );
        assert_eq!(
            store_block.get("preloaded").and_then(|v| v.as_num()),
            Some(3.0)
        );
        assert_eq!(store_block.get("hits").and_then(|v| v.as_num()), Some(7.0));
        assert_eq!(
            store_block.get("misses").and_then(|v| v.as_num()),
            Some(2.0)
        );
        assert_eq!(
            store_block.get("evictions").and_then(|v| v.as_num()),
            Some(1.0)
        );
        let model = doc.get("model").expect("model block");
        assert_eq!(
            model.get("weights_hash").and_then(|v| v.as_str()),
            Some("00f1e2d3c4b5a697")
        );
        assert_eq!(
            model.get("format").and_then(|v| v.as_str()),
            Some("veribug-model v1")
        );
        assert_eq!(model.get("evals").and_then(|v| v.as_num()), Some(42.0));
        assert_eq!(
            model
                .get("score_margin")
                .and_then(|m| m.get("count"))
                .and_then(|v| v.as_num()),
            Some(42.0)
        );
    }
}
