//! A minimal HTTP/1.1 reader/writer over `std::net::TcpStream`.
//!
//! Supports exactly what the service needs: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies, a
//! configurable body-size cap, and plain status-line responses. No chunked
//! transfer, no keep-alive, no TLS — the point is a dependency-free
//! serving surface, not a general web server.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers block.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request path, query string included.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter (`?key=value&...`). Values are
    /// returned verbatim — no percent-decoding; the debug endpoints that
    /// use this take identifiers from a charset that never needs escaping.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    BadRequest(String),
    /// The declared body exceeds the configured cap.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
        /// The declared `Content-Length`.
        declared: usize,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::BadRequest(d) => write!(f, "bad request: {d}"),
            ReadError::TooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from the stream. The caller is responsible for
/// setting read timeouts; a timeout surfaces as [`ReadError::Io`].
///
/// # Errors
///
/// [`ReadError::BadRequest`] for malformed request lines/headers or a head
/// block past 16 KiB, [`ReadError::TooLarge`] when `Content-Length`
/// exceeds `max_body`, [`ReadError::Io`] on transport failures.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut head: Vec<u8> = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    let body_start;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(ReadError::BadRequest(
                "connection closed before end of headers".to_owned(),
            ));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_header_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest("header block too large".to_owned()));
        }
    }
    let head_text = std::str::from_utf8(&head[..body_start - 4])
        .map_err(|_| ReadError::BadRequest("headers are not utf-8".to_owned()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".to_owned()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )));
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest(format!("bad content-length `{v}`")))?,
    };
    if declared > max_body {
        // Drain (and discard) what the client is still sending, bounded,
        // so the early 413 response doesn't race a connection reset while
        // the client is mid-write.
        let mut remaining = declared
            .saturating_sub(head.len() - body_start)
            .min(8 * 1024 * 1024);
        while remaining > 0 {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n.min(remaining),
            }
        }
        return Err(ReadError::TooLarge {
            limit: max_body,
            declared,
        });
    }
    let mut body = head[body_start..].to_vec();
    while body.len() < declared {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(ReadError::BadRequest(
                "connection closed before end of body".to_owned(),
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(declared);
    Ok(Request { body, ..request })
}

/// Byte offset just past the `\r\n\r\n` terminator, if present.
fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// The standard reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete response (status line, headers, body) and flushes.
/// Every response carries `Connection: close`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let r = read_request(&mut stream, max_body);
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/localize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/localize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        match roundtrip(raw, 10) {
            Err(ReadError::TooLarge {
                limit: 10,
                declared: 100,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n", 1024),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_bad_content_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(
            roundtrip(raw, 1024),
            Err(ReadError::BadRequest(_))
        ));
    }
}
