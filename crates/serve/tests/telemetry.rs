//! Live-telemetry integration tests: request-ID echo on every path, the
//! acceptance guarantee that 500/504 requests are always retained in
//! `/tracez` with their full span tree, debug pages under concurrent
//! traffic at 1/2/8 workers, and ring wraparound.
//!
//! The trace ring and rolling window are process-global, so tests that
//! assert on their contents serialize on [`LOCK`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use obs::json::{self, Json};
use veribug_serve::{Server, ServerConfig, ServerHandle};

static LOCK: Mutex<()> = Mutex::new(());

const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                      wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                     wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn request_id(&self) -> &str {
        self.header("x-veribug-request-id")
            .expect("every response carries x-veribug-request-id")
    }

    fn json(&self) -> Json {
        json::parse(&self.body).expect("response body is JSON")
    }
}

/// One request over a fresh connection, with extra request headers.
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has headers");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_owned(),
    }
}

fn encode(s: &str) -> String {
    let mut out = String::new();
    json::write_str(&mut out, s);
    out
}

fn localize_body(runs: usize, cycles: usize) -> String {
    format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\",\"options\":{{\"runs\":{runs},\"cycles\":{cycles}}}}}",
        encode(GOLDEN),
        encode(BUGGY)
    )
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

/// Traces on the `/tracez` page whose id satisfies a predicate.
fn traces_where(doc: &Json, pred: impl Fn(&str) -> bool) -> Vec<&Json> {
    doc.get("traces")
        .and_then(|t| t.as_arr())
        .expect("traces array")
        .iter()
        .filter(|t| t.get("id").and_then(|i| i.as_str()).is_some_and(&pred))
        .collect()
}

#[test]
fn every_response_echoes_a_request_id() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, join) = start(ServerConfig::default());
    let addr = handle.addr();

    // Minted when absent — on success and on error paths alike.
    for (method, path, want) in [
        ("GET", "/healthz", 200),
        ("GET", "/nope", 404),
        ("GET", "/v1/localize", 405),
    ] {
        let resp = request(addr, method, path, &[], "");
        assert_eq!(resp.status, want);
        assert!(!resp.request_id().is_empty(), "{path} echoes an id");
    }

    // A well-formed client ID is honored verbatim, and error bodies carry
    // it for /tracez correlation.
    let resp = request(
        addr,
        "GET",
        "/nope",
        &[("x-veribug-request-id", "client-id.42")],
        "",
    );
    assert_eq!(resp.status, 404);
    assert_eq!(resp.request_id(), "client-id.42");
    assert_eq!(
        resp.json()
            .get("error")
            .unwrap()
            .get("request_id")
            .unwrap()
            .as_str(),
        Some("client-id.42")
    );

    // A malformed client ID (illegal characters) is replaced, not echoed.
    let resp = request(
        addr,
        "GET",
        "/healthz",
        &[("x-veribug-request-id", "bad id with spaces")],
        "",
    );
    assert_eq!(resp.status, 200);
    assert_ne!(resp.request_id(), "bad id with spaces");

    // 200 bodies stay byte-identical across requests: the ID never enters
    // them.
    let a = request(addr, "POST", "/v1/localize", &[], &localize_body(8, 4));
    let b = request(
        addr,
        "POST",
        "/v1/localize",
        &[("x-veribug-request-id", "different-id")],
        &localize_body(8, 4),
    );
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_ne!(a.request_id(), b.request_id());
    assert_eq!(a.body, b.body, "request id must never enter a 200 body");

    stop(&handle, join);
}

#[test]
fn healthz_reports_build_info() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, join) = start(ServerConfig::default());
    let resp = request(handle.addr(), "GET", "/healthz", &[], "");
    assert_eq!(resp.status, 200);
    let doc = resp.json();
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let engines: Vec<&str> = doc
        .get("engines")
        .and_then(|v| v.as_arr())
        .expect("engines array")
        .iter()
        .filter_map(|e| e.as_str())
        .collect();
    assert_eq!(engines, ["batch", "compiled", "interpreted"]);
    assert!(doc.get("uptime_s").and_then(|v| v.as_num()).is_some());
    stop(&handle, join);
}

#[test]
fn errored_requests_always_keep_their_span_tree() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = ServerConfig {
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    let (handle, join) = start(config);
    let addr = handle.addr();

    // A handler panic -> 500, retained as an error trace with a full tree.
    let resp = request(
        addr,
        "GET",
        "/debugz/panic",
        &[("x-veribug-request-id", "panic-trace-1")],
        "",
    );
    assert_eq!(resp.status, 500);
    assert_eq!(resp.request_id(), "panic-trace-1");

    // A fired deadline -> 504, same guarantee.
    let body = format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\",\"options\":{{\"runs\":64,\"cycles\":32,\"deadline_ms\":0}}}}",
        encode(GOLDEN),
        encode(BUGGY)
    );
    let resp = request(
        addr,
        "POST",
        "/v1/localize",
        &[("x-veribug-request-id", "deadline-trace-1")],
        &body,
    );
    assert_eq!(resp.status, 504, "body: {}", resp.body);

    let page = request(addr, "GET", "/tracez?n=512", &[], "");
    assert_eq!(page.status, 200);
    obs::validate::tracez(&page.body).expect("tracez page validates");
    let doc = page.json();
    for (id, status) in [("panic-trace-1", 500.0), ("deadline-trace-1", 504.0)] {
        let matches = traces_where(&doc, |t| t == id);
        let trace = matches.first().unwrap_or_else(|| panic!("{id} retained"));
        assert_eq!(trace.get("status").unwrap().as_num(), Some(status));
        assert_eq!(trace.get("keep").unwrap().as_str(), Some("error"));
        assert_eq!(trace.get("sampled").unwrap().as_bool(), Some(true));
        let spans = trace.get("spans").unwrap().as_arr().unwrap();
        assert!(
            spans
                .iter()
                .any(|s| { s.get("name").and_then(|n| n.as_str()) == Some("serve.request") }),
            "{id} keeps its serve.request span"
        );
    }

    // The 504 trace exports as a valid Perfetto chrome-trace.
    let export = request(addr, "GET", "/tracez/export?id=deadline-trace-1", &[], "");
    assert_eq!(export.status, 200, "body: {}", export.body);
    obs::validate::chrome_trace(&export.body).expect("export validates");

    // Unknown IDs 404 with a structured error.
    let missing = request(addr, "GET", "/tracez/export?id=never-was", &[], "");
    assert_eq!(missing.status, 404);

    // The text rendering shows the tree too.
    let text = request(addr, "GET", "/tracez?n=512&fmt=text", &[], "");
    assert_eq!(text.status, 200);
    assert!(text.body.contains("panic-trace-1"));
    assert!(text.body.contains("serve.request"));

    stop(&handle, join);
}

#[test]
fn debug_pages_hold_up_under_concurrent_traffic() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for workers in [1usize, 2, 8] {
        let config = ServerConfig {
            workers,
            queue_capacity: 64,
            ..ServerConfig::default()
        };
        let (handle, join) = start(config);
        let addr = handle.addr();
        let clients: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    for i in 0..4 {
                        for path in ["/healthz", "/statusz", "/tracez?n=8", "/metricsz"] {
                            let id = format!("conc-{workers}-{c}-{i}");
                            let resp = request(
                                addr,
                                "GET",
                                path,
                                &[("x-veribug-request-id", id.as_str())],
                                "",
                            );
                            assert_eq!(resp.status, 200, "{path} under load");
                            assert_eq!(resp.request_id(), id);
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }

        // After the burst both pages are still coherent.
        let page = request(addr, "GET", "/tracez?n=512", &[], "");
        obs::validate::tracez(&page.body).expect("tracez validates after burst");
        let page_doc = page.json();
        let conc = traces_where(&page_doc, |t| t.starts_with(&format!("conc-{workers}-")));
        assert!(
            !conc.is_empty(),
            "burst requests landed in the ring at {workers} workers"
        );

        let status = request(addr, "GET", "/statusz", &[], "");
        assert_eq!(status.status, 200);
        let doc = status.json();
        let endpoints = doc.get("endpoints").and_then(|e| e.as_arr()).unwrap();
        let healthz = endpoints
            .iter()
            .find(|e| e.get("path").and_then(|p| p.as_str()) == Some("/healthz"))
            .expect("healthz endpoint in the rolling window");
        assert!(healthz.get("count").unwrap().as_num().unwrap() >= 16.0);
        assert!(healthz.get("s2xx").unwrap().as_num().unwrap() >= 16.0);

        stop(&handle, join);
    }
}

#[test]
fn the_trace_ring_wraps_keeping_the_newest() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, join) = start(ServerConfig::default());
    let addr = handle.addr();
    // More requests than the ring holds (capacity 128).
    for i in 0..140 {
        let id = format!("wrap-{i:03}");
        let resp = request(
            addr,
            "GET",
            "/healthz",
            &[("x-veribug-request-id", id.as_str())],
            "",
        );
        assert_eq!(resp.status, 200);
    }
    let page = request(addr, "GET", "/tracez?n=512", &[], "");
    let doc = page.json();
    let retained = doc
        .get("ring")
        .unwrap()
        .get("retained")
        .unwrap()
        .as_num()
        .unwrap();
    assert!(retained <= 128.0, "ring is bounded, saw {retained}");
    let wraps = traces_where(&doc, |t| t.starts_with("wrap-"));
    assert_eq!(wraps.len(), 128, "exactly one ring of wrap traces retained");
    assert!(
        traces_where(&doc, |t| t == "wrap-139").len() == 1,
        "newest survives"
    );
    assert!(
        traces_where(&doc, |t| t == "wrap-000").is_empty(),
        "oldest evicted"
    );
    stop(&handle, join);
}
