//! Shard-front integration: 3 live backends, requests for the same
//! design always land on the same shard, and killing a backend degrades
//! gracefully (requests re-route or fall back locally — no 5xx storm).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use obs::json;
use veribug_serve::{Server, ServerConfig, ServerHandle, ShardConfig, ShardFront, ShardHandle};

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has headers");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    Response {
        status,
        headers: lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
            .collect(),
        body: body.to_owned(),
    }
}

/// A unique golden/buggy pair per tag, same shape as `serve_bench`.
fn localize_body(tag: usize) -> String {
    let golden = format!(
        "// design {tag}\nmodule m(input a, input b, input c, output y);\n\
         wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule"
    );
    let buggy = golden.replace("a & b", "a | b");
    let mut g = String::new();
    json::write_str(&mut g, &golden);
    let mut b = String::new();
    json::write_str(&mut b, &buggy);
    format!("{{\"golden\":{g},\"buggy\":{b},\"target\":\"y\",\"options\":{{\"runs\":12,\"cycles\":8}}}}")
}

fn start_backend() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn start_front(
    backends: Vec<String>,
) -> (ShardHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let front = ShardFront::bind(ShardConfig {
        backends,
        health_interval: Duration::from_millis(100),
        local: ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        ..ShardConfig::default()
    })
    .expect("bind front");
    let handle = front.handle();
    let join = std::thread::spawn(move || front.run());
    (handle, join)
}

#[test]
fn three_backends_route_stably_and_survive_losing_one() {
    let mut backends = Vec::new();
    for _ in 0..3 {
        backends.push(start_backend());
    }
    let addrs: Vec<String> = backends.iter().map(|(h, _)| h.addr().to_string()).collect();
    let (front, front_join) = start_front(addrs.clone());

    // Same design → same shard, every time; different designs spread out.
    let designs = 6usize;
    let mut owner: HashMap<usize, String> = HashMap::new();
    for round in 0..3 {
        for tag in 0..designs {
            let resp = request(front.addr(), "POST", "/v1/localize", &localize_body(tag));
            assert_eq!(resp.status, 200, "round {round} tag {tag}: {}", resp.body);
            let shard = resp
                .header("x-veribug-shard")
                .expect("front names the shard")
                .to_owned();
            assert!(
                addrs.contains(&shard),
                "routed to a real backend, got {shard}"
            );
            match owner.get(&tag) {
                Some(prev) => assert_eq!(prev, &shard, "design {tag} moved shards"),
                None => {
                    owner.insert(tag, shard);
                }
            }
        }
    }
    let distinct: std::collections::HashSet<&String> = owner.values().collect();
    assert!(
        distinct.len() >= 2,
        "6 designs land on at least 2 of 3 backends, got {owner:?}"
    );

    // The front's status page sees all three as healthy.
    let status = request(front.addr(), "GET", "/statusz", "");
    let doc = json::parse(&status.body).expect("front status is JSON");
    let healthy = doc
        .get("backends")
        .and_then(|b| b.as_arr())
        .expect("backends array")
        .iter()
        .filter(|b| b.get("healthy").and_then(|h| h.as_bool()) == Some(true))
        .count();
    assert_eq!(healthy, 3);

    // Kill one backend that owns at least one design. Every design must
    // still answer 200 — rerouted to a surviving backend or the local
    // fallback — with zero 5xx.
    let dead_addr = owner.values().next().unwrap().clone();
    let dead_idx = addrs.iter().position(|a| *a == dead_addr).unwrap();
    let (dead_handle, dead_join) = backends.remove(dead_idx);
    dead_handle.shutdown();
    dead_join
        .join()
        .expect("backend thread")
        .expect("clean exit");

    for round in 0..2 {
        for tag in 0..designs {
            let resp = request(front.addr(), "POST", "/v1/localize", &localize_body(tag));
            assert_eq!(
                resp.status, 200,
                "round {round} tag {tag} after kill: {}",
                resp.body
            );
            let shard = resp.header("x-veribug-shard").expect("shard header");
            assert_ne!(shard, dead_addr, "nothing routes to the dead backend");
        }
    }

    // Health checks converge on 2/3 healthy.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let status = request(front.addr(), "GET", "/statusz", "");
        let doc = json::parse(&status.body).expect("front status is JSON");
        let healthy = doc
            .get("backends")
            .and_then(|b| b.as_arr())
            .expect("backends array")
            .iter()
            .filter(|b| b.get("healthy").and_then(|h| h.as_bool()) == Some(true))
            .count();
        if healthy == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health thread never marked the dead backend down"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    front.shutdown();
    front_join
        .join()
        .expect("front thread")
        .expect("clean exit");
    for (handle, join) in backends {
        handle.shutdown();
        join.join().expect("backend thread").expect("clean exit");
    }
}

#[test]
fn front_with_no_live_backends_falls_back_to_local() {
    // One backend that is already gone by the time the first request
    // arrives: the ring routes to it, the forward fails, and the local
    // fallback answers.
    let (doomed, doomed_join) = start_backend();
    let doomed_addr = doomed.addr().to_string();
    doomed.shutdown();
    doomed_join
        .join()
        .expect("backend thread")
        .expect("clean exit");

    let (front, front_join) = start_front(vec![doomed_addr]);
    let resp = request(front.addr(), "POST", "/v1/localize", &localize_body(99));
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(
        resp.header("x-veribug-shard"),
        Some("local"),
        "dead fleet degrades to local execution"
    );
    front.shutdown();
    front_join
        .join()
        .expect("front thread")
        .expect("clean exit");
}
