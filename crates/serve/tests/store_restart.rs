//! Warm-restart and determinism tests for the persistent artifact store:
//! a server restarted over the same store answers its first request from
//! a preloaded cache, `/statusz` reports store occupancy, and store-hit
//! vs store-miss localization reports are byte-identical at 1, 2, and 8
//! threads.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use obs::json::{self, Json};
use sim::CancelToken;
use veribug_serve::{DesignCache, Server, ServerConfig, ServerHandle};

const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                      wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                     wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "veribug-serve-restart-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        json::parse(&self.body).expect("response body is JSON")
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has headers");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    Response {
        status,
        headers: lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
            .collect(),
        body: body.to_owned(),
    }
}

fn localize_body() -> String {
    let mut golden = String::new();
    json::write_str(&mut golden, GOLDEN);
    let mut buggy = String::new();
    json::write_str(&mut buggy, BUGGY);
    format!(
        "{{\"golden\":{golden},\"buggy\":{buggy},\"target\":\"y\",\"options\":{{\"runs\":24,\"cycles\":8}}}}"
    )
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn restart_over_a_shared_store_is_warm_and_byte_identical() {
    let store_dir = temp_store("warm");
    let config = || ServerConfig {
        workers: 2,
        store_path: Some(store_dir.display().to_string()),
        ..ServerConfig::default()
    };

    // Cold process: first request misses, sources are written through.
    let (handle, join) = start(config());
    let cold = request(handle.addr(), "POST", "/v1/localize", &localize_body());
    assert_eq!(cold.status, 200, "body: {}", cold.body);
    assert_eq!(
        cold.header("x-veribug-cache"),
        Some("golden=miss,buggy=miss")
    );
    let status = request(handle.addr(), "GET", "/statusz", "").json();
    let store_block = status.get("store").expect("store block in /statusz");
    assert!(
        store_block.get("writes").and_then(|v| v.as_num()).unwrap() >= 2.0,
        "both designs written through"
    );
    assert!(store_block.get("entries").and_then(|v| v.as_num()).unwrap() >= 2.0);
    stop(&handle, join);

    // Restarted process over the same store: preloaded, first request is
    // already a cache hit, and the body is byte-identical to the miss
    // path.
    let (handle, join) = start(config());
    let status = request(handle.addr(), "GET", "/statusz", "").json();
    let store_block = status.get("store").expect("store block in /statusz");
    assert_eq!(
        store_block.get("preloaded").and_then(|v| v.as_num()),
        Some(2.0),
        "both stored designs precompiled at bind"
    );
    assert!(
        store_block.get("hits").and_then(|v| v.as_num()).unwrap() >= 2.0,
        "preload reads count as store hits"
    );
    let warm = request(handle.addr(), "POST", "/v1/localize", &localize_body());
    assert_eq!(warm.status, 200, "body: {}", warm.body);
    assert_eq!(
        warm.header("x-veribug-cache"),
        Some("golden=hit,buggy=hit"),
        "first request after restart is served from the preloaded cache"
    );
    assert_eq!(warm.body, cold.body, "store-hit response is byte-identical");
    stop(&handle, join);

    // A storeless server produces the same bytes, so persistence is
    // invisible to clients.
    let (handle, join) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let plain = request(handle.addr(), "POST", "/v1/localize", &localize_body());
    assert_eq!(plain.body, cold.body);
    stop(&handle, join);

    std::fs::remove_dir_all(&store_dir).unwrap();
}

#[test]
fn statusz_reports_null_store_when_unconfigured() {
    let (handle, join) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let status = request(handle.addr(), "GET", "/statusz", "").json();
    assert!(
        matches!(status.get("store"), Some(Json::Null)),
        "store block is explicit null without a store"
    );
    stop(&handle, join);
}

/// The acceptance bar: localization through a store-preloaded cache
/// (store hit) and through a cold cache (store miss) renders
/// byte-identical reports at 1, 2, and 8 threads.
#[test]
fn store_hit_and_miss_reports_are_byte_identical_at_1_2_8_threads() {
    let store_dir = temp_store("threads");
    let store = Arc::new(store::Store::open(&store_dir, store::DEFAULT_BUDGET).unwrap());
    // Populate the store once (write-through on the build path).
    let seed_cache = DesignCache::with_store(8, Arc::clone(&store));
    seed_cache.get(GOLDEN).unwrap();
    seed_cache.get(BUGGY).unwrap();

    let model = veribug::model::VeriBugModel::new(veribug::model::ModelConfig::default());
    let opts = veribug::localize::LocalizeOptions {
        runs: 24,
        cycles: 8,
        ..veribug::localize::LocalizeOptions::default()
    };
    let render = |cache: &DesignCache| {
        let mut golden = cache.get(GOLDEN).unwrap();
        let mut buggy = cache.get(BUGGY).unwrap();
        let report = veribug::localize::run_with_sims(
            &model,
            &mut golden.sim,
            &mut buggy.sim,
            "y",
            &opts,
            &CancelToken::new(),
        )
        .unwrap();
        (golden.hit, veribug_serve::api::render_report(&report))
    };

    let mut bodies = Vec::new();
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            // Store-miss path: a cold cache with no store at all.
            let (hit, miss_body) = render(&DesignCache::new(8));
            assert!(!hit, "cold cache misses");
            // Store-hit path: a fresh cache preloaded from the store.
            let warm_cache = DesignCache::with_store(8, Arc::clone(&store));
            assert_eq!(warm_cache.preload(), 2);
            let (hit, hit_body) = render(&warm_cache);
            assert!(hit, "preloaded cache hits");
            assert_eq!(
                hit_body, miss_body,
                "store hit and miss agree at {threads} threads"
            );
            bodies.push(miss_body);
        });
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "reports are byte-identical across 1/2/8 threads"
    );
    std::fs::remove_dir_all(&store_dir).unwrap();
}
