//! End-to-end tests of the `veribug` binary: version/usage/flag
//! validation, and the localize CLI↔server equivalence (byte-identical
//! suspect rankings).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_veribug");

const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                      wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                     wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veribug-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn version_flag_prints_version() {
    for flag in ["--version", "-V", "version"] {
        let out = Command::new(BIN).arg(flag).output().expect("run");
        assert!(out.status.success(), "{flag} exits 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout.trim(),
            format!("veribug {}", env!("CARGO_PKG_VERSION"))
        );
    }
}

#[test]
fn unknown_subcommand_lists_valid_commands_and_fails() {
    let out = Command::new(BIN).arg("frobnicate").output().expect("run");
    assert!(!out.status.success(), "unknown command exits nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command `frobnicate`"), "{stderr}");
    for cmd in [
        "train", "localize", "explain", "inject", "analyze", "vcd", "serve",
    ] {
        assert!(stderr.contains(cmd), "stderr lists `{cmd}`: {stderr}");
    }
}

#[test]
fn unknown_flag_lists_valid_flags_and_fails() {
    let out = Command::new(BIN)
        .args(["localize", "--bogus", "x"])
        .output()
        .expect("run");
    assert!(!out.status.success(), "unknown flag exits nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option --bogus"), "{stderr}");
    for flag in ["--golden", "--buggy", "--target", "--model", "--obs"] {
        assert!(stderr.contains(flag), "stderr lists `{flag}`: {stderr}");
    }
}

#[test]
fn positional_arguments_are_rejected() {
    let out = Command::new(BIN)
        .args(["analyze", "design.v"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected argument `design.v`"),
        "{stderr}"
    );
}

#[test]
fn missing_required_option_fails() {
    let out = Command::new(BIN).arg("train").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing required option --out"), "{stderr}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = Command::new(BIN).arg("--help").output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"), "{stdout}");
    assert!(stdout.contains("veribug serve"), "{stdout}");
}

/// The acceptance check: the CLI and the server produce byte-identical
/// suspect rankings for the same inputs (both run `veribug::localize`).
#[test]
fn cli_and_server_rank_suspects_identically() {
    let dir = scratch_dir("equiv");
    let golden_path = dir.join("golden.v");
    let buggy_path = dir.join("buggy.v");
    let model_path = dir.join("model.vbm");
    std::fs::write(&golden_path, GOLDEN).unwrap();
    std::fs::write(&buggy_path, BUGGY).unwrap();
    let model = veribug::model::VeriBugModel::new(veribug::model::ModelConfig::default());
    veribug::persist::save(&model, model_path.to_str().unwrap()).unwrap();

    let out = Command::new(BIN)
        .args([
            "localize",
            "--golden",
            golden_path.to_str().unwrap(),
            "--buggy",
            buggy_path.to_str().unwrap(),
            "--target",
            "y",
            "--model",
            model_path.to_str().unwrap(),
            "--runs",
            "24",
            "--cycles",
            "8",
            "--threshold",
            "0.01",
            "--quiet",
        ])
        .output()
        .expect("run localize");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let cli_ranking: Vec<&str> = stdout
        .lines()
        .skip_while(|l| !l.starts_with("suspicious statements"))
        .skip(1)
        .take_while(|l| l.starts_with("  "))
        .collect();
    assert!(!cli_ranking.is_empty(), "CLI produced a ranking: {stdout}");

    // The same request through the serving layer.
    let server = veribug_serve::Server::bind(veribug_serve::ServerConfig {
        model_path: Some(model_path.to_str().unwrap().to_owned()),
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let mut body = String::from("{\"golden\":");
    obs::json::write_str(&mut body, GOLDEN);
    body.push_str(",\"buggy\":");
    obs::json::write_str(&mut body, BUGGY);
    body.push_str(",\"target\":\"y\",\"options\":{\"runs\":24,\"cycles\":8,\"threshold\":0.01}}");
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "POST /v1/localize HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "response: {raw}");
    let payload = raw.split("\r\n\r\n").nth(1).expect("body");
    let doc = obs::json::parse(payload).expect("json body");
    let server_ranking: Vec<String> = doc
        .get("suspects")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| {
            format!(
                "  {:.3}  {}  {}",
                s.get("suspiciousness").unwrap().as_num().unwrap(),
                s.get("stmt").unwrap().as_str().unwrap(),
                s.get("source").unwrap().as_str().unwrap()
            )
        })
        .collect();
    assert_eq!(
        cli_ranking, server_ranking,
        "CLI and server rankings are byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The attention-introspection acceptance check: `veribug explain
/// --attention` output (text and JSON) is byte-identical at 1/2/8 threads,
/// and the JSON is byte-identical to the `POST /v1/explain` body for the
/// same inputs.
#[test]
fn explain_attention_is_thread_invariant_and_matches_server() {
    let dir = scratch_dir("explain");
    let golden_path = dir.join("golden.v");
    let buggy_path = dir.join("buggy.v");
    let model_path = dir.join("model.vbm");
    std::fs::write(&golden_path, GOLDEN).unwrap();
    std::fs::write(&buggy_path, BUGGY).unwrap();
    let model = veribug::model::VeriBugModel::new(veribug::model::ModelConfig::default());
    veribug::persist::save(&model, model_path.to_str().unwrap()).unwrap();

    let run = |threads: &str, json: bool| -> String {
        let mut args = vec![
            "explain",
            "--golden",
            golden_path.to_str().unwrap(),
            "--buggy",
            buggy_path.to_str().unwrap(),
            "--target",
            "y",
            "--model",
            model_path.to_str().unwrap(),
            "--runs",
            "24",
            "--cycles",
            "8",
            "--threshold",
            "0.01",
            "--attention",
            "--quiet",
        ];
        if json {
            args.push("--json");
        }
        let out = Command::new(BIN)
            .args(&args)
            .env("VERIBUG_THREADS", threads)
            .output()
            .expect("run explain");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 stdout")
    };
    let text1 = run("1", false);
    let json1 = run("1", true);
    assert!(text1.contains("F_t:"), "heat-map rendered: {text1}");
    assert!(
        json1.contains("\"attributions\":["),
        "json rendered: {json1}"
    );
    for threads in ["2", "8"] {
        assert_eq!(text1, run(threads, false), "{threads}-thread text output");
        assert_eq!(json1, run(threads, true), "{threads}-thread json output");
    }

    // The same request through `POST /v1/explain`.
    let server = veribug_serve::Server::bind(veribug_serve::ServerConfig {
        model_path: Some(model_path.to_str().unwrap().to_owned()),
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let mut body = String::from("{\"golden\":");
    obs::json::write_str(&mut body, GOLDEN);
    body.push_str(",\"buggy\":");
    obs::json::write_str(&mut body, BUGGY);
    body.push_str(",\"target\":\"y\",\"options\":{\"runs\":24,\"cycles\":8,\"threshold\":0.01}}");
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "POST /v1/explain HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "response: {raw}");
    let payload = raw.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(
        json1, payload,
        "CLI --json and /v1/explain bodies are byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `veribug serve` end to end as a subprocess: scrape the ephemeral port
/// from stdout, hit /healthz, drain via /v1/shutdown, and require a clean
/// exit.
#[test]
fn serve_subcommand_runs_and_drains() {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--quiet",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .to_owned();

    let get = |path: &str| -> String {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(get("/healthz").starts_with("HTTP/1.1 200"), "healthz is up");

    let mut s = TcpStream::connect(&addr).expect("connect");
    write!(s, "POST /v1/shutdown HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "shutdown accepted: {out}");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exits 0 after drain");
}

/// With `--obs` the drain path renders the report; the CLI's at-exit
/// report must then be a no-op (exactly one render per process), and
/// `--access-log` emits one JSON line per request on stderr.
#[test]
fn serve_renders_the_obs_report_once_and_logs_access() {
    let dir = scratch_dir("serve-obs");
    let trace_path = dir.join("serve-trace.json");
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--access-log",
            "--obs",
        ])
        .arg(&trace_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .to_owned();

    let get = |path: &str, rid: &str| -> String {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: x\r\nx-veribug-request-id: {rid}\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(
        get("/healthz", "cli-access-1").starts_with("HTTP/1.1 200"),
        "healthz is up"
    );

    let mut s = TcpStream::connect(&addr).expect("connect");
    write!(s, "POST /v1/shutdown HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "shutdown accepted: {out}");

    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success(), "serve exits 0 after drain");
    let stderr = String::from_utf8_lossy(&output.stderr);

    // Exactly one report render: the drain-path one; the at-exit call is
    // a no-op. Two of either marker means the double-render regressed.
    assert_eq!(
        stderr.matches("obs: trace written to").count(),
        1,
        "report rendered exactly once, stderr:\n{stderr}"
    );
    assert_eq!(
        stderr.matches("obs summary").count(),
        1,
        "summary rendered exactly once, stderr:\n{stderr}"
    );
    assert!(
        std::fs::read_to_string(&trace_path)
            .map(|s| !s.is_empty())
            .unwrap_or(false),
        "trace file written"
    );

    // The access log carried the healthz request with the client's ID.
    let access = stderr
        .lines()
        .find(|l| l.contains("\"id\":\"cli-access-1\""))
        .expect("access log line for the healthz request");
    assert!(access.contains("\"path\":\"/healthz\""), "line: {access}");
    assert!(access.contains("\"status\":200"), "line: {access}");

    let _ = std::fs::remove_dir_all(&dir);
}
