//! Localhost integration tests for `veribug-serve`, covering every
//! acceptance case: happy path (same ranking as the CLI pipeline),
//! malformed JSON → 400, Verilog parse error → 422 with line/col,
//! queue-full → 429, deadline → 504, cache hits (asserted via obs
//! counters), and graceful shutdown draining in-flight work.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use obs::json::{self, Json};
use veribug_serve::{Server, ServerConfig, ServerHandle};

const GOLDEN: &str = "module m(input a, input b, input c, output y);\n\
                      wire t;\nassign t = a & b;\nassign y = t | c;\nendmodule";
const BUGGY: &str = "module m(input a, input b, input c, output y);\n\
                     wire t;\nassign t = a | b;\nassign y = t | c;\nendmodule";

/// A parsed HTTP response.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        json::parse(&self.body).expect("response body is JSON")
    }
}

/// One request over a fresh connection (the server is connection-per-request).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has headers");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_owned(),
    }
}

fn localize_body(runs: usize, cycles: usize) -> String {
    format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\",\"options\":{{\"runs\":{runs},\"cycles\":{cycles}}}}}",
        encode(GOLDEN),
        encode(BUGGY)
    )
}

fn encode(s: &str) -> String {
    let mut out = String::new();
    json::write_str(&mut out, s);
    out
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn localize_matches_the_library_pipeline() {
    let (handle, join) = start(ServerConfig::default());
    let resp = request(handle.addr(), "POST", "/v1/localize", &localize_body(24, 8));
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = resp.json();
    assert_eq!(doc.get("module").unwrap().as_str(), Some("m"));
    assert_eq!(doc.get("total_runs").unwrap().as_num(), Some(24.0));
    assert!(doc.get("failing_runs").unwrap().as_num().unwrap() > 0.0);

    // The exact pipeline the CLI runs, on the same inputs.
    let model = veribug::model::VeriBugModel::new(veribug::model::ModelConfig::default());
    let golden = verilog::parse(GOLDEN).unwrap().top().clone();
    let buggy = verilog::parse(BUGGY).unwrap().top().clone();
    let opts = veribug::LocalizeOptions {
        runs: 24,
        cycles: 8,
        ..Default::default()
    };
    let report = veribug::localize::run(&model, &golden, &buggy, "y", &opts).unwrap();
    let served = doc.get("suspects").unwrap().as_arr().unwrap();
    assert_eq!(served.len(), report.suspects.len());
    for (s, expect) in served.iter().zip(&report.suspects) {
        assert_eq!(
            s.get("stmt").unwrap().as_str(),
            Some(&*expect.stmt.to_string())
        );
        assert_eq!(
            s.get("source").unwrap().as_str(),
            Some(expect.source.as_str())
        );
        let sus = s.get("suspiciousness").unwrap().as_num().unwrap();
        assert!((sus - f64::from(expect.suspiciousness)).abs() < 1e-5);
    }
    assert_eq!(
        doc.get("failing_runs")
            .unwrap()
            .as_num()
            .map(|n| n as usize),
        Some(report.failing_runs),
    );

    // The server's localize path runs the two-pass trace-elision flow:
    // the verdict screen must actually have executed (and elided records)
    // inside this server process, not just in the library comparison run.
    let metrics = request(handle.addr(), "GET", "/metricsz", "");
    assert_eq!(metrics.status, 200);
    let counters = metrics.json();
    let counters = counters.get("counters").unwrap();
    let verdict_runs = counters
        .get("sim.runs_verdict")
        .expect("verdict-mode run counter exported")
        .as_num()
        .unwrap();
    assert!(
        verdict_runs >= 2.0,
        "expected golden + buggy verdict screens, saw {verdict_runs}"
    );
    let elided = counters
        .get("sim.records_elided")
        .expect("elision counter exported")
        .as_num()
        .unwrap();
    assert!(elided > 0.0, "verdict mode must elide execution records");
    stop(&handle, join);
}

#[test]
fn malformed_json_is_400() {
    let (handle, join) = start(ServerConfig::default());
    let resp = request(handle.addr(), "POST", "/v1/localize", "{not json at all");
    assert_eq!(resp.status, 400);
    let doc = resp.json();
    assert_eq!(
        doc.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_json")
    );
    stop(&handle, join);
}

#[test]
fn verilog_parse_error_is_422_with_position() {
    let (handle, join) = start(ServerConfig::default());
    let body = format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\"}}",
        encode("module m(input a, output y);\nassign y = ;\nendmodule"),
        encode(BUGGY)
    );
    let resp = request(handle.addr(), "POST", "/v1/localize", &body);
    assert_eq!(resp.status, 422, "body: {}", resp.body);
    let doc = resp.json();
    let err = doc.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("verilog_parse"));
    assert_eq!(err.get("line").unwrap().as_num(), Some(2.0), "1-based line");
    assert!(
        err.get("col").unwrap().as_num().unwrap() >= 1.0,
        "1-based col"
    );
    stop(&handle, join);
}

#[test]
fn unknown_target_is_422() {
    let (handle, join) = start(ServerConfig::default());
    let body = format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"nope\"}}",
        encode(GOLDEN),
        encode(BUGGY)
    );
    let resp = request(handle.addr(), "POST", "/v1/localize", &body);
    assert_eq!(resp.status, 422);
    assert_eq!(
        resp.json()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("unknown_target")
    );
    stop(&handle, join);
}

#[test]
fn oversized_body_is_413_and_queue_full_is_429() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        max_body_bytes: 256,
        ..ServerConfig::default()
    };
    let (handle, join) = start(config);

    // 413: declared body over the cap. Even this early-rejection path
    // echoes a request ID.
    let resp = request(handle.addr(), "POST", "/v1/localize", &"x".repeat(512));
    assert_eq!(resp.status, 413);
    assert!(resp.header("x-veribug-request-id").is_some());

    // 429: hold the single worker and the single queue slot with idle
    // connections (the worker blocks reading them), then a real request
    // must be rejected by the accept loop.
    let idle1 = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // worker picks up idle1
    let idle2 = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // idle2 sits in the queue
    let resp = request(handle.addr(), "GET", "/healthz", "");
    assert_eq!(resp.status, 429, "body: {}", resp.body);
    assert!(
        resp.header("x-veribug-request-id").is_some(),
        "backpressure rejections echo a request id too"
    );
    let doc = resp.json();
    let err = doc.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("queue_full"));
    assert!(err.get("request_id").unwrap().as_str().is_some());
    drop(idle1);
    drop(idle2);
    stop(&handle, join);
}

#[test]
fn expired_deadline_is_504() {
    let (handle, join) = start(ServerConfig::default());
    let body = format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\",\"options\":{{\"runs\":64,\"cycles\":32,\"deadline_ms\":0}}}}",
        encode(GOLDEN),
        encode(BUGGY)
    );
    let resp = request(handle.addr(), "POST", "/v1/localize", &body);
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    assert_eq!(
        resp.json()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("deadline")
    );
    stop(&handle, join);
}

#[test]
fn repeat_request_hits_the_cache_and_stays_byte_identical() {
    let (handle, join) = start(ServerConfig::default());
    // Unique sources for this test so other tests' cache traffic cannot
    // interfere with the hit/miss assertions.
    let golden = format!("// cache-test\n{GOLDEN}");
    let buggy = format!("// cache-test\n{BUGGY}");
    let body = format!(
        "{{\"golden\":{},\"buggy\":{},\"target\":\"y\",\"options\":{{\"runs\":16,\"cycles\":8}}}}",
        encode(&golden),
        encode(&buggy)
    );
    let cold = request(handle.addr(), "POST", "/v1/localize", &body);
    assert_eq!(cold.status, 200);
    assert_eq!(
        cold.header("x-veribug-cache"),
        Some("golden=miss,buggy=miss")
    );
    let warm = request(handle.addr(), "POST", "/v1/localize", &body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-veribug-cache"), Some("golden=hit,buggy=hit"));
    assert_eq!(
        cold.body, warm.body,
        "cache state never leaks into the body"
    );

    // The obs counters saw the hits (counters are process-global, so
    // assert presence and a sane magnitude rather than an exact value).
    let metrics = request(handle.addr(), "GET", "/metricsz", "");
    assert_eq!(metrics.status, 200);
    let doc = metrics.json();
    let hits = doc
        .get("counters")
        .unwrap()
        .get("serve.cache.hits")
        .expect("hit counter exported")
        .as_num()
        .unwrap();
    assert!(hits >= 2.0, "expected >= 2 cache hits, saw {hits}");
    stop(&handle, join);
}

#[test]
fn healthz_and_metricsz_respond() {
    let (handle, join) = start(ServerConfig::default());
    let health = request(handle.addr(), "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let doc = health.json();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    assert!(doc.get("workers").unwrap().as_num().unwrap() >= 1.0);
    let hash = doc
        .get("weights_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(hash.len(), 16, "weights hash is 16 hex chars: {hash}");
    assert!(hash.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(
        doc.get("model_format").unwrap().as_str(),
        Some(veribug::persist::format_version())
    );

    let metrics = request(handle.addr(), "GET", "/metricsz", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.json().get("counters").is_some());

    let missing = request(handle.addr(), "GET", "/nope", "");
    assert_eq!(missing.status, 404);
    let wrong_method = request(handle.addr(), "GET", "/v1/localize", "");
    assert_eq!(wrong_method.status, 405);
    stop(&handle, join);
}

#[test]
fn analyze_summarizes_the_design() {
    let (handle, join) = start(ServerConfig::default());
    let body = format!("{{\"design\":{},\"target\":\"y\"}}", encode(GOLDEN));
    let resp = request(handle.addr(), "POST", "/v1/analyze", &body);
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = resp.json();
    assert_eq!(doc.get("module").unwrap().as_str(), Some("m"));
    let dep: Vec<&str> = doc
        .get("dep")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter_map(|d| d.as_str())
        .collect();
    assert!(dep.contains(&"a") && dep.contains(&"b") && dep.contains(&"c"));
    assert!(doc.get("statements").unwrap().as_num().unwrap() >= 2.0);
    stop(&handle, join);
}

#[test]
fn shutdown_endpoint_drains_in_flight_requests() {
    let (handle, join) = start(ServerConfig::default());
    let addr = handle.addr();
    // A request heavy enough to still be running when shutdown lands.
    let slow =
        std::thread::spawn(move || request(addr, "POST", "/v1/localize", &localize_body(192, 32)));
    std::thread::sleep(Duration::from_millis(30));
    let resp = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().get("status").unwrap().as_str(),
        Some("draining")
    );
    // The in-flight localize completes with a real answer...
    let slow_resp = slow.join().expect("slow request thread");
    assert_eq!(slow_resp.status, 200, "in-flight request was drained");
    // ...and the listener actually exits.
    join.join().expect("server thread").expect("clean exit");
    // New connections are refused once the listener is gone.
    std::thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect(addr).is_err(), "listener closed");
}
