//! # veribug-obs
//!
//! Zero-dependency (std-only) observability for the VeriBug pipeline:
//!
//! - **Hierarchical spans** ([`span`], [`span_dyn`]) with RAII guards and a
//!   thread-local span stack. Parent context propagates into worker threads
//!   through [`current_context`] / [`with_context`] (wired up inside
//!   `veribug-par`), so flame charts stay connected across fan-outs.
//! - **Typed metrics** — [`LazyCounter`], [`LazyGauge`], [`LazyHistogram`] —
//!   behind a global registry. Counter and histogram updates land in
//!   per-thread shards and are merged by commutative integer addition, so
//!   the merged totals are identical at any thread count and enabling
//!   metrics never perturbs pipeline results (see the differential tests in
//!   `veribug-bench`).
//! - **Three exporters** (see [`export`]): a human-readable summary table,
//!   JSON-lines events, and the Chrome `trace_event` format that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly for flame-chart profiling.
//!
//! Everything is gated on one process-global switch: when disabled (the
//! default), every instrumentation call is a single relaxed atomic load.
//!
//! ## Uniform CLI convention
//!
//! Every VeriBug binary accepts `--obs <path>` (or the `VERIBUG_OBS`
//! environment variable) and calls [`init`] at startup and [`report`] at
//! exit. A `.jsonl` extension selects the JSON-lines exporter; anything
//! else gets a Chrome trace with an embedded `"metrics"` block.
//!
//! ```
//! let _root = veribug_obs::span("demo");
//! {
//!     let _child = veribug_obs::span("demo.child");
//!     static CELLS: veribug_obs::LazyCounter = veribug_obs::LazyCounter::new("demo.cells");
//!     CELLS.add(3);
//! }
//! // With obs disabled (the default) the above costs one atomic load per call.
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod live;
mod metrics;
pub mod rolling;
mod span;
mod state;
pub mod validate;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub use metrics::{HistSummary, LazyCounter, LazyGauge, LazyHistogram};
pub use span::{current_context, span, span_dyn, with_context, SpanContext, SpanGuard};
pub use state::{flush_thread, instant, Report};

/// Process-global master switch. All instrumentation is a no-op while this
/// is false.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Suppresses [`progress_str`] stderr echo when set (`--quiet`).
static QUIET: AtomicBool = AtomicBool::new(false);
/// Output path configured by [`init`]; consumed by [`report`].
static OUT_PATH: Mutex<Option<String>> = Mutex::new(None);
/// Set once [`report`] has emitted; later calls are no-ops. Makes at-exit
/// reporting idempotent when more than one path reaches it (e.g. `veribug
/// serve` draining via `/v1/shutdown` and then returning through `main`'s
/// unconditional `report()` call).
static REPORTED: AtomicBool = AtomicBool::new(false);

/// True when observability collection is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on without configuring an output file (tests,
/// embedders that call the [`export`] functions themselves).
pub fn enable() {
    set_enabled(true);
}

/// Sets the master switch directly. For benchmark harnesses and
/// differential tests that compare enabled-vs-disabled runs within one
/// process; everything recorded so far stays buffered across a toggle.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables collection and remembers where [`report`] should write.
///
/// `path_arg` is the value of a `--obs <path>` flag when the caller saw
/// one; otherwise the `VERIBUG_OBS` environment variable is consulted.
/// When neither is present this is a no-op and collection stays off.
pub fn init(path_arg: Option<&str>) {
    let path = path_arg
        .map(str::to_owned)
        .or_else(|| std::env::var("VERIBUG_OBS").ok())
        .filter(|p| !p.is_empty());
    if let Some(path) = path {
        *OUT_PATH.lock().expect("obs path lock") = Some(path);
        enable();
    }
}

/// Sets progress-line verbosity (`--quiet` suppresses the stderr echo;
/// events are still recorded when collection is enabled).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// True when progress lines should not be echoed to stderr.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emits one progress line: echoed to stderr unless [`quiet`], and recorded
/// as an instant event when collection is enabled. Prefer the
/// [`progress!`](crate::progress) macro.
pub fn progress_str(msg: &str) {
    if !quiet() {
        eprintln!("{msg}");
    }
    if enabled() {
        state::instant_msg("progress", msg);
    }
}

/// `eprintln!`-style progress reporting that respects `--quiet` and records
/// an instant event in the trace when collection is enabled.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress_str(&format!($($arg)*))
    };
}

/// Collects everything recorded so far into a [`Report`] (flushes the
/// calling thread's buffers first). Worker threads must have flushed
/// already: `veribug-par` calls [`flush_thread`] at the end of every
/// worker, and plain spawned threads flush when their TLS drops on exit.
pub fn snapshot() -> Report {
    state::snapshot()
}

/// Clears all recorded events and metric *values* (the metric registry
/// itself persists, handles stay valid). Only the calling thread's live
/// shard is reset; shards of still-running threads are untouched, so call
/// this between fan-outs, not during one. Intended for tests and for
/// benchmark harnesses that measure phases independently.
pub fn reset() {
    state::reset();
}

/// True when [`init`] configured an output path that [`report`] will
/// write. Lets embedders that *might* report early (e.g. a server drain
/// path) decide whether reporting is worthwhile at all.
pub fn output_configured() -> bool {
    OUT_PATH.lock().expect("obs path lock").is_some()
}

/// Writes the configured report file (if [`init`] configured one) and
/// prints the human-readable summary table to stderr (unless quiet).
///
/// Returns the path written, if any. Emission is idempotent: the first
/// call that runs with collection enabled emits, every later call is a
/// no-op returning `None` — so a drain path and the at-exit path can both
/// call this without double-rendering the summary.
pub fn report() -> Option<String> {
    if !enabled() {
        return None;
    }
    if REPORTED.swap(true, Ordering::SeqCst) {
        return None;
    }
    let report = snapshot();
    if !quiet() {
        eprint!("{}", export::summary(&report));
    }
    let path = OUT_PATH.lock().expect("obs path lock").clone()?;
    let rendered = if path.ends_with(".jsonl") {
        export::jsonl(&report)
    } else {
        export::chrome_trace(&report)
    };
    match std::fs::write(&path, rendered) {
        Ok(()) => {
            if !quiet() {
                eprintln!("obs: trace written to {path}");
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("obs: cannot write {path}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Obs state is process-global and tests run concurrently in one
    // process, so every test here works with the *enabled* switch on and
    // asserts only on data it created itself (unique metric names).

    #[test]
    fn disabled_span_is_inert() {
        // Never enables; relies on being cheap and not panicking.
        let g = span("never.recorded");
        drop(g);
        static C: LazyCounter = LazyCounter::new("never.counter");
        C.incr();
    }

    #[test]
    fn spans_nest_and_record() {
        enable();
        {
            let _a = span("test.outer");
            let _b = span("test.inner");
        }
        let r = snapshot();
        let names: Vec<&str> = r.events.iter().map(|e| e.name()).collect();
        assert!(names.contains(&"test.outer"));
        assert!(names.contains(&"test.inner"));
        let outer = r.events.iter().find(|e| e.name() == "test.outer").unwrap();
        let inner = r.events.iter().find(|e| e.name() == "test.inner").unwrap();
        assert_eq!(inner.parent(), outer.id(), "inner's parent is outer");
    }

    #[test]
    fn counters_merge_across_scoped_threads() {
        enable();
        static SHARDED: LazyCounter = LazyCounter::new("test.sharded_adds");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        SHARDED.incr();
                    }
                    // Scope exit can race the TLS drop-flush; flush
                    // explicitly like veribug-par workers do.
                    flush_thread();
                });
            }
        });
        let r = snapshot();
        let total = r.counter("test.sharded_adds").expect("registered");
        assert!(total >= 4000, "expected >= 4000 adds, saw {total}");
        assert_eq!(total % 1000, 0, "adds merge losslessly");
    }

    #[test]
    fn histogram_summarizes() {
        enable();
        static H: LazyHistogram = LazyHistogram::new("test.hist");
        for v in [1u64, 2, 4, 100, 1000] {
            H.record(v);
        }
        let r = snapshot();
        let h = r.histogram("test.hist").expect("registered");
        assert!(h.count >= 5);
        assert!(h.max >= 1000.0);
        assert!(h.min <= 1.0);
    }

    #[test]
    fn report_without_path_is_none() {
        enable();
        assert_eq!(report(), None);
    }
}
