//! Hierarchical spans with RAII guards and thread-local span stacks.

use std::borrow::Cow;

use crate::state::{self, Name, TLS};

/// An open span; records itself (name, thread, start, duration, parent)
/// when dropped. Hold it in a `let _guard = ...` binding for the extent of
/// the stage being measured.
#[must_use = "a span measures the scope of its guard; bind it with `let`"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: Name,
    id: u64,
    parent: u64,
    start_us: u64,
}

/// Opens a span named by a static string. Returns an inert guard while
/// collection is disabled (one atomic load).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    open(Cow::Borrowed(name))
}

/// Opens a span with a formatted name (e.g. `campaign.wave` per design).
/// Prefer [`span`] where the name is static; this allocates only when
/// collection is enabled.
#[inline]
pub fn span_dyn(name: impl FnOnce() -> String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    open(Cow::Owned(name()))
}

fn open(name: Name) -> SpanGuard {
    let id = state::next_span_id();
    let start_us = state::now_us();
    let parent = TLS.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        parent
    });
    SpanGuard {
        inner: Some(OpenSpan {
            name,
            id,
            parent,
            start_us,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let end_us = state::now_us();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // Pop up to and including our id; tolerates guards dropped out
            // of order (e.g. moved out of their creation scope).
            while let Some(top) = t.stack.pop() {
                if top == open.id {
                    break;
                }
            }
        });
        state::record_span(
            open.name,
            open.id,
            open.parent,
            open.start_us,
            end_us.saturating_sub(open.start_us),
        );
    }
}

/// The calling thread's current span id and live-trace key, for
/// propagation into worker threads. Cheap to capture and `Send`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanContext {
    parent: u64,
    trace: u64,
}

/// Captures the current span (and live-trace key, when a request trace is
/// active) as a context that can be handed to another thread. Returns the
/// root context while collection is disabled.
pub fn current_context() -> SpanContext {
    if !crate::enabled() {
        return SpanContext::default();
    }
    TLS.with(|t| {
        let t = t.borrow();
        SpanContext {
            parent: t.stack.last().copied().unwrap_or(0),
            trace: t.trace,
        }
    })
}

/// Runs `f` with `ctx` installed as the thread's base span parent and
/// live-trace key, so spans and counters recorded inside nest under the
/// capturing thread's span *and* attribute to its request trace. Used by
/// `veribug-par` to keep fan-out work attached to the campaign / training
/// span (and the serving request) that spawned it.
pub fn with_context<R>(ctx: SpanContext, f: impl FnOnce() -> R) -> R {
    if ctx.parent == 0 && ctx.trace == 0 {
        return f();
    }
    // Restore on unwind as well, so a panicking task cannot corrupt the
    // thread's stack or trace attribution for subsequent reuse.
    struct RestoreOnDrop {
        parent: u64,
        prev_trace: Option<u64>,
    }
    impl Drop for RestoreOnDrop {
        fn drop(&mut self) {
            if self.parent != 0 {
                TLS.with(|t| {
                    let mut t = t.borrow_mut();
                    while let Some(top) = t.stack.pop() {
                        if top == self.parent {
                            break;
                        }
                    }
                });
            }
            if let Some(prev) = self.prev_trace {
                state::set_thread_trace(prev);
            }
        }
    }
    let prev_trace = if ctx.trace != 0 {
        Some(state::set_thread_trace(ctx.trace))
    } else {
        None
    };
    if ctx.parent != 0 {
        TLS.with(|t| t.borrow_mut().stack.push(ctx.parent));
    }
    let _guard = RestoreOnDrop {
        parent: ctx.parent,
        prev_trace,
    };
    f()
}
