//! Typed metrics behind a cheap global registry.
//!
//! Handles are `static` [`LazyCounter`] / [`LazyGauge`] / [`LazyHistogram`]
//! values: registration happens once on first use (a `OnceLock` behind one
//! mutex-guarded name table), after which every update is a thread-local
//! shard write — no atomics on the hot path and no cross-thread contention.
//! Shards merge by integer addition, so totals are independent of thread
//! count and scheduling.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::state;

/// What a registry slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MetricKind {
    Counter,
    Gauge,
    /// `micros` histograms store fixed-point micro-units (×1e6) recorded
    /// via [`LazyHistogram::record_f64`]; exporters divide back.
    Hist {
        micros: bool,
    },
}

#[derive(Debug, Default)]
struct Registry {
    index: BTreeMap<&'static str, usize>,
    names: Vec<&'static str>,
    kinds: Vec<MetricKind>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    index: BTreeMap::new(),
    names: Vec::new(),
    kinds: Vec::new(),
});

fn register(name: &'static str, kind: MetricKind) -> usize {
    let mut r = REGISTRY.lock().expect("obs registry lock");
    if let Some(&idx) = r.index.get(name) {
        debug_assert_eq!(
            r.kinds[idx], kind,
            "metric {name} re-registered as a different kind"
        );
        return idx;
    }
    let idx = r.names.len();
    r.index.insert(name, idx);
    r.names.push(name);
    r.kinds.push(kind);
    idx
}

/// Snapshot of the registry: `(name, kind, index)` triples in index order.
pub(crate) fn registry_kinds() -> Vec<(&'static str, MetricKind, usize)> {
    let r = REGISTRY.lock().expect("obs registry lock");
    r.names
        .iter()
        .zip(&r.kinds)
        .enumerate()
        .map(|(i, (&n, &k))| (n, k, i))
        .collect()
}

/// A monotonically increasing count (events, cycles, skips). Declare as a
/// `static` and call [`add`](LazyCounter::add) / [`incr`](LazyCounter::incr);
/// a no-op while collection is disabled.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    idx: OnceLock<usize>,
}

impl LazyCounter {
    /// Declares a counter (registration is deferred to first use).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            idx: OnceLock::new(),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() || n == 0 {
            return;
        }
        let idx = *self
            .idx
            .get_or_init(|| register(self.name, MetricKind::Counter));
        state::shard_counter_add(idx, n);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A last-write-wins value (dataset size, final loss, configured threads).
/// Set from coordinator code, not hot loops.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    idx: OnceLock<usize>,
}

impl LazyGauge {
    /// Declares a gauge (registration is deferred to first use).
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            idx: OnceLock::new(),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = *self
            .idx
            .get_or_init(|| register(self.name, MetricKind::Gauge));
        state::gauge_set(idx, v);
    }
}

/// A distribution over `u64` samples in power-of-two buckets (cycle counts,
/// step times in µs). [`LazyHistogram::new_micros`] variants accept `f64`
/// samples stored as saturating ×1e6 fixed-point so shard merges stay
/// integer-exact and thread-count independent.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    micros: bool,
    idx: OnceLock<usize>,
}

impl LazyHistogram {
    /// Declares a histogram over raw `u64` samples.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            micros: false,
            idx: OnceLock::new(),
        }
    }

    /// Declares a histogram over `f64` samples stored in micro-units.
    pub const fn new_micros(name: &'static str) -> Self {
        LazyHistogram {
            name,
            micros: true,
            idx: OnceLock::new(),
        }
    }

    fn slot(&self) -> usize {
        *self.idx.get_or_init(|| {
            register(
                self.name,
                MetricKind::Hist {
                    micros: self.micros,
                },
            )
        })
    }

    /// Records one raw sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        state::shard_hist_record(self.slot(), v);
    }

    /// Records one `f64` sample into a micro-unit histogram (negative and
    /// non-finite samples clamp to zero; values past `u64::MAX` µ saturate).
    #[inline]
    pub fn record_f64(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let fixed = if v.is_finite() && v > 0.0 {
            (v * 1e6).min(u64::MAX as f64) as u64
        } else {
            0
        };
        state::shard_hist_record(self.slot(), fixed);
    }
}

/// Number of power-of-two buckets: bucket `k` holds samples in
/// `[2^(k-1), 2^k)` (bucket 0 holds zeros).
const BUCKETS: usize = 65;

/// Raw mergeable histogram state: per-bucket counts plus exact integer
/// aggregates. Addition-only, so shard merges commute.
#[derive(Debug, Clone)]
pub(crate) struct HistData {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistData {
    pub(crate) fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub(crate) fn merge(&mut self, other: &HistData) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at or below which `q` of the samples fall, estimated as the
    /// upper bound of the containing power-of-two bucket.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k == 0 {
                    0
                } else if k >= 64 {
                    u64::MAX
                } else {
                    (1u64 << k) - 1
                };
            }
        }
        self.max
    }

    pub(crate) fn summary(&self, micros: bool) -> HistSummary {
        let scale = if micros { 1e-6 } else { 1.0 };
        HistSummary {
            count: self.count,
            sum: (self.sum as f64) * scale,
            min: if self.count == 0 {
                0.0
            } else {
                (self.min as f64) * scale
            },
            max: (self.max as f64) * scale,
            mean: if self.count == 0 {
                0.0
            } else {
                (self.sum as f64) * scale / (self.count as f64)
            },
            p50: (self.quantile(0.50) as f64) * scale,
            p90: (self.quantile(0.90) as f64) * scale,
            p99: (self.quantile(0.99) as f64) * scale,
        }
    }
}

/// Exported histogram summary. Percentiles are upper bounds of the
/// containing power-of-two bucket (≤ 2× overestimate); `count`, `sum`,
/// `min`, `max` and `mean` are exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Exact mean.
    pub mean: f64,
    /// Median, bucket-resolution.
    pub p50: f64,
    /// 90th percentile, bucket-resolution.
    pub p90: f64,
    /// 99th percentile, bucket-resolution.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = HistData::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary(false);
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500500.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // p50 of 1..=1000 is ~500; bucket upper bound gives 511.
        assert_eq!(s.p50, 511.0);
        assert!(s.p99 >= 1000.0);
    }

    #[test]
    fn hist_merge_is_lossless() {
        let mut a = HistData::default();
        let mut b = HistData::default();
        let mut whole = HistData::default();
        for v in 0..100u64 {
            whole.record(v * 17);
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
        }
        a.merge(&b);
        assert_eq!(a.summary(false), whole.summary(false));
    }

    #[test]
    fn micro_summary_scales_back() {
        let mut h = HistData::default();
        h.record(2_500_000); // 2.5 recorded via record_f64
        let s = h.summary(true);
        assert_eq!(s.count, 1);
        assert!((s.sum - 2.5).abs() < 1e-9);
        assert!((s.mean - 2.5).abs() < 1e-9);
    }
}
