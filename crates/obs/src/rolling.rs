//! Rolling time-window aggregation of per-endpoint request statistics.
//!
//! `/metricsz` answers "what has this process done since boot"; the
//! rolling window answers "what is it doing *right now*" — the question
//! `/statusz` asks. The window is 60 one-second buckets keyed by absolute
//! second since the process epoch: recording into a bucket whose stored
//! second is stale resets it first, so idle periods age out without a
//! background sweeper thread and a snapshot only merges buckets that are
//! genuinely recent.
//!
//! Per bucket and endpoint we keep a request count, status-class counts,
//! a power-of-two latency histogram (the same [`HistData`] the batch
//! metrics use, so percentile semantics match `/metricsz`), per-stage
//! span-time sums, and cache hit/miss attribution. Endpoint labels are
//! normalized by the caller (the serve router passes known routes
//! verbatim and folds everything else into `"other"`), and each bucket
//! additionally caps distinct endpoints, so cardinality is bounded even
//! against adversarial paths.

use std::sync::Mutex;

use crate::metrics::{HistData, HistSummary};
use crate::state::{self, Name};

/// Window length in one-second buckets.
pub const WINDOW_SECONDS: u64 = 60;
/// Distinct endpoint labels per bucket; overflow folds into `"other"`.
const MAX_ENDPOINTS: usize = 16;
/// Distinct stage names per endpoint bucket; overflow is dropped (stage
/// names come from our own span names, so this is a safety bound, not a
/// working limit).
const MAX_STAGES: usize = 32;

#[derive(Debug, Default)]
struct EndpointBucket {
    path: String,
    count: u64,
    s2xx: u64,
    s4xx: u64,
    s5xx: u64,
    latency: HistData,
    /// Total span time by stage name, microseconds.
    stages: Vec<(Name, u64)>,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Debug, Default)]
struct Bucket {
    /// Absolute second (since process epoch) this bucket holds; a write
    /// for a different second resets it.
    second: u64,
    endpoints: Vec<EndpointBucket>,
}

static WINDOW: Mutex<Vec<Bucket>> = Mutex::new(Vec::new());

/// Records one completed request into the current one-second bucket.
/// `stages` is the per-stage span-time breakdown (summed µs by span name).
pub(crate) fn record(
    path: &str,
    status: u16,
    dur_us: u64,
    stages: &[(Name, u64)],
    cache_hits: u64,
    cache_misses: u64,
) {
    let now_s = state::now_us() / 1_000_000;
    let idx = (now_s % WINDOW_SECONDS) as usize;
    let mut w = WINDOW.lock().expect("obs rolling lock");
    if w.is_empty() {
        w.resize_with(WINDOW_SECONDS as usize, Bucket::default);
    }
    let bucket = &mut w[idx];
    if bucket.second != now_s {
        bucket.second = now_s;
        bucket.endpoints.clear();
    }
    let ep = match bucket.endpoints.iter_mut().position(|e| e.path == path) {
        Some(i) => &mut bucket.endpoints[i],
        None => {
            if bucket.endpoints.len() >= MAX_ENDPOINTS {
                // Fold into the overflow label, appending it if needed
                // (so a bucket holds at most MAX_ENDPOINTS + 1 entries
                // and no prior endpoint's data is displaced).
                match bucket.endpoints.iter().position(|e| e.path == "other") {
                    Some(i) => &mut bucket.endpoints[i],
                    None => {
                        bucket.endpoints.push(EndpointBucket {
                            path: "other".to_owned(),
                            ..EndpointBucket::default()
                        });
                        bucket.endpoints.last_mut().expect("just pushed")
                    }
                }
            } else {
                bucket.endpoints.push(EndpointBucket {
                    path: path.to_owned(),
                    ..EndpointBucket::default()
                });
                bucket.endpoints.last_mut().expect("just pushed")
            }
        }
    };
    ep.count += 1;
    match status {
        200..=299 => ep.s2xx += 1,
        500..=599 => ep.s5xx += 1,
        _ => ep.s4xx += 1,
    }
    ep.latency.record(dur_us);
    ep.cache_hits += cache_hits;
    ep.cache_misses += cache_misses;
    for (name, us) in stages {
        match ep.stages.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 += us,
            None => {
                if ep.stages.len() < MAX_STAGES {
                    ep.stages.push((name.clone(), *us));
                }
            }
        }
    }
}

/// Rolling statistics for one endpoint over the snapshot window.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// Endpoint label (a route path, or `"other"`).
    pub path: String,
    /// Requests completed in the window.
    pub count: u64,
    /// 2xx responses.
    pub s2xx: u64,
    /// 4xx responses (and anything not 2xx/5xx).
    pub s4xx: u64,
    /// 5xx responses.
    pub s5xx: u64,
    /// Requests per second over the window.
    pub rps: f64,
    /// End-to-end latency in **seconds** (the histogram records µs;
    /// percentiles are power-of-two bucket upper bounds).
    pub latency: HistSummary,
    /// Total span time by stage name, microseconds, descending.
    pub stages: Vec<(String, u64)>,
    /// Design-cache hits attributed to this endpoint's requests.
    pub cache_hits: u64,
    /// Design-cache misses attributed to this endpoint's requests.
    pub cache_misses: u64,
}

/// A merged view over the most recent `window_s` seconds.
#[derive(Debug, Clone, Default)]
pub struct RollingSnapshot {
    /// Seconds of history merged (≤ [`WINDOW_SECONDS`]).
    pub window_s: u64,
    /// Per-endpoint statistics, busiest first.
    pub endpoints: Vec<EndpointStats>,
}

/// Merges the buckets of the last `window_s` seconds (clamped to the
/// window length) into per-endpoint statistics.
pub fn snapshot(window_s: u64) -> RollingSnapshot {
    let window_s = window_s.clamp(1, WINDOW_SECONDS);
    let now_s = state::now_us() / 1_000_000;
    let oldest = now_s.saturating_sub(window_s - 1);
    let w = WINDOW.lock().expect("obs rolling lock");
    let mut merged: Vec<(HistData, EndpointStats)> = Vec::new();
    for bucket in w.iter() {
        if bucket.second < oldest || bucket.second > now_s {
            continue;
        }
        for ep in &bucket.endpoints {
            let slot = match merged.iter_mut().position(|(_, m)| m.path == ep.path) {
                Some(i) => &mut merged[i],
                None => {
                    merged.push((
                        HistData::default(),
                        EndpointStats {
                            path: ep.path.clone(),
                            count: 0,
                            s2xx: 0,
                            s4xx: 0,
                            s5xx: 0,
                            rps: 0.0,
                            latency: HistSummary::default(),
                            stages: Vec::new(),
                            cache_hits: 0,
                            cache_misses: 0,
                        },
                    ));
                    merged.last_mut().expect("just pushed")
                }
            };
            slot.0.merge(&ep.latency);
            slot.1.count += ep.count;
            slot.1.s2xx += ep.s2xx;
            slot.1.s4xx += ep.s4xx;
            slot.1.s5xx += ep.s5xx;
            slot.1.cache_hits += ep.cache_hits;
            slot.1.cache_misses += ep.cache_misses;
            for (name, us) in &ep.stages {
                match slot.1.stages.iter_mut().find(|(n, _)| n == &**name) {
                    Some(s) => s.1 += us,
                    None => slot.1.stages.push((name.to_string(), *us)),
                }
            }
        }
    }
    let mut endpoints: Vec<EndpointStats> = merged
        .into_iter()
        .map(|(hist, mut stats)| {
            stats.latency = hist.summary(true); // µs samples → seconds out
            stats.rps = stats.count as f64 / window_s as f64;
            stats
                .stages
                .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            stats
        })
        .collect();
    endpoints.sort_by(|a, b| b.count.cmp(&a.count).then(a.path.cmp(&b.path)));
    RollingSnapshot {
        window_s,
        endpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    /// The window is process-global and the flood test fills the current
    /// second's bucket to the cardinality cap, so these tests serialize
    /// and each starts on a fresh one-second bucket.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn fresh_second() {
        let in_second = state::now_us() % 1_000_000;
        std::thread::sleep(std::time::Duration::from_micros(
            1_000_000 - in_second + 2_000,
        ));
    }

    #[test]
    fn records_aggregate_per_endpoint() {
        let _serial = TEST_LOCK.lock().unwrap();
        crate::enable();
        fresh_second();
        let stages = [(Cow::Borrowed("rolling.stage"), 500u64)];
        record("/rolling/test-a", 200, 1_000, &stages, 1, 0);
        record("/rolling/test-a", 200, 3_000, &stages, 0, 1);
        record("/rolling/test-a", 504, 9_000, &[], 0, 0);
        record("/rolling/test-b", 200, 2_000, &[], 0, 0);
        let snap = snapshot(2);
        let a = snap
            .endpoints
            .iter()
            .find(|e| e.path == "/rolling/test-a")
            .expect("endpoint a present");
        assert_eq!(a.count, 3);
        assert_eq!(a.s2xx, 2);
        assert_eq!(a.s5xx, 1);
        assert_eq!(a.cache_hits, 1);
        assert_eq!(a.cache_misses, 1);
        assert_eq!(a.latency.count, 3);
        assert!(a.latency.max >= 0.009, "9ms max in seconds");
        let stage = a
            .stages
            .iter()
            .find(|(n, _)| n == "rolling.stage")
            .expect("stage breakdown");
        assert_eq!(stage.1, 1_000, "stage time sums across requests");
        assert!(snap.endpoints.iter().any(|e| e.path == "/rolling/test-b"));
    }

    #[test]
    fn endpoint_cardinality_is_bounded() {
        let _serial = TEST_LOCK.lock().unwrap();
        crate::enable();
        fresh_second();
        for i in 0..3 * MAX_ENDPOINTS {
            record(&format!("/rolling/flood-{i}"), 200, 100, &[], 0, 0);
        }
        // The flood may straddle a one-second bucket boundary, so allow
        // two buckets' worth (plus endpoints from concurrently running
        // tests — obs state is process-global).
        let snap = snapshot(2);
        assert!(
            snap.endpoints.len() <= 2 * MAX_ENDPOINTS + 8,
            "bounded endpoints, saw {}",
            snap.endpoints.len()
        );
        let total: u64 = snap
            .endpoints
            .iter()
            .filter(|e| e.path.starts_with("/rolling/flood-") || e.path == "other")
            .map(|e| e.count)
            .sum();
        assert!(
            total >= 3 * MAX_ENDPOINTS as u64,
            "overflow folds into 'other', not dropped (saw {total})"
        );
    }

    #[test]
    fn snapshot_clamps_window() {
        let snap = snapshot(10_000);
        assert_eq!(snap.window_s, WINDOW_SECONDS);
        let snap = snapshot(0);
        assert_eq!(snap.window_s, 1);
    }
}
