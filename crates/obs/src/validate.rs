//! Schema self-checks for the exporter outputs, used by the
//! `obs_validate` binary (CI runs it against `bench_pipeline --smoke
//! --obs obs.json`) and by tests.

use std::collections::BTreeMap;

use crate::json::{self, Json};

/// What a successful validation saw, for `--require-*` checks and summary
/// printing.
#[derive(Debug, Default)]
pub struct Validated {
    /// Total trace events (spans + instants + metadata).
    pub events: usize,
    /// Distinct span names.
    pub span_names: Vec<String>,
    /// Counter totals from the metrics block.
    pub counters: BTreeMap<String, f64>,
}

/// Validates a Chrome `trace_event` export produced by
/// [`crate::export::chrome_trace`].
///
/// Checks the envelope (`traceEvents` array + `metrics` object), then every
/// event: required `name`/`ph`/`pid`/`tid` fields, a known phase, `ts` on
/// span/instant events and `dur` on complete events.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn chrome_trace(src: &str) -> Result<Validated, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut v = Validated {
        events: events.len(),
        ..Validated::default()
    };
    for (i, e) in events.iter().enumerate() {
        let ctx = |field: &str| format!("traceEvents[{i}]: bad or missing `{field}`");
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        e.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("pid"))?;
        e.get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("tid"))?;
        match ph {
            "X" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("dur"))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative dur"));
                }
                v.span_names.push(name.to_owned());
            }
            "i" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
            }
            "M" => {}
            other => return Err(format!("traceEvents[{i}]: unknown phase `{other}`")),
        }
    }
    v.span_names.sort();
    v.span_names.dedup();
    let metrics = doc.get("metrics").ok_or("missing `metrics` block")?;
    v.counters = metrics_counters(metrics)?;
    for section in ["gauges", "histograms"] {
        metrics
            .get(section)
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("metrics: `{section}` missing or not an object"))?;
    }
    for (name, h) in metrics.get("histograms").unwrap().as_obj().unwrap() {
        for field in ["count", "sum", "mean", "min", "max", "p50", "p90", "p99"] {
            h.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("histogram `{name}`: bad or missing `{field}`"))?;
        }
    }
    Ok(v)
}

/// Validates a JSON-lines export produced by [`crate::export::jsonl`]:
/// every line parses and carries a known `type` with that type's required
/// fields.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn jsonl(src: &str) -> Result<Validated, String> {
    let mut v = Validated::default();
    for (lineno, line) in src.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let e = json::parse(line).map_err(|m| err(&m))?;
        let ty = e
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing `type`"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing `name`"))?;
        match ty {
            "span" => {
                for field in ["tid", "id", "parent", "ts_us", "dur_us"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("span missing `{field}`")))?;
                }
                v.events += 1;
                v.span_names.push(name.to_owned());
            }
            "instant" => {
                for field in ["tid", "parent", "ts_us"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("instant missing `{field}`")))?;
                }
                v.events += 1;
            }
            "counter" => {
                let value = e
                    .get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err("counter missing `value`"))?;
                v.counters.insert(name.to_owned(), value);
            }
            "gauge" => {
                e.get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err("gauge missing `value`"))?;
            }
            "histogram" => {
                for field in ["count", "sum", "mean", "min", "max", "p50", "p90", "p99"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("histogram missing `{field}`")))?;
                }
            }
            other => return Err(err(&format!("unknown type `{other}`"))),
        }
    }
    v.span_names.sort();
    v.span_names.dedup();
    Ok(v)
}

fn metrics_counters(metrics: &Json) -> Result<BTreeMap<String, f64>, String> {
    let counters = metrics
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("metrics: `counters` missing or not an object")?;
    counters
        .iter()
        .map(|(k, v)| {
            v.as_num()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("counter `{k}` is not a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export;
    use crate::state::Report;

    fn live_report() -> Report {
        crate::enable();
        {
            let _g = crate::span("validate.test_stage");
            static C: crate::LazyCounter = crate::LazyCounter::new("validate.test_counter");
            C.add(7);
            static H: crate::LazyHistogram = crate::LazyHistogram::new("validate.test_hist");
            H.record(42);
            crate::instant("validate.test_point", 1.5);
        }
        crate::snapshot()
    }

    #[test]
    fn chrome_export_validates() {
        let r = live_report();
        let v = chrome_trace(&export::chrome_trace(&r)).expect("valid");
        assert!(v.span_names.iter().any(|n| n == "validate.test_stage"));
        assert!(v.counters.contains_key("validate.test_counter"));
    }

    #[test]
    fn jsonl_export_validates() {
        let r = live_report();
        let v = jsonl(&export::jsonl(&r)).expect("valid");
        assert!(v.span_names.iter().any(|n| n == "validate.test_stage"));
    }

    #[test]
    fn corrupted_trace_is_rejected() {
        assert!(chrome_trace("{}").is_err());
        assert!(chrome_trace("{\"traceEvents\": [{}], \"metrics\": {}}").is_err());
        assert!(jsonl("{\"type\":\"span\",\"name\":\"x\"}").is_err());
        assert!(jsonl("not json").is_err());
    }
}
