//! Schema self-checks for the exporter outputs, used by the
//! `obs_validate` binary (CI runs it against `bench_pipeline --smoke
//! --obs obs.json`) and by tests.

use std::collections::BTreeMap;

use crate::json::{self, Json};

/// What a successful validation saw, for `--require-*` checks and summary
/// printing.
#[derive(Debug, Default)]
pub struct Validated {
    /// Total trace events (spans + instants + metadata).
    pub events: usize,
    /// Distinct span names.
    pub span_names: Vec<String>,
    /// Counter totals from the metrics block.
    pub counters: BTreeMap<String, f64>,
}

/// Validates a Chrome `trace_event` export produced by
/// [`crate::export::chrome_trace`].
///
/// Checks the envelope (`traceEvents` array + `metrics` object), then every
/// event: required `name`/`ph`/`pid`/`tid` fields, a known phase, `ts` on
/// span/instant events and `dur` on complete events.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn chrome_trace(src: &str) -> Result<Validated, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut v = Validated {
        events: events.len(),
        ..Validated::default()
    };
    for (i, e) in events.iter().enumerate() {
        let ctx = |field: &str| format!("traceEvents[{i}]: bad or missing `{field}`");
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        e.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("pid"))?;
        e.get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("tid"))?;
        match ph {
            "X" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("dur"))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative dur"));
                }
                v.span_names.push(name.to_owned());
            }
            "i" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
            }
            "M" => {}
            other => return Err(format!("traceEvents[{i}]: unknown phase `{other}`")),
        }
    }
    v.span_names.sort();
    v.span_names.dedup();
    let metrics = doc.get("metrics").ok_or("missing `metrics` block")?;
    v.counters = metrics_counters(metrics)?;
    for section in ["gauges", "histograms"] {
        metrics
            .get(section)
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("metrics: `{section}` missing or not an object"))?;
    }
    for (name, h) in metrics.get("histograms").unwrap().as_obj().unwrap() {
        for field in ["count", "sum", "mean", "min", "max", "p50", "p90", "p99"] {
            h.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("histogram `{name}`: bad or missing `{field}`"))?;
        }
    }
    Ok(v)
}

/// Validates a JSON-lines export produced by [`crate::export::jsonl`]:
/// every line parses and carries a known `type` with that type's required
/// fields.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn jsonl(src: &str) -> Result<Validated, String> {
    let mut v = Validated::default();
    for (lineno, line) in src.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let e = json::parse(line).map_err(|m| err(&m))?;
        let ty = e
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing `type`"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing `name`"))?;
        match ty {
            "span" => {
                for field in ["tid", "id", "parent", "ts_us", "dur_us"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("span missing `{field}`")))?;
                }
                v.events += 1;
                v.span_names.push(name.to_owned());
            }
            "instant" => {
                for field in ["tid", "parent", "ts_us"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("instant missing `{field}`")))?;
                }
                v.events += 1;
            }
            "counter" => {
                let value = e
                    .get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err("counter missing `value`"))?;
                v.counters.insert(name.to_owned(), value);
            }
            "gauge" => {
                e.get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err("gauge missing `value`"))?;
            }
            "histogram" => {
                for field in ["count", "sum", "mean", "min", "max", "p50", "p90", "p99"] {
                    e.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| err(&format!("histogram missing `{field}`")))?;
                }
            }
            other => return Err(err(&format!("unknown type `{other}`"))),
        }
    }
    v.span_names.sort();
    v.span_names.dedup();
    Ok(v)
}

/// Validates a `/tracez` JSON page as served by `veribug serve`.
///
/// Checks the envelope (`ring` occupancy object + `traces` array), then
/// every trace: required identity fields, a known `keep` verdict
/// consistent with `sampled`, digests carrying no span tree, span records
/// with the full field set and in-trace parent linkage (skipped when the
/// trace reports dropped spans), and numeric counter attributions.
///
/// The returned [`Validated`] counts every span as an event, collects
/// distinct span names, and sums counter attributions across traces.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn tracez(src: &str) -> Result<Validated, String> {
    let doc = json::parse(src)?;
    let ring = doc.get("ring").ok_or("missing `ring`")?;
    for field in ["retained", "sampled", "active"] {
        ring.get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("ring: bad or missing `{field}`"))?;
    }
    let traces = doc
        .get("traces")
        .ok_or("missing `traces`")?
        .as_arr()
        .ok_or("`traces` is not an array")?;
    let mut v = Validated::default();
    for (i, t) in traces.iter().enumerate() {
        let ctx = |field: &str| format!("traces[{i}]: bad or missing `{field}`");
        for field in ["id", "method", "path"] {
            t.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| ctx(field))?;
        }
        for field in ["seq", "status", "start_us", "dur_us", "dropped_spans"] {
            t.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(field))?;
        }
        let keep = t
            .get("keep")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("keep"))?;
        if !matches!(keep, "error" | "slow" | "digest") {
            return Err(format!("traces[{i}]: unknown keep verdict `{keep}`"));
        }
        let sampled = t
            .get("sampled")
            .and_then(Json::as_bool)
            .ok_or_else(|| ctx("sampled"))?;
        if sampled == (keep == "digest") {
            return Err(format!(
                "traces[{i}]: `sampled`={sampled} contradicts keep=`{keep}`"
            ));
        }
        let spans = t
            .get("spans")
            .ok_or_else(|| ctx("spans"))?
            .as_arr()
            .ok_or_else(|| ctx("spans"))?;
        if keep == "digest" && !spans.is_empty() {
            return Err(format!("traces[{i}]: digest trace carries a span tree"));
        }
        let mut ids = Vec::with_capacity(spans.len());
        for (j, s) in spans.iter().enumerate() {
            let sctx = |field: &str| format!("traces[{i}].spans[{j}]: bad or missing `{field}`");
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| sctx("name"))?;
            for field in ["tid", "id", "parent", "ts_us", "dur_us"] {
                s.get(field)
                    .and_then(Json::as_num)
                    .ok_or_else(|| sctx(field))?;
            }
            ids.push(s.get("id").and_then(Json::as_num).unwrap_or(0.0));
            v.events += 1;
            v.span_names.push(name.to_owned());
        }
        let dropped = t.get("dropped_spans").and_then(Json::as_num).unwrap_or(0.0);
        if dropped == 0.0 {
            for (j, s) in spans.iter().enumerate() {
                let parent = s.get("parent").and_then(Json::as_num).unwrap_or(0.0);
                if parent != 0.0 && !ids.contains(&parent) {
                    return Err(format!(
                        "traces[{i}].spans[{j}]: parent {parent} not in trace"
                    ));
                }
            }
        }
        let counters = t
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| ctx("counters"))?;
        for (name, value) in counters {
            let n = value
                .as_num()
                .ok_or_else(|| format!("traces[{i}]: counter `{name}` is not a number"))?;
            *v.counters.entry(name.clone()).or_insert(0.0) += n;
        }
    }
    v.span_names.sort();
    v.span_names.dedup();
    Ok(v)
}

/// Validates a `BENCH_accuracy.json` report produced by `accuracy_bench`
/// (schema `veribug-accuracy v1`).
///
/// Checks the envelope (schema tag, seed manifest, weights hash, the
/// cross-thread determinism verdict — `false` is a violation, since the
/// artifact's numbers are meaningless if they depend on the worker count),
/// the `overall`/`designs`/`classes` precision blocks (counts plus
/// `p_at_1/3/5` and `mrr`, all within `[0, 1]`), and both quality
/// distributions.
///
/// The returned [`Validated`] carries the overall `injected`/`observable`
/// counts as counters so `--require-counter-nonzero observable` works.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn accuracy(src: &str) -> Result<Validated, String> {
    let doc = json::parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != "veribug-accuracy v1" {
        return Err(format!("unknown schema `{schema}`"));
    }
    let manifest = doc.get("seed_manifest").ok_or("missing `seed_manifest`")?;
    for field in ["train_seed", "campaign_seed_base", "rvdg_seed"] {
        manifest
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("seed_manifest: bad or missing `{field}`"))?;
    }
    let threads = manifest
        .get("threads_checked")
        .and_then(Json::as_arr)
        .ok_or("seed_manifest: `threads_checked` missing or not an array")?;
    if threads.is_empty() || threads.iter().any(|t| t.as_num().is_none()) {
        return Err("seed_manifest: `threads_checked` must be a non-empty number array".into());
    }
    let hash = doc
        .get("weights_hash")
        .and_then(Json::as_str)
        .ok_or("missing `weights_hash`")?;
    if hash.len() != 16 || !hash.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("`weights_hash` is not 16 hex chars: `{hash}`"));
    }
    match doc
        .get("deterministic_across_threads")
        .and_then(Json::as_bool)
    {
        Some(true) => {}
        Some(false) => return Err("`deterministic_across_threads` is false".into()),
        None => return Err("missing `deterministic_across_threads`".into()),
    }
    let check_agg = |ctx: &str, block: &Json| -> Result<(f64, f64), String> {
        let num = |field: &str| {
            block
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("{ctx}: bad or missing `{field}`"))
        };
        let injected = num("injected")?;
        let observable = num("observable")?;
        for field in ["p_at_1", "p_at_3", "p_at_5", "mrr"] {
            let p = num(field)?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{ctx}: `{field}` = {p} outside [0, 1]"));
            }
        }
        Ok((injected, observable))
    };
    let overall = doc.get("overall").ok_or("missing `overall`")?;
    let (injected, observable) = check_agg("overall", overall)?;
    let mut v = Validated::default();
    v.counters.insert("injected".to_owned(), injected);
    v.counters.insert("observable".to_owned(), observable);
    let designs = doc
        .get("designs")
        .and_then(Json::as_arr)
        .ok_or("`designs` missing or not an array")?;
    if designs.is_empty() {
        return Err("`designs` is empty".into());
    }
    for (i, d) in designs.iter().enumerate() {
        for field in ["name", "target"] {
            d.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("designs[{i}]: bad or missing `{field}`"))?;
        }
        let corpus = d
            .get("corpus")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("designs[{i}]: bad or missing `corpus`"))?;
        if !matches!(corpus, "catalog" | "rvdg") {
            return Err(format!("designs[{i}]: unknown corpus `{corpus}`"));
        }
        check_agg(&format!("designs[{i}]"), d)?;
        v.events += 1;
    }
    let classes = doc
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or("`classes` missing or not an array")?;
    if classes.is_empty() {
        return Err("`classes` is empty".into());
    }
    for (i, c) in classes.iter().enumerate() {
        c.get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("classes[{i}]: bad or missing `kind`"))?;
        check_agg(&format!("classes[{i}]"), c)?;
    }
    let dists = doc.get("distributions").ok_or("missing `distributions`")?;
    for name in ["attention_entropy", "score_margin"] {
        let d = dists
            .get(name)
            .ok_or_else(|| format!("distributions: missing `{name}`"))?;
        for field in ["count", "mean", "min", "max", "p50", "p90", "p99"] {
            d.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("distribution `{name}`: bad or missing `{field}`"))?;
        }
    }
    Ok(v)
}

/// Validates a `/metricsz` JSON body as served by `veribug serve` (and
/// the shard front): the `counters`/`gauges`/`histograms` envelope,
/// numeric values throughout, the full percentile field set on every
/// histogram, and a numeric `dropped_events`.
///
/// The returned [`Validated`] merges counters *and* gauges into
/// `counters`, so `--require-counter-nonzero` works against either (e.g.
/// `store.hits`, a counter, or `store.bytes`, a gauge).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn metricsz(src: &str) -> Result<Validated, String> {
    let doc = json::parse(src)?;
    let mut v = Validated {
        counters: metrics_counters(&doc)?,
        ..Validated::default()
    };
    let gauges = doc
        .get("gauges")
        .and_then(Json::as_obj)
        .ok_or("`gauges` missing or not an object")?;
    for (name, value) in gauges {
        let n = value
            .as_num()
            .ok_or_else(|| format!("gauge `{name}` is not a number"))?;
        v.counters.entry(name.clone()).or_insert(n);
    }
    let histograms = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("`histograms` missing or not an object")?;
    for (name, h) in histograms {
        for field in ["count", "sum", "mean", "min", "max", "p50", "p90", "p99"] {
            h.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("histogram `{name}`: bad or missing `{field}`"))?;
        }
    }
    doc.get("dropped_events")
        .and_then(Json::as_num)
        .ok_or("missing `dropped_events`")?;
    v.events = v.counters.len();
    Ok(v)
}

fn metrics_counters(metrics: &Json) -> Result<BTreeMap<String, f64>, String> {
    let counters = metrics
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("metrics: `counters` missing or not an object")?;
    counters
        .iter()
        .map(|(k, v)| {
            v.as_num()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("counter `{k}` is not a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export;
    use crate::state::Report;

    fn live_report() -> Report {
        crate::enable();
        {
            let _g = crate::span("validate.test_stage");
            static C: crate::LazyCounter = crate::LazyCounter::new("validate.test_counter");
            C.add(7);
            static H: crate::LazyHistogram = crate::LazyHistogram::new("validate.test_hist");
            H.record(42);
            crate::instant("validate.test_point", 1.5);
        }
        crate::snapshot()
    }

    #[test]
    fn chrome_export_validates() {
        let r = live_report();
        let v = chrome_trace(&export::chrome_trace(&r)).expect("valid");
        assert!(v.span_names.iter().any(|n| n == "validate.test_stage"));
        assert!(v.counters.contains_key("validate.test_counter"));
    }

    #[test]
    fn jsonl_export_validates() {
        let r = live_report();
        let v = jsonl(&export::jsonl(&r)).expect("valid");
        assert!(v.span_names.iter().any(|n| n == "validate.test_stage"));
    }

    #[test]
    fn tracez_page_validates() {
        let good = r#"{
            "ring": {"retained": 2, "sampled": 1, "active": 0},
            "traces": [
                {"id": "abc123", "seq": 2, "method": "POST", "path": "/v1/localize",
                 "status": 200, "start_us": 10, "dur_us": 250, "keep": "slow",
                 "sampled": true, "dropped_spans": 0,
                 "spans": [
                    {"name": "serve.request", "tid": 1, "id": 7, "parent": 0, "ts_us": 10, "dur_us": 250},
                    {"name": "serve.cache", "tid": 1, "id": 8, "parent": 7, "ts_us": 12, "dur_us": 3}
                 ],
                 "counters": {"sim.cycles": 64}},
                {"id": "def456", "seq": 1, "method": "GET", "path": "/healthz",
                 "status": 200, "start_us": 1, "dur_us": 5, "keep": "digest",
                 "sampled": false, "dropped_spans": 0, "spans": [], "counters": {}}
            ]
        }"#;
        let v = tracez(good).expect("valid tracez page");
        assert_eq!(v.events, 2);
        assert_eq!(v.span_names, ["serve.cache", "serve.request"]);
        assert_eq!(v.counters.get("sim.cycles"), Some(&64.0));
    }

    #[test]
    fn corrupt_tracez_is_rejected() {
        assert!(tracez("{}").is_err(), "missing envelope");
        assert!(
            tracez(r#"{"ring": {"retained": 0, "sampled": 0, "active": 0}, "traces": [{}]}"#)
                .is_err(),
            "trace missing fields"
        );
        // `sampled` contradicting the keep verdict.
        let contradiction = r#"{
            "ring": {"retained": 1, "sampled": 0, "active": 0},
            "traces": [{"id": "x", "seq": 1, "method": "GET", "path": "/healthz",
              "status": 200, "start_us": 0, "dur_us": 1, "keep": "digest",
              "sampled": true, "dropped_spans": 0, "spans": [], "counters": {}}]
        }"#;
        assert!(tracez(contradiction).is_err());
        // A span whose parent is not part of the trace.
        let orphan = r#"{
            "ring": {"retained": 1, "sampled": 1, "active": 0},
            "traces": [{"id": "x", "seq": 1, "method": "GET", "path": "/healthz",
              "status": 500, "start_us": 0, "dur_us": 1, "keep": "error",
              "sampled": true, "dropped_spans": 0,
              "spans": [{"name": "s", "tid": 0, "id": 2, "parent": 99, "ts_us": 0, "dur_us": 1}],
              "counters": {}}]
        }"#;
        assert!(tracez(orphan).is_err());
    }

    fn accuracy_fixture() -> String {
        r#"{
            "schema": "veribug-accuracy v1",
            "seed_manifest": {"train_seed": 1234, "campaign_seed_base": 1, "rvdg_seed": 2,
                              "threads_checked": [1, 2, 8]},
            "weights_hash": "00f1e2d3c4b5a697",
            "deterministic_across_threads": true,
            "overall": {"injected": 20, "observable": 18, "p_at_1": 0.5, "p_at_3": 0.6,
                        "p_at_5": 0.7, "mrr": 0.55},
            "designs": [{"name": "wb_mux_2", "target": "wbs0_we_o", "corpus": "catalog",
                         "injected": 4, "observable": 4, "p_at_1": 0.75, "p_at_3": 0.75,
                         "p_at_5": 0.75, "mrr": 0.75}],
            "classes": [{"kind": "negation", "injected": 5, "observable": 5, "p_at_1": 0.2,
                         "p_at_3": 0.2, "p_at_5": 0.2, "mrr": 0.2}],
            "distributions": {
                "attention_entropy": {"count": 50, "mean": 0.4, "min": 0, "max": 1.3,
                                      "p50": 0.4, "p90": 0.9, "p99": 1.2},
                "score_margin": {"count": 179, "mean": 2.5, "min": 0.06, "max": 5.0,
                                 "p50": 2.7, "p90": 4.3, "p99": 4.7}
            }
        }"#
        .to_owned()
    }

    #[test]
    fn accuracy_report_validates() {
        let v = accuracy(&accuracy_fixture()).expect("valid accuracy report");
        assert_eq!(v.events, 1);
        assert_eq!(v.counters.get("observable"), Some(&18.0));
    }

    #[test]
    fn corrupt_accuracy_report_is_rejected() {
        assert!(accuracy("{}").is_err(), "missing envelope");
        let nondeterministic = accuracy_fixture().replace(
            "\"deterministic_across_threads\": true",
            "\"deterministic_across_threads\": false",
        );
        assert!(accuracy(&nondeterministic).is_err());
        let bad_hash = accuracy_fixture().replace("00f1e2d3c4b5a697", "nothex");
        assert!(accuracy(&bad_hash).is_err());
        let out_of_range = accuracy_fixture().replace("\"p_at_5\": 0.7", "\"p_at_5\": 1.7");
        assert!(accuracy(&out_of_range).is_err());
        let no_designs = accuracy_fixture().replace("\"corpus\": \"catalog\"", "\"corpus\": \"x\"");
        assert!(accuracy(&no_designs).is_err());
    }

    #[test]
    fn metricsz_body_validates() {
        let r = live_report();
        let v = metricsz(&export::metricsz(&r)).expect("valid metricsz body");
        // Counters are process-global and other tests bump the same one,
        // so assert presence and positivity rather than an exact total.
        assert!(v.counters.get("validate.test_counter").copied() > Some(0.0));
    }

    #[test]
    fn corrupt_metricsz_is_rejected() {
        assert!(metricsz("{}").is_err(), "missing envelope");
        assert!(
            metricsz(r#"{"counters":{"a":"x"},"gauges":{},"histograms":{},"dropped_events":0}"#)
                .is_err(),
            "non-numeric counter"
        );
        assert!(
            metricsz(
                r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1}},"dropped_events":0}"#
            )
            .is_err(),
            "histogram missing percentile fields"
        );
        assert!(
            metricsz(r#"{"counters":{},"gauges":{},"histograms":{}}"#).is_err(),
            "missing dropped_events"
        );
    }

    #[test]
    fn corrupted_trace_is_rejected() {
        assert!(chrome_trace("{}").is_err());
        assert!(chrome_trace("{\"traceEvents\": [{}], \"metrics\": {}}").is_err());
        assert!(jsonl("{\"type\":\"span\",\"name\":\"x\"}").is_err());
        assert!(jsonl("not json").is_err());
    }
}
