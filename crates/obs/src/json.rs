//! A minimal JSON reader and writer helpers.
//!
//! The workspace is offline (the vendored `serde` is a compile-surface stub
//! that does not serialize), so the exporters hand-render JSON and this
//! module provides the recursive-descent parser the schema validator and
//! tests use to read it back. It supports the full JSON grammar, including
//! `\u` surrogate pairs (lone surrogates decode to U+FFFD, as lenient JSON
//! readers do).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved by sorting — duplicate keys keep the
    /// last value, as most JSON readers do).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            out.push(self.unicode_escape(hi)?);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_owned())?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Resolves the scalar of a `\u` escape whose first unit is `hi`:
    /// a high surrogate consumes the following `\uXXXX` low surrogate to
    /// form the astral scalar; lone surrogates become U+FFFD.
    fn unicode_escape(&mut self, hi: u32) -> Result<char, String> {
        if !(0xD800..=0xDBFF).contains(&hi) {
            // BMP scalar, or a lone low surrogate (→ U+FFFD).
            return Ok(char::from_u32(hi).unwrap_or('\u{fffd}'));
        }
        if self.bytes.get(self.pos) != Some(&b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
            return Ok('\u{fffd}');
        }
        let save = self.pos;
        self.pos += 2;
        let lo = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&lo) {
            let code = 0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            Ok(char::from_u32(code).unwrap_or('\u{fffd}'))
        } else {
            // The next escape is not the matching half: the high surrogate
            // is lone; leave the escape for the main loop to re-read.
            self.pos = save;
            Ok('\u{fffd}')
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a valid JSON number (non-finite values render as 0).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v:.6}");
        }
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n\"y\""}, "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn write_roundtrips_through_parse() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));

        let mut n = String::new();
        write_f64(&mut n, 2.5);
        assert_eq!(parse(&n).unwrap().as_num(), Some(2.5));
        let mut n2 = String::new();
        write_f64(&mut n2, f64::NAN);
        assert_eq!(parse(&n2).unwrap().as_num(), Some(0.0));
        let mut n3 = String::new();
        write_f64(&mut n3, 42.0);
        assert_eq!(n3, "42");
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_scalars() {
        // U+1F600 = D83D DE00.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        // U+10437 = D801 DC37, in the middle of other content.
        assert_eq!(
            parse("\"a\\uD801\\uDC37b\"").unwrap().as_str(),
            Some("a\u{10437}b")
        );
        // Raw (unescaped) astral scalars pass straight through too.
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn lone_surrogates_decode_to_replacement() {
        // Lone high surrogate at end of string.
        assert_eq!(parse(r#""\ud83dx""#).unwrap().as_str(), Some("\u{fffd}x"));
        // Lone low surrogate.
        assert_eq!(parse(r#""\ude00""#).unwrap().as_str(), Some("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape: the second
        // escape still decodes on its own.
        assert_eq!(parse(r#""\ud83dA""#).unwrap().as_str(), Some("\u{fffd}A"));
        // Truncated pair is still a syntax error.
        assert!(parse(r#""\ud83d\u12""#).is_err());
    }

    /// Deterministically expands a seed into a string mixing ASCII,
    /// control characters, BMP scalars, and astral scalars (the vendored
    /// proptest has no string strategy, so strings grow from integers).
    fn seed_to_string(seed: u64, len: usize) -> String {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                // SplitMix64 step.
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                match z % 4 {
                    0 => char::from_u32((z as u32) % 0x80).unwrap_or('a'),
                    1 => char::from_u32((z as u32) % 0x20).unwrap_or('\u{1}'),
                    2 => char::from_u32(0x1_0000 + (z as u32) % 0xF_0000).unwrap_or('\u{1F600}'),
                    _ => char::from_u32((z as u32) % 0xD800).unwrap_or('\u{fffd}'),
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// write_str output always parses back to the exact input,
        /// covering control characters and astral scalars.
        #[test]
        fn write_str_round_trips(seed in 0u64..u64::MAX, len in 0usize..64) {
            let original = seed_to_string(seed, len);
            let mut rendered = String::new();
            write_str(&mut rendered, &original);
            let back = parse(&rendered).expect("rendered string parses");
            prop_assert_eq!(back.as_str(), Some(original.as_str()));
        }

        /// Escaped-at-the-source round-trip: rendering a parsed document
        /// again yields the same value (write → parse → write fixpoint).
        #[test]
        fn write_parse_write_is_fixpoint(seed in 0u64..u64::MAX, len in 1usize..48) {
            let original = seed_to_string(seed, len);
            let mut first = String::new();
            write_str(&mut first, &original);
            let parsed = parse(&first).expect("parses");
            let mut second = String::new();
            write_str(&mut second, parsed.as_str().expect("string"));
            prop_assert_eq!(first, second);
        }
    }
}
