//! Validates an exported observability file against the exporter schema.
//!
//! CI runs this against the trace emitted by `bench_pipeline --smoke --obs
//! obs.json`:
//!
//! ```text
//! obs_validate obs.json --require-span simulate --require-counter-nonzero sim.comb_skips
//! ```
//!
//! `--tracez` switches to the live `/tracez` page schema served by
//! `veribug serve` (the CI serve job curls the endpoint and validates the
//! capture):
//!
//! ```text
//! obs_validate --tracez tracez.json --require-span serve.request
//! ```
//!
//! `--accuracy` switches to the `BENCH_accuracy.json` schema produced by
//! `accuracy_bench` (CI validates the smoke run's report):
//!
//! ```text
//! obs_validate --accuracy accuracy_smoke.json --require-counter-nonzero observable
//! ```
//!
//! `--metricsz` switches to the `/metricsz` body schema served by
//! `veribug serve` and the shard front; gauges are folded into the
//! counter namespace so `--require-counter-nonzero` works against either
//! (the CI store job requires the `store.*` counters):
//!
//! ```text
//! obs_validate --metricsz metricsz.json --require-counter-nonzero store.hits
//! ```
//!
//! Exit status is nonzero on a schema violation or an unmet requirement.

use std::process::ExitCode;

use veribug_obs::validate;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut tracez = false;
    let mut accuracy = false;
    let mut metricsz = false;
    let mut require_spans = Vec::new();
    let mut require_counters = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tracez" => tracez = true,
            "--accuracy" => accuracy = true,
            "--metricsz" => metricsz = true,
            "--require-span" => match args.next() {
                Some(name) => require_spans.push(name),
                None => return usage("--require-span needs a value"),
            },
            "--require-counter-nonzero" => match args.next() {
                Some(name) => require_counters.push(name),
                None => return usage("--require-counter-nonzero needs a value"),
            },
            "-h" | "--help" => return usage(""),
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return usage("missing trace file path");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if accuracy {
        validate::accuracy(&src)
    } else if metricsz {
        validate::metricsz(&src)
    } else if tracez {
        validate::tracez(&src)
    } else if path.ends_with(".jsonl") {
        validate::jsonl(&src)
    } else {
        validate::chrome_trace(&src)
    };
    let v = match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_validate: {path}: schema violation: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for span in &require_spans {
        if !v.span_names.iter().any(|n| n == span) {
            eprintln!("obs_validate: {path}: required span `{span}` not present");
            ok = false;
        }
    }
    for counter in &require_counters {
        match v.counters.get(counter.as_str()) {
            Some(value) if *value > 0.0 => {}
            Some(_) => {
                eprintln!("obs_validate: {path}: counter `{counter}` is zero");
                ok = false;
            }
            None => {
                eprintln!("obs_validate: {path}: required counter `{counter}` not present");
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!(
        "obs_validate: {path}: OK ({} events, {} spans, {} counters)",
        v.events,
        v.span_names.len(),
        v.counters.len()
    );
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("obs_validate: {err}");
    }
    eprintln!(
        "usage: obs_validate [--tracez | --accuracy | --metricsz] <trace.json|trace.jsonl> \
         [--require-span NAME]... [--require-counter-nonzero NAME]..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
