//! The three exporters: human-readable summary, JSON-lines events, and
//! Chrome `trace_event` (load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>).

use std::fmt::Write as _;

use crate::json::{write_f64, write_str};
use crate::state::{Event, Report};

/// Renders the Chrome `trace_event` JSON object format:
///
/// ```json
/// { "traceEvents": [...], "displayTimeUnit": "ms", "metrics": {...} }
/// ```
///
/// Spans become complete (`"ph": "X"`) events, instants become `"ph": "i"`
/// events, and thread-name metadata rows out the flame chart. The
/// `"metrics"` block (counters / gauges / histogram summaries) is ignored
/// by trace viewers but carries the campaign's numeric diagnostics.
pub fn chrome_trace(report: &Report) -> String {
    let pid = std::process::id();
    let mut out = String::with_capacity(4096 + report.events.len() * 160);
    out.push_str("{\n\"traceEvents\": [\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    // Thread-name metadata, one per tid seen.
    let mut tids: Vec<u64> = report
        .events
        .iter()
        .map(|e| match e {
            Event::Span { tid, .. } | Event::Instant { tid, .. } => *tid,
        })
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        push_sep(&mut out, &mut first);
        let label = if tid == 0 {
            "main".to_owned()
        } else {
            format!("worker-{tid}")
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
        );
        write_str(&mut out, &label);
        out.push_str("}}");
    }

    for e in &report.events {
        push_sep(&mut out, &mut first);
        match e {
            Event::Span {
                name,
                tid,
                id,
                parent,
                ts_us,
                dur_us,
            } => {
                out.push_str("{\"name\":");
                write_str(&mut out, name);
                let _ = write!(
                    out,
                    ",\"cat\":\"veribug\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"id\":{id},\"parent\":{parent}}}}}"
                );
            }
            Event::Instant {
                name,
                tid,
                parent,
                ts_us,
                value,
                msg,
            } => {
                out.push_str("{\"name\":");
                write_str(&mut out, name);
                let _ = write!(
                    out,
                    ",\"cat\":\"veribug\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"parent\":{parent}"
                );
                if let Some(v) = value {
                    out.push_str(",\"value\":");
                    write_f64(&mut out, *v);
                }
                if let Some(m) = msg {
                    out.push_str(",\"message\":");
                    write_str(&mut out, m);
                }
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(out, "\"droppedEvents\": {},", report.dropped_events);
    out.push_str("\"metrics\": ");
    metrics_block(&mut out, report);
    out.push_str("\n}\n");
    out
}

/// Renders the `"metrics"` object shared by the Chrome and JSON-lines
/// exporters.
fn metrics_block(out: &mut String, report: &Report) {
    out.push_str("{\n  \"counters\": {");
    let mut first = true;
    for (name, v) in &report.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_str(out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for (name, v) in &report.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_str(out, name);
        out.push_str(": ");
        write_f64(out, *v);
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for (name, h) in &report.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_str(out, name);
        let _ = write!(out, ": {{\"count\": {}, \"sum\": ", h.count);
        write_f64(out, h.sum);
        out.push_str(", \"min\": ");
        write_f64(out, h.min);
        out.push_str(", \"max\": ");
        write_f64(out, h.max);
        out.push_str(", \"mean\": ");
        write_f64(out, h.mean);
        out.push_str(", \"p50\": ");
        write_f64(out, h.p50);
        out.push_str(", \"p90\": ");
        write_f64(out, h.p90);
        out.push_str(", \"p99\": ");
        write_f64(out, h.p99);
        out.push('}');
    }
    out.push_str("\n  }\n}");
}

/// Renders JSON-lines: one event object per line (`"type"` is `"span"` or
/// `"instant"`), followed by one line per metric (`"counter"`, `"gauge"`,
/// `"histogram"`). Machine-parseable without loading the whole file.
pub fn jsonl(report: &Report) -> String {
    let mut out = String::with_capacity(report.events.len() * 120);
    for e in &report.events {
        match e {
            Event::Span {
                name,
                tid,
                id,
                parent,
                ts_us,
                dur_us,
            } => {
                out.push_str("{\"type\":\"span\",\"name\":");
                write_str(&mut out, name);
                let _ = writeln!(
                    out,
                    ",\"tid\":{tid},\"id\":{id},\"parent\":{parent},\"ts_us\":{ts_us},\"dur_us\":{dur_us}}}"
                );
            }
            Event::Instant {
                name,
                tid,
                parent,
                ts_us,
                value,
                msg,
            } => {
                out.push_str("{\"type\":\"instant\",\"name\":");
                write_str(&mut out, name);
                let _ = write!(out, ",\"tid\":{tid},\"parent\":{parent},\"ts_us\":{ts_us}");
                if let Some(v) = value {
                    out.push_str(",\"value\":");
                    write_f64(&mut out, *v);
                }
                if let Some(m) = msg {
                    out.push_str(",\"message\":");
                    write_str(&mut out, m);
                }
                out.push_str("}\n");
            }
        }
    }
    for (name, v) in &report.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        write_str(&mut out, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (name, v) in &report.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        write_str(&mut out, name);
        out.push_str(",\"value\":");
        write_f64(&mut out, *v);
        out.push_str("}\n");
    }
    for (name, h) in &report.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        write_str(&mut out, name);
        let _ = write!(out, ",\"count\":{},\"sum\":", h.count);
        write_f64(&mut out, h.sum);
        out.push_str(",\"mean\":");
        write_f64(&mut out, h.mean);
        out.push_str(",\"min\":");
        write_f64(&mut out, h.min);
        out.push_str(",\"max\":");
        write_f64(&mut out, h.max);
        out.push_str(",\"p50\":");
        write_f64(&mut out, h.p50);
        out.push_str(",\"p90\":");
        write_f64(&mut out, h.p90);
        out.push_str(",\"p99\":");
        write_f64(&mut out, h.p99);
        out.push_str("}\n");
    }
    out
}

/// Renders the metrics-only snapshot a monitoring endpoint wants (the
/// `GET /metricsz` body of `veribug serve`): one JSON object with
/// `counters`, `gauges`, `histograms`, and `dropped_events` — no span
/// events, so the payload stays small on long-lived processes.
pub fn metricsz(report: &Report) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in report.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in report.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, name);
        out.push(':');
        write_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in report.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, name);
        let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count);
        write_f64(&mut out, h.sum);
        out.push_str(",\"mean\":");
        write_f64(&mut out, h.mean);
        out.push_str(",\"min\":");
        write_f64(&mut out, h.min);
        out.push_str(",\"max\":");
        write_f64(&mut out, h.max);
        out.push_str(",\"p50\":");
        write_f64(&mut out, h.p50);
        out.push_str(",\"p90\":");
        write_f64(&mut out, h.p90);
        out.push_str(",\"p99\":");
        write_f64(&mut out, h.p99);
        out.push('}');
    }
    let _ = writeln!(out, "}},\"dropped_events\":{}}}", report.dropped_events);
    out
}

/// Renders the human-readable summary: top spans by total self-recorded
/// time, then every counter, gauge, and histogram.
pub fn summary(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("── obs summary ────────────────────────────────────────────\n");

    // Aggregate span durations by name.
    let mut agg: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for e in &report.events {
        if let Event::Span { name, dur_us, .. } = e {
            let slot = agg.entry(name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += dur_us;
        }
    }
    if !agg.is_empty() {
        let mut rows: Vec<(&str, u64, u64)> =
            agg.into_iter().map(|(n, (c, d))| (n, c, d)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let _ = writeln!(out, "{:<34} {:>8} {:>14}", "span", "count", "total");
        for (name, count, dur) in rows {
            let _ = writeln!(out, "{:<34} {:>8} {:>13.3}s", name, count, dur as f64 / 1e6);
        }
    }
    if !report.counters.is_empty() {
        let _ = writeln!(out, "{:<34} {:>23}", "counter", "value");
        for (name, v) in &report.counters {
            let _ = writeln!(out, "{name:<34} {v:>23}");
        }
    }
    if !report.gauges.is_empty() {
        let _ = writeln!(out, "{:<34} {:>23}", "gauge", "value");
        for (name, v) in &report.gauges {
            let _ = writeln!(out, "{name:<34} {v:>23.6}");
        }
    }
    if !report.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &report.histograms {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                name, h.count, h.mean, h.p50, h.p99, h.max
            );
        }
    }
    if report.dropped_events > 0 {
        let _ = writeln!(
            out,
            "(!) {} events dropped past the retention cap",
            report.dropped_events
        );
    }
    out.push_str("───────────────────────────────────────────────────────────\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_report() -> Report {
        let mut r = Report::default();
        r.events.push(Event::Span {
            name: "stage.one".into(),
            tid: 0,
            id: 1,
            parent: 0,
            ts_us: 10,
            dur_us: 500,
        });
        r.events.push(Event::Instant {
            name: "progress".into(),
            tid: 0,
            parent: 1,
            ts_us: 20,
            value: Some(0.25),
            msg: Some("building \"stuff\"".into()),
        });
        r.counters.insert("sim.cycles".into(), 123);
        r.gauges.insert("train.final_loss".into(), 0.125);
        r.histograms
            .insert("lat".into(), crate::HistSummary::default());
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let rendered = chrome_trace(&sample_report());
        let doc = json::parse(&rendered).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 thread-name metadata + 1 span + 1 instant.
        assert_eq!(events.len(), 3);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("has a complete event");
        assert_eq!(span.get("name").unwrap().as_str(), Some("stage.one"));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(500.0));
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("sim.cycles")
                .unwrap()
                .as_num(),
            Some(123.0)
        );
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let rendered = jsonl(&sample_report());
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 5); // span + instant + counter + gauge + histogram
        for line in lines {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn summary_mentions_everything() {
        let s = summary(&sample_report());
        assert!(s.contains("stage.one"));
        assert!(s.contains("sim.cycles"));
        assert!(s.contains("train.final_loss"));
    }

    #[test]
    fn metricsz_is_valid_json_without_events() {
        let rendered = metricsz(&sample_report());
        let doc = json::parse(&rendered).expect("metricsz parses");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("sim.cycles")
                .unwrap()
                .as_num(),
            Some(123.0)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("train.final_loss")
                .unwrap()
                .as_num(),
            Some(0.125)
        );
        let hist = doc.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(hist.get("count").unwrap().as_num(), Some(0.0));
        assert_eq!(doc.get("dropped_events").unwrap().as_num(), Some(0.0));
        assert!(doc.get("traceEvents").is_none(), "no span events");
    }
}
