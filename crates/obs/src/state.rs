//! Process-global and per-thread collection state.
//!
//! Every recording call lands in a thread-local [`ThreadBuf`]; the buffer
//! flushes into the process-global sinks when its thread exits (TLS drop)
//! or when [`snapshot`] runs on that thread. Counter and histogram shards
//! merge by integer addition — commutative and associative — so merged
//! totals never depend on thread scheduling or worker count.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::live::TraceSpan;
use crate::metrics::{registry_kinds, HistData, HistSummary, MetricKind};

/// A span or event name: almost always a `&'static str`, occasionally
/// formatted (e.g. per-design spans).
pub(crate) type Name = Cow<'static, str>;

/// Soft cap on retained events; beyond it new events are counted but
/// dropped, so a runaway instrumentation loop cannot exhaust memory.
const MAX_EVENTS: usize = 1 << 20;

/// One recorded event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A completed span.
    Span {
        /// Span name.
        name: Name,
        /// Stable small thread id (0 = first thread seen).
        tid: u64,
        /// Unique span id.
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Start, microseconds since process epoch.
        ts_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time measurement or progress message.
    Instant {
        /// Event name.
        name: Name,
        /// Stable small thread id.
        tid: u64,
        /// Enclosing span id (0 = root).
        parent: u64,
        /// Timestamp, microseconds since process epoch.
        ts_us: u64,
        /// Numeric payload, when the event carries one.
        value: Option<f64>,
        /// Text payload (progress lines).
        msg: Option<String>,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. } | Event::Instant { name, .. } => name,
        }
    }

    /// The span id (0 for instants).
    pub fn id(&self) -> u64 {
        match self {
            Event::Span { id, .. } => *id,
            Event::Instant { .. } => 0,
        }
    }

    /// The parent span id (0 = root).
    pub fn parent(&self) -> u64 {
        match self {
            Event::Span { parent, .. } | Event::Instant { parent, .. } => *parent,
        }
    }

    /// Start timestamp in microseconds since the process epoch.
    pub fn ts_us(&self) -> u64 {
        match self {
            Event::Span { ts_us, .. } | Event::Instant { ts_us, .. } => *ts_us,
        }
    }
}

/// Everything collected so far, merged across threads. Produced by
/// [`crate::snapshot`]; consumed by the [`crate::export`] functions.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All events, ordered by start time.
    pub events: Vec<Event>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Events discarded past the retention cap.
    pub dropped_events: u64,
}

impl Report {
    /// Looks up a counter total.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Looks up a histogram summary.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms.get(name)
    }

    /// Names of all recorded spans, deduplicated.
    pub fn span_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::Span { .. }))
            .map(Event::name)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Merged cross-thread sinks.
#[derive(Debug, Default)]
struct Global {
    events: Vec<Event>,
    dropped: u64,
    /// Indexed by metric registry index.
    counters: Vec<u64>,
    hists: Vec<HistData>,
    gauges: Vec<Option<f64>>,
}

static GLOBAL: Mutex<Global> = Mutex::new(Global {
    events: Vec::new(),
    dropped: 0,
    counters: Vec::new(),
    hists: Vec::new(),
    gauges: Vec::new(),
});

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Microseconds since the first observability call in this process.
pub(crate) fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Trace data drained from one thread: spans tagged with their trace key,
/// plus the per-trace counter shard (if any delta accumulated).
pub(crate) type TraceDrain = (Vec<(u64, TraceSpan)>, Option<(u64, Vec<u64>)>);

/// Per-thread trace-span buffer flush threshold: keeps the buffer bounded
/// while a long request runs, without touching the live-trace lock on
/// every span.
const TRACE_SPAN_FLUSH: usize = 1024;

/// Per-thread buffers, flushed on thread exit.
pub(crate) struct ThreadBuf {
    pub(crate) tid: u64,
    /// Live span-id stack; the top is the current parent.
    pub(crate) stack: Vec<u64>,
    events: Vec<Event>,
    /// Counter shard, indexed by metric registry index.
    counters: Vec<u64>,
    /// Histogram shard, indexed by metric registry index.
    hists: Vec<HistData>,
    /// Live-trace key spans and counters on this thread attribute to
    /// (0 = none). Installed by `live::begin` / `with_context`.
    pub(crate) trace: u64,
    /// Completed spans awaiting routing into their trace, each tagged with
    /// the trace key current when it was recorded.
    trace_spans: Vec<(u64, TraceSpan)>,
    /// Per-trace counter shard, indexed by metric registry index;
    /// attributed to `trace` and flushed on trace switch.
    trace_counters: Vec<u64>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
            counters: Vec::new(),
            hists: Vec::new(),
            trace: 0,
            trace_spans: Vec::new(),
            trace_counters: Vec::new(),
        }
    }

    /// Takes the pending trace spans and (if any delta accumulated) the
    /// per-trace counter shard, for routing via `live::absorb`. Must be
    /// called *outside* the global sink lock — `absorb` takes the live
    /// lock and the two must never nest.
    fn take_trace(&mut self) -> TraceDrain {
        let spans = std::mem::take(&mut self.trace_spans);
        let shard = if self.trace != 0 && self.trace_counters.iter().any(|&c| c != 0) {
            Some((self.trace, std::mem::take(&mut self.trace_counters)))
        } else {
            self.trace_counters.clear();
            None
        };
        (spans, shard)
    }

    fn flush_into(&mut self, g: &mut Global) {
        let room = MAX_EVENTS.saturating_sub(g.events.len());
        if self.events.len() > room {
            g.dropped += (self.events.len() - room) as u64;
            self.events.truncate(room);
        }
        g.events.append(&mut self.events);
        if g.counters.len() < self.counters.len() {
            g.counters.resize(self.counters.len(), 0);
        }
        for (total, shard) in g.counters.iter_mut().zip(&self.counters) {
            *total += shard;
        }
        self.counters.clear();
        if g.hists.len() < self.hists.len() {
            g.hists.resize_with(self.hists.len(), HistData::default);
        }
        for (total, shard) in g.hists.iter_mut().zip(&self.hists) {
            total.merge(shard);
        }
        self.hists.clear();
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() || !self.counters.is_empty() || !self.hists.is_empty() {
            if let Ok(mut g) = GLOBAL.lock() {
                self.flush_into(&mut g);
            }
        }
        let (spans, shard) = self.take_trace();
        if !spans.is_empty() || shard.is_some() {
            crate::live::absorb(spans, shard);
        }
    }
}

thread_local! {
    pub(crate) static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Records a completed span into the calling thread's buffer (and, when a
/// live trace is installed, into the thread's trace buffer as well).
pub(crate) fn record_span(name: Name, id: u64, parent: u64, ts_us: u64, dur_us: u64) {
    let overflow = TLS.with(|t| {
        let mut t = t.borrow_mut();
        let tid = t.tid;
        if t.trace != 0 {
            let trace = t.trace;
            t.trace_spans.push((
                trace,
                TraceSpan {
                    name: name.clone(),
                    tid,
                    id,
                    parent,
                    ts_us,
                    dur_us,
                },
            ));
        }
        t.events.push(Event::Span {
            name,
            tid,
            id,
            parent,
            ts_us,
            dur_us,
        });
        if t.trace_spans.len() >= TRACE_SPAN_FLUSH {
            Some(std::mem::take(&mut t.trace_spans))
        } else {
            None
        }
    });
    if let Some(spans) = overflow {
        crate::live::absorb(spans, None);
    }
}

/// Installs `key` as the calling thread's live-trace key, returning the
/// previous key. Flushes the per-trace counter shard of the outgoing trace
/// first, so deltas never leak across traces on reused pool threads.
pub(crate) fn set_thread_trace(key: u64) -> u64 {
    let (prev, shard) = TLS.with(|t| {
        let mut t = t.borrow_mut();
        let prev = t.trace;
        let shard = if prev != key && prev != 0 && t.trace_counters.iter().any(|&c| c != 0) {
            Some((prev, std::mem::take(&mut t.trace_counters)))
        } else {
            None
        };
        t.trace = key;
        (prev, shard)
    });
    if shard.is_some() {
        crate::live::absorb(Vec::new(), shard);
    }
    prev
}

/// Records a named numeric instant event (e.g. a per-epoch loss) under the
/// current span. No-op while collection is disabled.
pub fn instant(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    push_instant(Cow::Borrowed(name), Some(value), None);
}

/// Records a textual instant event (progress lines).
pub(crate) fn instant_msg(name: &'static str, msg: &str) {
    push_instant(Cow::Borrowed(name), None, Some(msg.to_owned()));
}

fn push_instant(name: Name, value: Option<f64>, msg: Option<String>) {
    let ts_us = now_us();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let tid = t.tid;
        let parent = t.stack.last().copied().unwrap_or(0);
        t.events.push(Event::Instant {
            name,
            tid,
            parent,
            ts_us,
            value,
            msg,
        });
    });
}

/// Adds `n` to the counter shard slot `idx` (and the per-trace shard when
/// a live trace is installed).
pub(crate) fn shard_counter_add(idx: usize, n: u64) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.counters.len() <= idx {
            t.counters.resize(idx + 1, 0);
        }
        t.counters[idx] += n;
        if t.trace != 0 {
            if t.trace_counters.len() <= idx {
                t.trace_counters.resize(idx + 1, 0);
            }
            t.trace_counters[idx] += n;
        }
    });
}

/// Records `v` into the histogram shard slot `idx`.
pub(crate) fn shard_hist_record(idx: usize, v: u64) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.hists.len() <= idx {
            t.hists.resize_with(idx + 1, HistData::default);
        }
        t.hists[idx].record(v);
    });
}

/// Sets gauge slot `idx` (gauges are set-last-wins and global; they are
/// written from coordinator code, not hot loops).
pub(crate) fn gauge_set(idx: usize, v: f64) {
    let mut g = GLOBAL.lock().expect("obs global lock");
    if g.gauges.len() <= idx {
        g.gauges.resize(idx + 1, None);
    }
    g.gauges[idx] = Some(v);
}

/// Flushes the calling thread's buffers into the global sinks.
///
/// Worker threads should call this before returning: `std::thread::scope`
/// can observe a task as finished *before* the thread's TLS destructors run,
/// so relying on the drop-flush alone races with a `snapshot` taken right
/// after the scope exits. `veribug-par` calls this at the end of every
/// worker; the TLS drop remains a safety net for plain spawned threads.
pub fn flush_thread() {
    let (spans, shard) = TLS.with(|t| t.borrow_mut().take_trace());
    if !spans.is_empty() || shard.is_some() {
        crate::live::absorb(spans, shard);
    }
    let mut g = GLOBAL.lock().expect("obs global lock");
    TLS.with(|t| t.borrow_mut().flush_into(&mut g));
}

/// Flushes the calling thread and assembles the merged [`Report`].
pub(crate) fn snapshot() -> Report {
    let (spans, shard) = TLS.with(|t| t.borrow_mut().take_trace());
    if !spans.is_empty() || shard.is_some() {
        crate::live::absorb(spans, shard);
    }
    let mut g = GLOBAL.lock().expect("obs global lock");
    TLS.with(|t| t.borrow_mut().flush_into(&mut g));
    let mut events = g.events.clone();
    events.sort_by_key(|e| (e.ts_us(), e.id()));
    let mut report = Report {
        events,
        dropped_events: g.dropped,
        ..Report::default()
    };
    for (name, kind, idx) in registry_kinds() {
        match kind {
            MetricKind::Counter => {
                let v = g.counters.get(idx).copied().unwrap_or(0);
                report.counters.insert(name.to_owned(), v);
            }
            MetricKind::Gauge => {
                if let Some(v) = g.gauges.get(idx).copied().flatten() {
                    report.gauges.insert(name.to_owned(), v);
                }
            }
            MetricKind::Hist { micros } => {
                let h = g.hists.get(idx).cloned().unwrap_or_default();
                report.histograms.insert(name.to_owned(), h.summary(micros));
            }
        }
    }
    report
}

/// Clears global sinks and the calling thread's shard.
pub(crate) fn reset() {
    let mut g = GLOBAL.lock().expect("obs global lock");
    g.events.clear();
    g.dropped = 0;
    g.counters.clear();
    g.hists.clear();
    g.gauges.clear();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.events.clear();
        t.counters.clear();
        t.hists.clear();
        t.trace_spans.clear();
        t.trace_counters.clear();
    });
}
