//! Live request telemetry: per-request trace IDs, per-trace span trees and
//! counter deltas, and a fixed-capacity ring of completed traces with
//! tail-based sampling.
//!
//! The batch exporters in [`crate::export`] answer "what did this process
//! do since boot"; this module answers "what did *that request* do, and
//! which recent requests were slow or failed" — the question a serving
//! fleet asks while the process is still running.
//!
//! ## Life of a trace
//!
//! 1. The server mints (or honors) a request ID and calls [`begin`], which
//!    registers an [`ActiveTrace`] and installs the trace key in the
//!    calling thread's TLS.
//! 2. While the key is installed, every completed span is *also* recorded
//!    into a per-thread trace buffer, and every counter increment lands in
//!    a per-thread per-trace shard. [`crate::current_context`] carries the
//!    key across `veribug-par` fan-outs, so worker spans and counter
//!    deltas attribute to the request that spawned them. Buffers route to
//!    the trace's entry on the existing [`crate::flush_thread`] path — the
//!    hot path stays thread-local.
//! 3. [`TraceScope::finish`] assembles the completed span tree, makes the
//!    tail-sampling decision, and pushes the result into the ring.
//!
//! ## Tail-based sampling
//!
//! Every completed request enters the ring, but only the interesting ones
//! keep their full span tree: errors (5xx, which includes deadline 504 and
//! panic 500) always do, and so do the rolling slowest-N requests among
//! those currently in the ring. Everything else is demoted to a one-line
//! digest (ID, route, status, duration), so a healthy high-throughput
//! server retains deep diagnostics exactly where they matter while memory
//! stays bounded by `ring capacity × digest + N × tree`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{registry_kinds, MetricKind};
use crate::state::{self, Name};

/// Traces the ring retains (digest or sampled).
const RING_CAPACITY: usize = 128;
/// Rolling slowest-N requests that keep their full span tree even when
/// healthy.
const SLOW_KEEP: usize = 16;
/// Spans a single trace may retain; beyond it new spans are counted but
/// dropped, so a runaway request cannot exhaust memory.
const MAX_TRACE_SPANS: usize = 4096;
/// Concurrent active traces tracked; beyond it [`begin`] hands out inert
/// scopes (the request still runs, it just isn't traced).
const MAX_ACTIVE: usize = 1024;

/// One span inside a completed trace. `parent` is 0 for the root; ids are
/// the process-global span ids, so the tree reconstructs by matching
/// `parent` to `id`.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Span name.
    pub name: Name,
    /// Stable small thread id (0 = first thread seen).
    pub tid: u64,
    /// Unique span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start, microseconds since process epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Why a completed trace kept (or lost) its span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keep {
    /// 5xx outcome (includes 504 deadline and 500 panic): always sampled.
    Error,
    /// Among the rolling slowest-N in the ring: sampled until demoted.
    Slow,
    /// Healthy and fast: one-line digest only.
    Digest,
}

impl Keep {
    /// Stable lowercase label (`error`, `slow`, `digest`).
    pub fn label(self) -> &'static str {
        match self {
            Keep::Error => "error",
            Keep::Slow => "slow",
            Keep::Digest => "digest",
        }
    }
}

/// A finished request as retained by the ring.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// The request ID (client-provided or minted), echoed in
    /// `x-veribug-request-id`.
    pub id: String,
    /// Monotonic completion index (newer = larger).
    pub seq: u64,
    /// Request method (`GET`, `POST`).
    pub method: String,
    /// Route label (the path, query stripped, unknown routes normalized).
    pub path: String,
    /// HTTP status the request answered with.
    pub status: u16,
    /// Start, microseconds since process epoch.
    pub start_us: u64,
    /// End-to-end duration in microseconds.
    pub dur_us: u64,
    /// Sampling verdict.
    pub keep: Keep,
    /// The span tree (empty for digests).
    pub spans: Vec<TraceSpan>,
    /// Counter deltas attributed to this request, by metric name (empty
    /// for digests).
    pub counters: Vec<(&'static str, u64)>,
    /// Spans dropped past [`MAX_TRACE_SPANS`].
    pub dropped_spans: u64,
}

impl CompletedTrace {
    /// True when the full span tree was retained.
    pub fn sampled(&self) -> bool {
        self.keep != Keep::Digest
    }

    /// Sums span durations by name — the per-stage breakdown the rolling
    /// windows and `/statusz` aggregate.
    pub fn stage_us(&self) -> Vec<(Name, u64)> {
        let mut agg: Vec<(Name, u64)> = Vec::new();
        for s in &self.spans {
            match agg.iter_mut().find(|(n, _)| *n == s.name) {
                Some(slot) => slot.1 += s.dur_us,
                None => agg.push((s.name.clone(), s.dur_us)),
            }
        }
        agg
    }

    fn demote(&mut self) {
        if self.keep == Keep::Slow {
            self.keep = Keep::Digest;
            self.spans = Vec::new();
            self.counters = Vec::new();
        }
    }
}

/// An in-flight trace accumulating spans and counter deltas.
#[derive(Debug, Default)]
struct ActiveTrace {
    id: String,
    method: String,
    path: String,
    start_us: u64,
    spans: Vec<TraceSpan>,
    /// Counter deltas indexed by metric-registry slot.
    counters: Vec<u64>,
    dropped_spans: u64,
}

/// A fixed-capacity overwrite-oldest buffer of completed traces with a
/// bounded "slow set" of full span trees. Kept generic over capacity so
/// wraparound and demotion are unit-testable off the global instance.
#[derive(Debug)]
pub(crate) struct Ring {
    slots: Vec<Option<CompletedTrace>>,
    next: usize,
    seq: u64,
    slow_keep: usize,
    capacity: usize,
}

impl Ring {
    pub(crate) fn new(capacity: usize, slow_keep: usize) -> Ring {
        Ring {
            slots: Vec::new(),
            next: 0,
            seq: 0,
            slow_keep,
            capacity: capacity.max(1),
        }
    }

    /// Inserts a completed trace, deciding its sampling verdict against
    /// the ring's current contents. Returns the verdict.
    fn push(&mut self, mut t: CompletedTrace) -> Keep {
        self.seq += 1;
        t.seq = self.seq;
        t.keep = if t.status >= 500 {
            Keep::Error
        } else if t.spans.is_empty() {
            // Tail-sampling keeps span *trees*; a trace with no spans
            // (e.g. an accept-loop rejection) has nothing worth a
            // slow-set slot.
            Keep::Digest
        } else {
            Keep::Slow // provisional; demoted below unless it makes the cut
        };
        if t.keep == Keep::Slow {
            // Count current slow entries; find the fastest to demote if
            // the set is full.
            let mut slow = 0usize;
            let mut fastest: Option<usize> = None;
            for (i, s) in self.slots.iter().enumerate() {
                if let Some(s) = s {
                    if s.keep == Keep::Slow && i != self.next {
                        slow += 1;
                        if fastest.is_none_or(|f| {
                            self.slots[f]
                                .as_ref()
                                .is_some_and(|fs| s.dur_us < fs.dur_us)
                        }) {
                            fastest = Some(i);
                        }
                    }
                }
            }
            if slow >= self.slow_keep {
                let fastest_dur = fastest
                    .and_then(|f| self.slots[f].as_ref())
                    .map_or(0, |s| s.dur_us);
                if t.dur_us > fastest_dur {
                    if let Some(f) = fastest.and_then(|f| self.slots[f].as_mut()) {
                        f.demote();
                    }
                } else {
                    t.demote();
                }
            }
        }
        if t.keep == Keep::Digest {
            t.spans = Vec::new();
            t.counters = Vec::new();
        }
        let keep = t.keep;
        if self.slots.len() < self.capacity {
            self.slots.push(Some(t));
            self.next = self.slots.len() % self.capacity;
        } else {
            self.slots[self.next] = Some(t);
            self.next = (self.next + 1) % self.capacity;
        }
        keep
    }

    /// Retained traces, newest first, at most `limit`.
    fn recent(&self, limit: usize) -> Vec<CompletedTrace> {
        let mut all: Vec<&CompletedTrace> = self.slots.iter().flatten().collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.seq));
        all.into_iter().take(limit).cloned().collect()
    }

    /// Newest retained trace with the given request ID.
    fn find(&self, id: &str) -> Option<CompletedTrace> {
        self.slots
            .iter()
            .flatten()
            .filter(|t| t.id == id)
            .max_by_key(|t| t.seq)
            .cloned()
    }

    fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    fn sampled(&self) -> usize {
        self.slots.iter().flatten().filter(|t| t.sampled()).count()
    }
}

struct LiveState {
    active: HashMap<u64, ActiveTrace>,
    ring: Ring,
}

static LIVE: Mutex<Option<LiveState>> = Mutex::new(None);
static NEXT_KEY: AtomicU64 = AtomicU64::new(1);
static MINT_STATE: Mutex<u64> = Mutex::new(0);

fn with_live<R>(f: impl FnOnce(&mut LiveState) -> R) -> R {
    let mut guard = LIVE.lock().expect("obs live lock");
    let state = guard.get_or_insert_with(|| LiveState {
        active: HashMap::new(),
        ring: Ring::new(RING_CAPACITY, SLOW_KEEP),
    });
    f(state)
}

/// Mints a process-unique request ID: 16 lowercase hex digits seeded from
/// the wall clock and process ID, stepped by splitmix64 so concurrent
/// mints never collide within a process and rarely collide across a fleet.
pub fn mint_id() -> String {
    let mut s = MINT_STATE.lock().expect("obs mint lock");
    if *s == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9E37_79B9_7F4A_7C15, |d| d.as_nanos() as u64);
        *s = nanos ^ (u64::from(std::process::id()) << 32) | 1;
    }
    // splitmix64 step.
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    format!("{:016x}", z ^ (z >> 31))
}

/// True when `id` is acceptable as a client-provided request ID: 1–64
/// characters from `[A-Za-z0-9._-]`.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// An open trace: restores the previous thread trace key on drop, and
/// [`finish`](TraceScope::finish) completes the trace into the ring.
/// An inert scope (live telemetry at capacity, or obs disabled) records
/// nothing and finishes to no effect.
#[must_use = "hold the scope for the extent of the request and call finish()"]
#[derive(Debug)]
pub struct TraceScope {
    key: u64,
    prev: u64,
}

/// Starts tracing a request on the calling thread. The returned scope must
/// outlive the request handler; spans and counters recorded on this thread
/// (and on `veribug-par` workers spawned under it) attribute to this trace
/// until the scope is finished or dropped.
pub fn begin(id: &str, method: &str, path: &str) -> TraceScope {
    if !crate::enabled() {
        return TraceScope { key: 0, prev: 0 };
    }
    let key = NEXT_KEY.fetch_add(1, Ordering::Relaxed);
    let start_us = state::now_us();
    let registered = with_live(|l| {
        if l.active.len() >= MAX_ACTIVE {
            return false;
        }
        l.active.insert(
            key,
            ActiveTrace {
                id: id.to_owned(),
                method: method.to_owned(),
                path: path.to_owned(),
                start_us,
                ..ActiveTrace::default()
            },
        );
        true
    });
    if !registered {
        return TraceScope { key: 0, prev: 0 };
    }
    let prev = state::set_thread_trace(key);
    TraceScope { key, prev }
}

impl TraceScope {
    /// The internal routing key (0 for an inert scope). Exposed for tests.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Completes the trace: flushes this thread's buffers, assembles the
    /// span tree and counter deltas, applies the tail-sampling decision,
    /// records the rolling-window sample, and returns the completed trace
    /// (`None` for inert scopes).
    pub fn finish(mut self, status: u16) -> Option<CompletedTrace> {
        if self.key == 0 {
            return None;
        }
        // Flush while the trace is still installed (the counter shard is
        // attributed to the *current* thread trace), then restore the
        // previous trace and disarm Drop (which would otherwise discard
        // the active entry we are about to assemble).
        state::flush_thread();
        state::set_thread_trace(self.prev);
        let key = self.key;
        self.key = 0;
        drop(self);
        let end_us = state::now_us();
        let names: Vec<(&'static str, MetricKind, usize)> = registry_kinds();
        with_live(|l| {
            let active = l.active.remove(&key)?;
            let counters: Vec<(&'static str, u64)> = names
                .iter()
                .filter(|(_, kind, _)| *kind == MetricKind::Counter)
                .filter_map(|&(name, _, idx)| {
                    match active.counters.get(idx).copied().unwrap_or(0) {
                        0 => None,
                        v => Some((name, v)),
                    }
                })
                .collect();
            let t = CompletedTrace {
                id: active.id,
                seq: 0,
                method: active.method,
                path: active.path,
                status,
                start_us: active.start_us,
                dur_us: end_us.saturating_sub(active.start_us),
                keep: Keep::Digest,
                spans: active.spans,
                counters,
                dropped_spans: active.dropped_spans,
            };
            let cache_hits = t
                .counters
                .iter()
                .find(|(n, _)| *n == "serve.cache.hits")
                .map_or(0, |(_, v)| *v);
            let cache_misses = t
                .counters
                .iter()
                .find(|(n, _)| *n == "serve.cache.misses")
                .map_or(0, |(_, v)| *v);
            crate::rolling::record(
                &t.path,
                t.status,
                t.dur_us,
                &t.stage_us(),
                cache_hits,
                cache_misses,
            );
            let mut t = t;
            // push() decides the final verdict; recompute on the returned
            // copy so callers see what the ring retained.
            let keep = l.ring.push(t.clone());
            t.keep = keep;
            if keep == Keep::Digest {
                t.spans = Vec::new();
                t.counters = Vec::new();
            }
            Some(t)
        })
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.key == 0 {
            return;
        }
        state::set_thread_trace(self.prev);
        // An abandoned (never finished) trace is discarded, not ringed:
        // the serve layer always finishes, so anything left here is an
        // embedder bug we contain rather than export.
        let key = self.key;
        self.key = 0;
        with_live(|l| {
            l.active.remove(&key);
        });
    }
}

/// Records a request that never got a trace scope (e.g. accept-loop 429
/// rejections) as a digest-or-error ring entry plus a rolling-window
/// sample, so backpressure is visible in `/tracez` and `/statusz`.
pub fn record_untraced(id: &str, method: &str, path: &str, status: u16, dur_us: u64) {
    if !crate::enabled() {
        return;
    }
    let end_us = state::now_us();
    crate::rolling::record(path, status, dur_us, &[], 0, 0);
    with_live(|l| {
        l.ring.push(CompletedTrace {
            id: id.to_owned(),
            seq: 0,
            method: method.to_owned(),
            path: path.to_owned(),
            status,
            start_us: end_us.saturating_sub(dur_us),
            dur_us,
            keep: Keep::Digest,
            spans: Vec::new(),
            counters: Vec::new(),
            dropped_spans: 0,
        });
    });
}

/// Routes a flushed per-thread trace-span batch and per-trace counter
/// shard into the matching active traces. Called under no other obs lock.
pub(crate) fn absorb(spans: Vec<(u64, TraceSpan)>, counter_shard: Option<(u64, Vec<u64>)>) {
    if spans.is_empty() && counter_shard.is_none() {
        return;
    }
    with_live(|l| {
        for (key, span) in spans {
            if let Some(a) = l.active.get_mut(&key) {
                if a.spans.len() >= MAX_TRACE_SPANS {
                    a.dropped_spans += 1;
                } else {
                    a.spans.push(span);
                }
            }
        }
        if let Some((key, shard)) = counter_shard {
            if let Some(a) = l.active.get_mut(&key) {
                if a.counters.len() < shard.len() {
                    a.counters.resize(shard.len(), 0);
                }
                for (total, delta) in a.counters.iter_mut().zip(&shard) {
                    *total += delta;
                }
            }
        }
    });
}

/// Retained completed traces, newest first, at most `limit`.
pub fn recent(limit: usize) -> Vec<CompletedTrace> {
    with_live(|l| l.ring.recent(limit))
}

/// The newest retained trace with request ID `id`.
pub fn find(id: &str) -> Option<CompletedTrace> {
    with_live(|l| l.ring.find(id))
}

/// `(retained, sampled, active)` occupancy of the live-telemetry layer.
pub fn occupancy() -> (usize, usize, usize) {
    with_live(|l| (l.ring.len(), l.ring.sampled(), l.active.len()))
}

/// Renders a trace's span tree as the Chrome `trace_event` format (the
/// same schema as [`crate::export::chrome_trace`], without the metrics
/// block viewers ignore anyway), so a single request can be dropped into
/// Perfetto.
pub fn chrome_trace_of(t: &CompletedTrace) -> String {
    let mut report = crate::Report::default();
    for s in &t.spans {
        report.events.push(crate::state::Event::Span {
            name: s.name.clone(),
            tid: s.tid,
            id: s.id,
            parent: s.parent,
            ts_us: s.ts_us,
            dur_us: s.dur_us,
        });
    }
    report.events.sort_by_key(|e| (e.ts_us(), e.id()));
    crate::export::chrome_trace(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, status: u16, dur_us: u64, nspans: usize) -> CompletedTrace {
        CompletedTrace {
            id: id.to_owned(),
            seq: 0,
            method: "POST".to_owned(),
            path: "/v1/localize".to_owned(),
            status,
            start_us: 0,
            dur_us,
            keep: Keep::Digest,
            spans: (0..nspans)
                .map(|i| TraceSpan {
                    name: Name::Borrowed("stage"),
                    tid: 0,
                    id: i as u64 + 1,
                    parent: 0,
                    ts_us: 0,
                    dur_us: 1,
                })
                .collect(),
            counters: vec![("sim.cycles", 8)],
            dropped_spans: 0,
        }
    }

    #[test]
    fn errors_always_keep_their_tree() {
        let mut ring = Ring::new(4, 1);
        for i in 0..8 {
            ring.push(trace(&format!("ok{i}"), 200, 1_000_000, 3));
        }
        let keep = ring.push(trace("boom", 500, 1, 3));
        assert_eq!(keep, Keep::Error);
        let found = ring.find("boom").expect("retained");
        assert_eq!(found.spans.len(), 3, "error keeps full tree");
    }

    #[test]
    fn slowest_n_is_rolling_and_demotes() {
        let mut ring = Ring::new(16, 2);
        assert_eq!(ring.push(trace("a", 200, 100, 2)), Keep::Slow);
        assert_eq!(ring.push(trace("b", 200, 200, 2)), Keep::Slow);
        // Faster than both current slow entries: digested on arrival.
        assert_eq!(ring.push(trace("c", 200, 50, 2)), Keep::Digest);
        assert!(ring.find("c").unwrap().spans.is_empty());
        // Slower than `a`: takes its place; `a` is demoted in situ.
        assert_eq!(ring.push(trace("d", 200, 300, 2)), Keep::Slow);
        assert_eq!(ring.find("a").unwrap().keep, Keep::Digest);
        assert!(
            ring.find("a").unwrap().spans.is_empty(),
            "demotion drops spans"
        );
        assert_eq!(ring.find("b").unwrap().keep, Keep::Slow);
        assert_eq!(ring.find("d").unwrap().spans.len(), 2);
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let mut ring = Ring::new(4, 4);
        for i in 0..11 {
            ring.push(trace(&format!("t{i}"), 200, i, 1));
        }
        assert_eq!(ring.len(), 4);
        let recent = ring.recent(16);
        assert_eq!(recent.len(), 4);
        let ids: Vec<&str> = recent.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(
            ids,
            ["t10", "t9", "t8", "t7"],
            "newest first, oldest overwritten"
        );
        assert!(ring.find("t0").is_none(), "t0 was overwritten");
        // seq stays monotonic across wraps.
        assert!(recent.windows(2).all(|w| w[0].seq > w[1].seq));
    }

    #[test]
    fn recent_respects_limit_and_find_prefers_newest() {
        let mut ring = Ring::new(8, 8);
        ring.push(trace("dup", 200, 10, 1));
        ring.push(trace("dup", 200, 20, 1));
        assert_eq!(ring.recent(1).len(), 1);
        assert_eq!(ring.find("dup").unwrap().dur_us, 20);
    }

    #[test]
    fn minted_ids_are_unique_and_valid() {
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(valid_id(&a) && valid_id(&b));
        assert!(!valid_id(""));
        assert!(!valid_id("has space"));
        assert!(!valid_id(&"x".repeat(65)));
        assert!(valid_id("client-id_01.example"));
    }

    #[test]
    fn begin_finish_captures_spans_and_counters() {
        crate::enable();
        let scope = begin("livetest-req", "POST", "/v1/localize");
        assert_ne!(scope.key(), 0);
        {
            let _outer = crate::span("livetest.outer");
            let _inner = crate::span("livetest.inner");
            static C: crate::LazyCounter = crate::LazyCounter::new("livetest.counter");
            C.add(5);
        }
        let done = scope.finish(200).expect("real scope finishes");
        assert_eq!(done.id, "livetest-req");
        assert_eq!(done.status, 200);
        if done.sampled() {
            let names: Vec<&str> = done.spans.iter().map(|s| &*s.name).collect();
            assert!(names.contains(&"livetest.outer"));
            assert!(names.contains(&"livetest.inner"));
            let outer = done
                .spans
                .iter()
                .find(|s| &*s.name == "livetest.outer")
                .unwrap();
            let inner = done
                .spans
                .iter()
                .find(|s| &*s.name == "livetest.inner")
                .unwrap();
            assert_eq!(inner.parent, outer.id, "tree structure survives");
            assert!(done
                .counters
                .iter()
                .any(|(n, v)| *n == "livetest.counter" && *v == 5));
        }
        // The thread trace is restored: spans recorded now attribute to
        // nothing.
        let _stray = crate::span("livetest.stray");
    }

    #[test]
    fn par_workers_attribute_to_the_spawning_trace() {
        crate::enable();
        let scope = begin("livetest-fanout", "POST", "/v1/localize");
        let key = scope.key();
        {
            let _stage = crate::span("livetest.fanout");
            let ctx = crate::current_context();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        crate::with_context(ctx, || {
                            let _w = crate::span("livetest.worker");
                            static W: crate::LazyCounter =
                                crate::LazyCounter::new("livetest.worker_units");
                            W.add(3);
                        });
                        crate::flush_thread();
                    });
                }
            });
        }
        let done = scope.finish(200).expect("finishes");
        if key != 0 && done.sampled() {
            let workers = done
                .spans
                .iter()
                .filter(|s| &*s.name == "livetest.worker")
                .count();
            assert_eq!(workers, 2, "both worker spans attributed");
            assert!(done
                .counters
                .iter()
                .any(|(n, v)| *n == "livetest.worker_units" && *v == 6));
        }
    }

    #[test]
    fn chrome_export_of_a_trace_validates() {
        let t = trace("export-me", 200, 5, 3);
        let rendered = chrome_trace_of(&t);
        let v = crate::validate::chrome_trace(&rendered).expect("schema-valid");
        assert_eq!(v.span_names, ["stage"]);
    }

    #[test]
    fn untraced_rejections_land_in_the_ring() {
        crate::enable();
        record_untraced("livetest-429", "POST", "/v1/localize", 429, 10);
        let found = find("livetest-429").expect("rejection retained");
        assert_eq!(found.status, 429);
        assert!(!found.sampled(), "429 digest has no tree to keep");
    }
}
