//! Recursive-descent parser for the Verilog subset.
//!
//! Supports both ANSI (`module m(input a, output reg [3:0] y);`) and
//! non-ANSI (`module m(a, y); input a; ...`) port declarations. Parameters
//! and localparams are constant-folded at parse time, so downstream crates
//! never see symbolic widths or parameter references.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Keyword, Span, Token, TokenKind};
use std::collections::HashMap;

/// Parses Verilog source into a [`SourceUnit`].
///
/// # Errors
///
/// Returns a [`ParseError`] for lexical errors, syntax errors, constructs
/// outside the supported subset, and semantic problems (undeclared signals,
/// duplicate declarations).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), veribug_verilog::ParseError> {
/// let unit = veribug_verilog::parse(
///     "module arb(input req1, input req2, output wire gnt1);\n\
///      assign gnt1 = req1 & ~req2;\nendmodule",
/// )?;
/// assert_eq!(unit.top().name, "arb");
/// assert_eq!(unit.top().assignments().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<SourceUnit, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        params: HashMap::new(),
        next_stmt: 0,
    };
    let mut modules = Vec::new();
    while !parser.at_eof() {
        modules.push(parser.parse_module()?);
    }
    if modules.is_empty() {
        return Err(ParseError::UnexpectedToken {
            found: TokenKind::Eof,
            expected: "`module`".to_owned(),
            span: Span::new(1, 1),
        });
    }
    let unit = SourceUnit { modules };
    validate(&unit)?;
    Ok(unit)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Parameter environment of the module being parsed.
    params: HashMap<String, (u64, Option<u32>)>,
    /// Next statement id in the module being parsed.
    next_stmt: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("{kind}")))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Token, ParseError> {
        self.expect(TokenKind::Keyword(kw))
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        self.peek_kind() == &TokenKind::Keyword(kw)
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::UnexpectedToken {
            found: self.peek_kind().clone(),
            expected: expected.to_owned(),
            span: self.peek().span,
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    // ---- module structure ----

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        self.params.clear();
        self.next_stmt = 0;
        let mspan = self.expect_kw(Keyword::Module)?.span;
        let (name, _) = self.expect_ident()?;

        // Optional parameter header `#(parameter W = 4, ...)`.
        let mut params = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(TokenKind::LParen)?;
            loop {
                self.expect_kw(Keyword::Parameter)?;
                let p = self.parse_param_binding()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }

        let mut ports: Vec<Port> = Vec::new();
        // Port list: either ANSI declarations or a bare name list.
        let mut bare_port_names: Vec<(String, Span)> = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            if matches!(
                self.peek_kind(),
                TokenKind::Keyword(Keyword::Input | Keyword::Output | Keyword::Inout)
            ) {
                // ANSI style.
                loop {
                    let mut group = self.parse_ansi_port_group()?;
                    ports.append(&mut group);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            } else {
                // Non-ANSI: bare names now, directions in the body.
                loop {
                    bare_port_names.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;

        let mut decls: Vec<Decl> = Vec::new();
        let mut items: Vec<Item> = Vec::new();
        // Non-ANSI port directions discovered in the body.
        let mut body_ports: Vec<Port> = Vec::new();

        while !self.at_kw(Keyword::Endmodule) {
            match self.peek_kind().clone() {
                TokenKind::Keyword(Keyword::Parameter | Keyword::Localparam) => {
                    self.bump();
                    loop {
                        let p = self.parse_param_binding()?;
                        params.push(p);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Keyword(Keyword::Input | Keyword::Output | Keyword::Inout) => {
                    let mut group = self.parse_ansi_port_group()?;
                    self.expect(TokenKind::Semi)?;
                    body_ports.append(&mut group);
                }
                TokenKind::Keyword(Keyword::Wire) => {
                    self.bump();
                    self.parse_decl_group(NetKind::Wire, &mut decls)?;
                }
                TokenKind::Keyword(Keyword::Reg) => {
                    self.bump();
                    self.parse_decl_group(NetKind::Reg, &mut decls)?;
                }
                TokenKind::Keyword(Keyword::Integer) => {
                    let span = self.bump().span;
                    loop {
                        let (dname, _) = self.expect_ident()?;
                        decls.push(Decl {
                            name: dname,
                            kind: NetKind::Reg,
                            width: 32,
                            span,
                        });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Keyword(Keyword::Assign) => {
                    let span = self.bump().span;
                    let lhs = self.parse_lvalue()?;
                    self.expect(TokenKind::Eq)?;
                    let rhs = self.parse_expr()?;
                    self.expect(TokenKind::Semi)?;
                    items.push(Item::Assign(Assignment {
                        id: self.fresh_stmt_id(),
                        kind: AssignKind::Continuous,
                        lhs,
                        rhs,
                        span,
                    }));
                }
                TokenKind::Keyword(Keyword::Always) => {
                    items.push(Item::Always(self.parse_always()?));
                }
                _ => return Err(self.unexpected("module item")),
            }
        }
        self.expect_kw(Keyword::Endmodule)?;

        // Merge body-declared ports: if there was a bare port list, its order
        // wins; otherwise (pure ANSI) the header already produced `ports`.
        if !bare_port_names.is_empty() {
            for (pname, pspan) in &bare_port_names {
                let found = body_ports.iter().find(|p| &p.name == pname).cloned();
                match found {
                    Some(mut p) => {
                        p.span = *pspan;
                        ports.push(p);
                    }
                    None => {
                        return Err(ParseError::Semantic {
                            detail: format!("port `{pname}` has no direction declaration"),
                            span: *pspan,
                        });
                    }
                }
            }
        } else {
            ports.extend(body_ports);
        }

        // `output reg` ports double as declarations for the simulator; plain
        // `reg` declarations that shadow a port are merged during validation.
        Ok(Module {
            name,
            ports,
            params,
            decls,
            items,
            span: mspan,
        })
    }

    fn parse_param_binding(&mut self) -> Result<Param, ParseError> {
        let width = if self.peek_kind() == &TokenKind::LBracket {
            Some(self.parse_range()?.0)
        } else {
            None
        };
        let (name, span) = self.expect_ident()?;
        self.expect(TokenKind::Eq)?;
        let value_expr = self.parse_expr()?;
        let value = self.const_eval(&value_expr)?;
        self.params.insert(name.clone(), (value, width));
        Ok(Param {
            name,
            value,
            width,
            span,
        })
    }

    /// Parses `input|output|inout [reg] [range] name {, name}` and fans the
    /// shared direction/width out to each name. Stops before `,` followed by
    /// another direction keyword so ANSI headers group correctly.
    fn parse_ansi_port_group(&mut self) -> Result<Vec<Port>, ParseError> {
        let dir = match self.peek_kind() {
            TokenKind::Keyword(Keyword::Input) => PortDir::Input,
            TokenKind::Keyword(Keyword::Output) => PortDir::Output,
            TokenKind::Keyword(Keyword::Inout) => PortDir::Inout,
            _ => return Err(self.unexpected("port direction")),
        };
        self.bump();
        let is_reg = self.eat_kw(Keyword::Reg) || {
            self.eat_kw(Keyword::Wire);
            false
        };
        let width = if self.peek_kind() == &TokenKind::LBracket {
            self.parse_range()?.1
        } else {
            1
        };
        let mut out = Vec::new();
        loop {
            let (name, span) = self.expect_ident()?;
            out.push(Port {
                name,
                dir,
                width,
                is_reg,
                span,
            });
            // In an ANSI header another `,` may introduce a new direction
            // group; only consume the comma when a plain name follows.
            if self.peek_kind() == &TokenKind::Comma
                && matches!(self.tokens[self.pos + 1].kind, TokenKind::Ident(_))
            {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_decl_group(&mut self, kind: NetKind, decls: &mut Vec<Decl>) -> Result<(), ParseError> {
        let width = if self.peek_kind() == &TokenKind::LBracket {
            self.parse_range()?.1
        } else {
            1
        };
        loop {
            let (name, span) = self.expect_ident()?;
            decls.push(Decl {
                name,
                kind,
                width,
                span,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(())
    }

    /// Parses `[msb:lsb]`, returning `(msb, width)`.
    fn parse_range(&mut self) -> Result<(u32, u32), ParseError> {
        let span = self.expect(TokenKind::LBracket)?.span;
        let msb_expr = self.parse_expr()?;
        let msb = self.const_eval(&msb_expr)?;
        self.expect(TokenKind::Colon)?;
        let lsb_expr = self.parse_expr()?;
        let lsb = self.const_eval(&lsb_expr)?;
        self.expect(TokenKind::RBracket)?;
        if msb < lsb {
            return Err(ParseError::Unsupported {
                detail: format!("ascending range [{msb}:{lsb}]"),
                span,
            });
        }
        let width = (msb - lsb + 1) as u32;
        if width > 64 {
            return Err(ParseError::Unsupported {
                detail: format!("width {width} exceeds the 64-bit subset limit"),
                span,
            });
        }
        if lsb != 0 {
            return Err(ParseError::Unsupported {
                detail: format!("non-zero LSB range [{msb}:{lsb}]"),
                span,
            });
        }
        Ok((msb as u32, width))
    }

    fn parse_always(&mut self) -> Result<AlwaysBlock, ParseError> {
        let span = self.expect_kw(Keyword::Always)?.span;
        self.expect(TokenKind::At)?;
        let sensitivity = if self.eat(&TokenKind::Star) {
            Sensitivity::Star
        } else {
            self.expect(TokenKind::LParen)?;
            if self.eat(&TokenKind::Star) {
                self.expect(TokenKind::RParen)?;
                Sensitivity::Star
            } else if self.at_kw(Keyword::Posedge) || self.at_kw(Keyword::Negedge) {
                let mut edges = Vec::new();
                loop {
                    let edge = if self.eat_kw(Keyword::Posedge) {
                        EdgeKind::Pos
                    } else {
                        self.expect_kw(Keyword::Negedge)?;
                        EdgeKind::Neg
                    };
                    let (sig, _) = self.expect_ident()?;
                    edges.push((edge, sig));
                    if !(self.eat_kw(Keyword::Or) || self.eat(&TokenKind::Comma)) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                Sensitivity::Edges(edges)
            } else {
                let mut names = Vec::new();
                loop {
                    let (sig, _) = self.expect_ident()?;
                    names.push(sig);
                    if !(self.eat_kw(Keyword::Or) || self.eat(&TokenKind::Comma)) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                Sensitivity::Level(names)
            }
        };
        let body = self.parse_stmt_block()?;
        Ok(AlwaysBlock {
            sensitivity,
            body,
            span,
        })
    }

    /// Parses either `begin ... end` or a single statement.
    fn parse_stmt_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat_kw(Keyword::Begin) {
            let mut stmts = Vec::new();
            while !self.at_kw(Keyword::End) {
                stmts.push(self.parse_stmt()?);
            }
            self.expect_kw(Keyword::End)?;
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::If) => {
                let span = self.bump().span;
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = self.parse_stmt_block()?;
                let else_branch = if self.eat_kw(Keyword::Else) {
                    if self.at_kw(Keyword::If) {
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_stmt_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(IfStmt {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                }))
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez)) => {
                let span = self.bump().span;
                self.expect(TokenKind::LParen)?;
                let subject = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                let mut arms = Vec::new();
                let mut default = Vec::new();
                while !self.at_kw(Keyword::Endcase) {
                    if self.eat_kw(Keyword::Default) {
                        self.eat(&TokenKind::Colon);
                        default = self.parse_stmt_block()?;
                    } else {
                        let mut labels = vec![self.parse_expr()?];
                        while self.eat(&TokenKind::Comma) {
                            labels.push(self.parse_expr()?);
                        }
                        self.expect(TokenKind::Colon)?;
                        let body = self.parse_stmt_block()?;
                        arms.push(CaseArm { labels, body });
                    }
                }
                self.expect_kw(Keyword::Endcase)?;
                Ok(Stmt::Case(CaseStmt {
                    subject,
                    arms,
                    default,
                    casez: kw == Keyword::Casez,
                    span,
                }))
            }
            TokenKind::Ident(_) => {
                let lhs = self.parse_lvalue()?;
                let span = lhs.span;
                let kind = if self.eat(&TokenKind::Eq) {
                    AssignKind::Blocking
                } else if self.eat(&TokenKind::LtEq) {
                    AssignKind::NonBlocking
                } else {
                    return Err(self.unexpected("`=` or `<=`"));
                };
                let rhs = self.parse_expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign(Assignment {
                    id: self.fresh_stmt_id(),
                    kind,
                    lhs,
                    rhs,
                    span,
                }))
            }
            _ => Err(self.unexpected("statement")),
        }
    }

    fn parse_lvalue(&mut self) -> Result<LValue, ParseError> {
        let (base, span) = self.expect_ident()?;
        let select = if self.eat(&TokenKind::LBracket) {
            let first = self.parse_expr()?;
            if self.eat(&TokenKind::Colon) {
                let msb = self.const_eval(&first)?;
                let lsb_expr = self.parse_expr()?;
                let lsb = self.const_eval(&lsb_expr)?;
                self.expect(TokenKind::RBracket)?;
                Some(Select::Part {
                    msb: msb as u32,
                    lsb: lsb as u32,
                })
            } else {
                self.expect(TokenKind::RBracket)?;
                Some(Select::Bit(Box::new(first)))
            }
        } else {
            None
        };
        Ok(LValue { base, select, span })
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&TokenKind::Question) {
            let span = cond.span();
            let then_expr = self.parse_ternary()?;
            self.expect(TokenKind::Colon)?;
            let else_expr = self.parse_ternary()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Binary-operator precedence levels, lowest first.
    fn binop_at(&self, level: u8) -> Option<BinaryOp> {
        let k = self.peek_kind();
        let op = match (level, k) {
            (0, TokenKind::PipePipe) => BinaryOp::LogOr,
            (1, TokenKind::AmpAmp) => BinaryOp::LogAnd,
            (2, TokenKind::Pipe) => BinaryOp::Or,
            (3, TokenKind::Caret) => BinaryOp::Xor,
            (3, TokenKind::TildeCaret) => BinaryOp::Xnor,
            (4, TokenKind::Amp) => BinaryOp::And,
            (5, TokenKind::EqEq) => BinaryOp::Eq,
            (5, TokenKind::BangEq) => BinaryOp::Neq,
            (5, TokenKind::EqEqEq) => BinaryOp::CaseEq,
            (5, TokenKind::BangEqEq) => BinaryOp::CaseNeq,
            (6, TokenKind::Lt) => BinaryOp::Lt,
            (6, TokenKind::LtEq) => BinaryOp::Le,
            (6, TokenKind::Gt) => BinaryOp::Gt,
            (6, TokenKind::GtEq) => BinaryOp::Ge,
            (7, TokenKind::Shl) => BinaryOp::Shl,
            (7, TokenKind::Shr) => BinaryOp::Shr,
            (8, TokenKind::Plus) => BinaryOp::Add,
            (8, TokenKind::Minus) => BinaryOp::Sub,
            (9, TokenKind::Star) => BinaryOp::Mul,
            (9, TokenKind::Slash) => BinaryOp::Div,
            (9, TokenKind::Percent) => BinaryOp::Mod,
            _ => return None,
        };
        Some(op)
    }

    fn parse_binary(&mut self, level: u8) -> Result<Expr, ParseError> {
        if level > 9 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            let span = self.bump().span;
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Tilde => Some(UnaryOp::Not),
            TokenKind::Bang => Some(UnaryOp::LogicalNot),
            TokenKind::Minus => Some(UnaryOp::Negate),
            TokenKind::Amp => Some(UnaryOp::RedAnd),
            TokenKind::Pipe => Some(UnaryOp::RedOr),
            TokenKind::Caret => Some(UnaryOp::RedXor),
            TokenKind::TildeCaret => Some(UnaryOp::RedXnor),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary {
                    op,
                    operand: Box::new(operand),
                    span,
                })
            }
            None => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Number { width, value } => {
                self.bump();
                Ok(Expr::Literal { width, value, span })
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Parameters fold to literals at parse time.
                if let Some(&(value, width)) = self.params.get(&name) {
                    return Ok(Expr::Literal { width, value, span });
                }
                if self.eat(&TokenKind::LBracket) {
                    let first = self.parse_expr()?;
                    if self.eat(&TokenKind::Colon) {
                        let msb = self.const_eval(&first)? as u32;
                        let lsb_expr = self.parse_expr()?;
                        let lsb = self.const_eval(&lsb_expr)? as u32;
                        self.expect(TokenKind::RBracket)?;
                        Ok(Expr::Part {
                            base: name,
                            msb,
                            lsb,
                            span,
                        })
                    } else {
                        self.expect(TokenKind::RBracket)?;
                        Ok(Expr::Index {
                            base: name,
                            index: Box::new(first),
                            span,
                        })
                    }
                } else {
                    Ok(Expr::Ident { name, span })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                self.bump();
                let first = self.parse_expr()?;
                // `{n{expr}}` replication: first must be a constant and the
                // next token an opening brace.
                if self.peek_kind() == &TokenKind::LBrace {
                    let count = self.const_eval(&first)? as u32;
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect(TokenKind::RBrace)?;
                    self.expect(TokenKind::RBrace)?;
                    return Ok(Expr::Repeat {
                        count,
                        inner: Box::new(inner),
                        span,
                    });
                }
                let mut parts = vec![first];
                while self.eat(&TokenKind::Comma) {
                    parts.push(self.parse_expr()?);
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Expr::Concat { parts, span })
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    /// Evaluates a constant expression (literals, folded parameters,
    /// arithmetic). Used for ranges, replication counts, and parameters.
    fn const_eval(&self, e: &Expr) -> Result<u64, ParseError> {
        match e {
            Expr::Literal { value, .. } => Ok(*value),
            Expr::Unary { op, operand, span } => {
                let v = self.const_eval(operand)?;
                Ok(match op {
                    UnaryOp::Not => !v,
                    UnaryOp::LogicalNot => u64::from(v == 0),
                    UnaryOp::Negate => v.wrapping_neg(),
                    _ => {
                        return Err(ParseError::Unsupported {
                            detail: "reduction operator in constant expression".to_owned(),
                            span: *span,
                        });
                    }
                })
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                Ok(match op {
                    BinaryOp::Add => a.wrapping_add(b),
                    BinaryOp::Sub => a.wrapping_sub(b),
                    BinaryOp::Mul => a.wrapping_mul(b),
                    BinaryOp::Div => {
                        if b == 0 {
                            return Err(ParseError::Semantic {
                                detail: "division by zero in constant expression".to_owned(),
                                span: *span,
                            });
                        }
                        a / b
                    }
                    BinaryOp::Mod => {
                        if b == 0 {
                            return Err(ParseError::Semantic {
                                detail: "modulo by zero in constant expression".to_owned(),
                                span: *span,
                            });
                        }
                        a % b
                    }
                    BinaryOp::Shl => a.wrapping_shl(b as u32),
                    BinaryOp::Shr => a.wrapping_shr(b as u32),
                    BinaryOp::And => a & b,
                    BinaryOp::Or => a | b,
                    BinaryOp::Xor => a ^ b,
                    _ => {
                        return Err(ParseError::Unsupported {
                            detail: format!("operator `{}` in constant expression", op.symbol()),
                            span: *span,
                        });
                    }
                })
            }
            other => Err(ParseError::Semantic {
                detail: "expected a constant expression".to_owned(),
                span: other.span(),
            }),
        }
    }
}

/// Post-parse semantic checks: unique declarations, all referenced signals
/// declared, LHS storage classes consistent with assignment kinds.
fn validate(unit: &SourceUnit) -> Result<(), ParseError> {
    for module in &unit.modules {
        let mut names: HashMap<&str, Span> = HashMap::new();
        for p in &module.ports {
            if let Some(prev) = names.insert(p.name.as_str(), p.span) {
                return Err(ParseError::Semantic {
                    detail: format!("duplicate declaration of `{}` (first at {prev})", p.name),
                    span: p.span,
                });
            }
        }
        for d in &module.decls {
            // A `reg`/`wire` re-declaration of a port (non-ANSI style) is
            // legal Verilog; only flag duplicates among internals.
            if module.ports.iter().any(|p| p.name == d.name) {
                continue;
            }
            if let Some(prev) = names.insert(d.name.as_str(), d.span) {
                return Err(ParseError::Semantic {
                    detail: format!("duplicate declaration of `{}` (first at {prev})", d.name),
                    span: d.span,
                });
            }
        }
        let declared = |n: &str| {
            module.ports.iter().any(|p| p.name == n) || module.decls.iter().any(|d| d.name == n)
        };
        for a in module.assignments() {
            if !declared(&a.lhs.base) {
                return Err(ParseError::Semantic {
                    detail: format!("assignment to undeclared signal `{}`", a.lhs.base),
                    span: a.lhs.span,
                });
            }
            for s in a.rhs.referenced_signals() {
                if !declared(s) {
                    return Err(ParseError::Semantic {
                        detail: format!("reference to undeclared signal `{s}`"),
                        span: a.span,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARBITER: &str = "\
module arb(input clk, input req1, input req2, output reg gnt1, output reg gnt2);
  reg [1:0] state;
  always @(posedge clk) begin
    state <= {req2, req1};
  end
  always @(*) begin
    gnt1 = req1 & ~req2;
    gnt2 = req2;
  end
endmodule
";

    #[test]
    fn parses_arbiter() {
        let unit = parse(ARBITER).unwrap();
        let m = unit.top();
        assert_eq!(m.name, "arb");
        assert_eq!(m.ports.len(), 5);
        assert_eq!(m.width_of("state"), Some(2));
        let assigns = m.assignments();
        assert_eq!(assigns.len(), 3);
        assert_eq!(assigns[0].kind, AssignKind::NonBlocking);
        assert_eq!(assigns[1].kind, AssignKind::Blocking);
        // Stable source-order ids.
        assert_eq!(assigns[0].id, StmtId(0));
        assert_eq!(assigns[1].id, StmtId(1));
        assert_eq!(assigns[2].id, StmtId(2));
    }

    #[test]
    fn parses_non_ansi_ports() {
        let src = "\
module m(a, y);
  input a;
  output y;
  assign y = ~a;
endmodule
";
        let unit = parse(src).unwrap();
        let m = unit.top();
        assert_eq!(m.ports[0].dir, PortDir::Input);
        assert_eq!(m.ports[1].dir, PortDir::Output);
    }

    #[test]
    fn folds_parameters() {
        let src = "\
module m #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
  localparam ZERO = 0;
  assign y = a + ZERO;
endmodule
";
        let unit = parse(src).unwrap();
        let m = unit.top();
        assert_eq!(m.ports[0].width, 4);
        match &m.assignments()[0].rhs {
            Expr::Binary { rhs, .. } => {
                assert!(matches!(**rhs, Expr::Literal { value: 0, .. }));
            }
            other => panic!("expected binary add, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let unit = parse(
            "module m(input a, input b, input c, output y);\nassign y = a | b & c;\nendmodule",
        )
        .unwrap();
        match &unit.top().assignments()[0].rhs {
            Expr::Binary { op, rhs, .. } => {
                assert_eq!(*op, BinaryOp::Or);
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("expected or at root, got {other:?}"),
        }
    }

    #[test]
    fn ternary_parses_right_associative() {
        let unit = parse(
            "module m(input a, input b, input c, output y);\nassign y = a ? b : c ? a : b;\nendmodule",
        )
        .unwrap();
        match &unit.top().assignments()[0].rhs {
            Expr::Ternary { else_expr, .. } => {
                assert!(matches!(**else_expr, Expr::Ternary { .. }));
            }
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn case_statement() {
        let src = "\
module m(input [1:0] sel, input a, input b, output reg y);
  always @(*) begin
    case (sel)
      2'b00: y = a;
      2'b01, 2'b10: y = b;
      default: y = 1'b0;
    endcase
  end
endmodule
";
        let unit = parse(src).unwrap();
        let m = unit.top();
        let Item::Always(blk) = &m.items[0] else {
            panic!("expected always");
        };
        let Stmt::Case(c) = &blk.body[0] else {
            panic!("expected case");
        };
        assert_eq!(c.arms.len(), 2);
        assert_eq!(c.arms[1].labels.len(), 2);
        assert_eq!(c.default.len(), 1);
    }

    #[test]
    fn rejects_undeclared_signal() {
        let err =
            parse("module m(input a, output y);\nassign y = a & ghost;\nendmodule").unwrap_err();
        assert!(matches!(err, ParseError::Semantic { .. }), "{err}");
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let err = parse("module m(input a, output y);\nwire t;\nwire t;\nassign y = a;\nendmodule")
            .unwrap_err();
        assert!(matches!(err, ParseError::Semantic { .. }), "{err}");
    }

    #[test]
    fn concat_and_repeat() {
        let src = "module m(input a, input b, output [3:0] y);\nassign y = {a, {3{b}}};\nendmodule";
        let unit = parse(src).unwrap();
        match &unit.top().assignments()[0].rhs {
            Expr::Concat { parts, .. } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Repeat { count: 3, .. }));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn bit_and_part_select() {
        let src = "module m(input [3:0] a, output y, output [1:0] z);\nassign y = a[2];\nassign z = a[1:0];\nendmodule";
        let unit = parse(src).unwrap();
        let assigns = unit.top().assignments();
        assert!(matches!(assigns[0].rhs, Expr::Index { .. }));
        assert!(matches!(assigns[1].rhs, Expr::Part { msb: 1, lsb: 0, .. }));
    }

    #[test]
    fn always_level_sensitivity() {
        let src =
            "module m(input a, input b, output reg y);\nalways @(a or b) y = a & b;\nendmodule";
        let unit = parse(src).unwrap();
        let Item::Always(blk) = &unit.top().items[0] else {
            panic!();
        };
        assert!(matches!(&blk.sensitivity, Sensitivity::Level(v) if v.len() == 2));
        assert!(blk.sensitivity.is_combinational());
    }

    #[test]
    fn negedge_reset_sensitivity() {
        let src = "module m(input clk, input rst_n, output reg q);\nalways @(posedge clk or negedge rst_n) begin\nif (!rst_n) q <= 1'b0; else q <= 1'b1;\nend\nendmodule";
        let unit = parse(src).unwrap();
        let Item::Always(blk) = &unit.top().items[0] else {
            panic!();
        };
        let Sensitivity::Edges(edges) = &blk.sensitivity else {
            panic!();
        };
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1], (EdgeKind::Neg, "rst_n".to_owned()));
    }
}
