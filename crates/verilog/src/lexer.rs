//! Hand-written lexer for the Verilog subset.
//!
//! Handles line (`//`) and block (`/* */`) comments, simple and escaped
//! identifiers, unsized decimal literals, and sized/based literals in binary,
//! octal, decimal, and hexadecimal (`4'b1010`, `8'hFF`, ...). `x`/`z` digits
//! are rejected: the downstream simulator is two-state.

use crate::error::ParseError;
use crate::token::{Keyword, Span, Token, TokenKind};

/// Lexes a complete source string into tokens (ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`ParseError`] on unexpected characters, malformed literals, or
/// unterminated block comments.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), veribug_verilog::ParseError> {
/// let tokens = veribug_verilog::lex("assign y = a & ~b;")?;
/// assert_eq!(tokens.len(), 9); // incl. EOF
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'s str,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    #[cfg(test)]
    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::with_capacity(self.source.len() / 4);
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token::new(TokenKind::Eof, span));
                return Ok(out);
            };
            let kind = match c {
                'a'..='z' | 'A'..='Z' | '_' => self.lex_ident(),
                '\\' => self.lex_escaped_ident(),
                '0'..='9' | '\'' => self.lex_number(span)?,
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                '[' => self.single(TokenKind::LBracket),
                ']' => self.single(TokenKind::RBracket),
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                ';' => self.single(TokenKind::Semi),
                ',' => self.single(TokenKind::Comma),
                ':' => self.single(TokenKind::Colon),
                '@' => self.single(TokenKind::At),
                '#' => self.single(TokenKind::Hash),
                '?' => self.single(TokenKind::Question),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '*' => self.single(TokenKind::Star),
                '/' => self.single(TokenKind::Slash),
                '%' => self.single(TokenKind::Percent),
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        TokenKind::AmpAmp
                    } else {
                        TokenKind::Amp
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        TokenKind::PipePipe
                    } else {
                        TokenKind::Pipe
                    }
                }
                '^' => {
                    self.bump();
                    if self.peek() == Some('~') {
                        self.bump();
                        TokenKind::TildeCaret
                    } else {
                        TokenKind::Caret
                    }
                }
                '~' => {
                    self.bump();
                    if self.peek() == Some('^') {
                        self.bump();
                        TokenKind::TildeCaret
                    } else {
                        TokenKind::Tilde
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            TokenKind::BangEqEq
                        } else {
                            TokenKind::BangEq
                        }
                    } else {
                        TokenKind::Bang
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            TokenKind::EqEqEq
                        } else {
                            TokenKind::EqEq
                        }
                    } else {
                        TokenKind::Eq
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            TokenKind::LtEq
                        }
                        Some('<') => {
                            self.bump();
                            TokenKind::Shl
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            TokenKind::GtEq
                        }
                        Some('>') => {
                            self.bump();
                            TokenKind::Shr
                        }
                        _ => TokenKind::Gt,
                    }
                }
                other => {
                    return Err(ParseError::UnexpectedChar { ch: other, span });
                }
            };
            out.push(Token::new(kind, span));
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::UnterminatedComment { span: start });
                            }
                        }
                    }
                }
                // Compiler directives (`timescale etc.) — skip to end of line.
                Some('`') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&s) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(s),
        }
    }

    fn lex_escaped_ident(&mut self) -> TokenKind {
        self.bump(); // backslash
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                break;
            }
            s.push(c);
            self.bump();
        }
        TokenKind::Ident(s)
    }

    /// Lexes either an unsized decimal, or a sized/based literal.
    ///
    /// Grammar: `[digits] ' [sSbBoOdDhH] digits` where a leading size is the
    /// decimal width. An apostrophe with no leading size (e.g. `'b1`) gets
    /// width `None` like an unsized literal but the given base.
    fn lex_number(&mut self, span: Span) -> Result<TokenKind, ParseError> {
        let mut lead = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    lead.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some('\'') {
            // Unsized decimal literal.
            let value = lead
                .parse::<u64>()
                .map_err(|e| ParseError::MalformedNumber {
                    detail: format!("decimal literal `{lead}`: {e}"),
                    span,
                })?;
            return Ok(TokenKind::Number { width: None, value });
        }
        self.bump(); // apostrophe
                     // Optional signed marker, then base char.
        if matches!(self.peek(), Some('s' | 'S')) {
            self.bump();
        }
        let base_char = self.bump().ok_or_else(|| ParseError::MalformedNumber {
            detail: "missing base after `'`".to_owned(),
            span,
        })?;
        let radix = match base_char {
            'b' | 'B' => 2,
            'o' | 'O' => 8,
            'd' | 'D' => 10,
            'h' | 'H' => 16,
            other => {
                return Err(ParseError::MalformedNumber {
                    detail: format!("unknown base `{other}`"),
                    span,
                });
            }
        };
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c == '_' {
                self.bump();
                continue;
            }
            if c.is_ascii_alphanumeric() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(ParseError::MalformedNumber {
                detail: "missing digits after base".to_owned(),
                span,
            });
        }
        if digits.contains(['x', 'X', 'z', 'Z']) {
            return Err(ParseError::MalformedNumber {
                detail: "x/z digits are not supported (two-state subset)".to_owned(),
                span,
            });
        }
        let value =
            u64::from_str_radix(&digits, radix).map_err(|e| ParseError::MalformedNumber {
                detail: format!("base-{radix} literal `{digits}`: {e}"),
                span,
            })?;
        let width = if lead.is_empty() {
            None
        } else {
            let w = lead
                .parse::<u32>()
                .map_err(|e| ParseError::MalformedNumber {
                    detail: format!("size `{lead}`: {e}"),
                    span,
                })?;
            if w == 0 || w > 64 {
                return Err(ParseError::MalformedNumber {
                    detail: format!("size {w} out of supported range 1..=64"),
                    span,
                });
            }
            Some(w)
        };
        let value = match width {
            Some(w) if w < 64 => value & ((1u64 << w) - 1),
            _ => value,
        };
        Ok(TokenKind::Number { width, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assign() {
        let k = kinds("assign y = a & ~b;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Assign),
                TokenKind::Ident("y".into()),
                TokenKind::Eq,
                TokenKind::Ident("a".into()),
                TokenKind::Amp,
                TokenKind::Tilde,
                TokenKind::Ident("b".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_sized_literals() {
        assert_eq!(
            kinds("4'b1010"),
            vec![
                TokenKind::Number {
                    width: Some(4),
                    value: 0b1010
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("8'hFF"),
            vec![
                TokenKind::Number {
                    width: Some(8),
                    value: 0xFF
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("2'd3"),
            vec![
                TokenKind::Number {
                    width: Some(2),
                    value: 3
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn truncates_oversized_literal_value() {
        assert_eq!(
            kinds("2'd7"),
            vec![
                TokenKind::Number {
                    width: Some(2),
                    value: 3
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_xz_digits() {
        assert!(matches!(
            lex("4'b10x0"),
            Err(ParseError::MalformedNumber { .. })
        ));
    }

    #[test]
    fn skips_comments_and_directives() {
        let k = kinds("// line\n/* block\nspanning */ `timescale 1ns/1ps\nwire");
        assert_eq!(k, vec![TokenKind::Keyword(Keyword::Wire), TokenKind::Eof]);
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(matches!(
            lex("/* nope"),
            Err(ParseError::UnterminatedComment { .. })
        ));
    }

    #[test]
    fn compound_operators() {
        let k = kinds("== != <= >= << >> && || ~^ ^~ === !==");
        assert_eq!(
            k,
            vec![
                TokenKind::EqEq,
                TokenKind::BangEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::TildeCaret,
                TokenKind::TildeCaret,
                TokenKind::EqEqEq,
                TokenKind::BangEqEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("wire\n  reg").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn escaped_identifier() {
        let k = kinds("\\foo+bar ;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("foo+bar".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn peek3_unused_guard() {
        // peek3 exists for future lookahead; keep it exercised.
        let lx = Lexer::new("abc");
        assert_eq!(lx.peek3(), Some('c'));
    }
}
