//! Token definitions for the Verilog subset lexer.

use std::fmt;

/// A source location: 1-based line and column.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line/column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// A synthetic span for generated code (line 0).
    pub fn synthetic() -> Self {
        Span { line: 0, col: 0 }
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::synthetic()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Reserved words recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants spell themselves
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Assign,
    Always,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    Parameter,
    Localparam,
    Integer,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not a parse
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "integer" => Keyword::Integer,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Integer => "integer",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The lexical token kinds of the Verilog subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A reserved word.
    Keyword(Keyword),
    /// An identifier (simple or escaped).
    Ident(String),
    /// A number literal, possibly sized/based (e.g. `4'b1010`).
    Number {
        /// Bit width when the literal is sized (e.g. the `4` in `4'b1010`).
        width: Option<u32>,
        /// The literal's value, truncated to 64 bits.
        value: u64,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `@`
    At,
    /// `#`
    Hash,
    /// `=`
    Eq,
    /// `<=` in statement position (non-blocking assign) or expression (`<=`).
    LtEq,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `===`
    EqEqEq,
    /// `!==`
    BangEqEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `~^` or `^~`
    TildeCaret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{k}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number { width, value } => match width {
                Some(w) => write!(f, "number `{w}'d{value}`"),
                None => write!(f, "number `{value}`"),
            },
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::At => f.write_str("`@`"),
            TokenKind::Hash => f.write_str("`#`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::LtEq => f.write_str("`<=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::BangEq => f.write_str("`!=`"),
            TokenKind::EqEqEq => f.write_str("`===`"),
            TokenKind::BangEqEq => f.write_str("`!==`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::GtEq => f.write_str("`>=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Amp => f.write_str("`&`"),
            TokenKind::AmpAmp => f.write_str("`&&`"),
            TokenKind::Pipe => f.write_str("`|`"),
            TokenKind::PipePipe => f.write_str("`||`"),
            TokenKind::Caret => f.write_str("`^`"),
            TokenKind::TildeCaret => f.write_str("`~^`"),
            TokenKind::Tilde => f.write_str("`~`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::Question => f.write_str("`?`"),
            TokenKind::Shl => f.write_str("`<<`"),
            TokenKind::Shr => f.write_str("`>>`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A lexed token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source the token starts.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
