//! Pretty-printer: emits parseable Verilog source from the AST.
//!
//! Used by the mutation engine (mutants are materialized as source), the RVDG
//! generator, and round-trip property tests. The printer always emits ANSI
//! port headers and fully parenthesized expressions, so `parse(print(ast))`
//! reproduces the expression structure exactly (spans and statement ids are
//! regenerated).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a module as Verilog source text.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), veribug_verilog::ParseError> {
/// let unit = veribug_verilog::parse("module m(input a, output y); assign y = ~a; endmodule")?;
/// let src = veribug_verilog::print_module(unit.top());
/// let reparsed = veribug_verilog::parse(&src)?;
/// assert_eq!(reparsed.top().assignments().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = write!(out, "module {}", module.name);
    if !module.ports.is_empty() {
        out.push_str("(\n");
        for (i, p) in module.ports.iter().enumerate() {
            let dir = p.dir.to_string();
            let reg = if p.is_reg { " reg" } else { "" };
            let range = if p.width > 1 {
                format!(" [{}:0]", p.width - 1)
            } else {
                String::new()
            };
            let sep = if i + 1 == module.ports.len() { "" } else { "," };
            let _ = writeln!(out, "  {dir}{reg}{range} {}{sep}", p.name);
        }
        out.push(')');
    }
    out.push_str(";\n");
    for d in &module.decls {
        // Skip decls that shadow ports (non-ANSI inputs re-declared as reg);
        // the ANSI header printed above already carries the storage class.
        if module.ports.iter().any(|p| p.name == d.name) {
            continue;
        }
        let kw = match d.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        if d.width > 1 {
            let _ = writeln!(out, "  {kw} [{}:0] {};", d.width - 1, d.name);
        } else {
            let _ = writeln!(out, "  {kw} {};", d.name);
        }
    }
    for item in &module.items {
        match item {
            Item::Assign(a) => {
                let _ = writeln!(
                    out,
                    "  assign {} = {};",
                    print_lvalue(&a.lhs),
                    print_expr(&a.rhs)
                );
            }
            Item::Always(blk) => {
                let sens = match &blk.sensitivity {
                    Sensitivity::Star => "*".to_owned(),
                    Sensitivity::Edges(edges) => edges
                        .iter()
                        .map(|(e, s)| {
                            let kw = match e {
                                EdgeKind::Pos => "posedge",
                                EdgeKind::Neg => "negedge",
                            };
                            format!("{kw} {s}")
                        })
                        .collect::<Vec<_>>()
                        .join(" or "),
                    Sensitivity::Level(names) => names.join(" or "),
                };
                let _ = writeln!(out, "  always @({sens}) begin");
                for s in &blk.body {
                    print_stmt(&mut out, s, 2);
                }
                out.push_str("  end\n");
            }
        }
    }
    out.push_str("endmodule\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Assign(a) => {
            indent(out, depth);
            let op = match a.kind {
                AssignKind::NonBlocking => "<=",
                _ => "=",
            };
            let _ = writeln!(out, "{} {op} {};", print_lvalue(&a.lhs), print_expr(&a.rhs));
        }
        Stmt::If(i) => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) begin", print_expr(&i.cond));
            for s in &i.then_branch {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if i.else_branch.is_empty() {
                out.push_str("end\n");
            } else {
                out.push_str("end else begin\n");
                for s in &i.else_branch {
                    print_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                out.push_str("end\n");
            }
        }
        Stmt::Case(c) => {
            indent(out, depth);
            let kw = if c.casez { "casez" } else { "case" };
            let _ = writeln!(out, "{kw} ({})", print_expr(&c.subject));
            for arm in &c.arms {
                indent(out, depth + 1);
                let labels = arm
                    .labels
                    .iter()
                    .map(print_expr)
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{labels}: begin");
                for s in &arm.body {
                    print_stmt(out, s, depth + 2);
                }
                indent(out, depth + 1);
                out.push_str("end\n");
            }
            if !c.default.is_empty() {
                indent(out, depth + 1);
                out.push_str("default: begin\n");
                for s in &c.default {
                    print_stmt(out, s, depth + 2);
                }
                indent(out, depth + 1);
                out.push_str("end\n");
            }
            indent(out, depth);
            out.push_str("endcase\n");
        }
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match &lv.select {
        None => lv.base.clone(),
        Some(Select::Bit(i)) => format!("{}[{}]", lv.base, print_expr(i)),
        Some(Select::Part { msb, lsb }) => format!("{}[{msb}:{lsb}]", lv.base),
    }
}

/// Renders an expression, fully parenthesized.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Ident { name, .. } => name.clone(),
        Expr::Literal { width, value, .. } => match width {
            Some(w) => format!("{w}'d{value}"),
            None => format!("{value}"),
        },
        Expr::Unary { op, operand, .. } => {
            format!("({}{})", op.symbol(), print_expr(operand))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
        Expr::Index { base, index, .. } => format!("{base}[{}]", print_expr(index)),
        Expr::Part { base, msb, lsb, .. } => format!("{base}[{msb}:{lsb}]"),
        Expr::Concat { parts, .. } => {
            let inner = parts.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{{{inner}}}")
        }
        Expr::Repeat { count, inner, .. } => {
            format!("{{{count}{{{}}}}}", print_expr(inner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn strip_volatile(unit: &SourceUnit) -> Vec<(AssignKind, String, String)> {
        unit.top()
            .assignments()
            .iter()
            .map(|a| (a.kind, print_lvalue(&a.lhs), print_expr(&a.rhs)))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let src = "\
module m(input clk, input a, input [3:0] b, output reg y, output [1:0] z);
  wire t;
  assign t = a ? b[0] : b[1];
  assign z = {a, t};
  always @(posedge clk) begin
    if (a & t) y <= b[2] ^ ~b[3];
    else y <= |b;
  end
endmodule
";
        let unit1 = parse(src).unwrap();
        let printed = print_module(unit1.top());
        let unit2 = parse(&printed).unwrap();
        assert_eq!(strip_volatile(&unit1), strip_volatile(&unit2));
        // Statement ids are regenerated in the same source order.
        let ids1: Vec<_> = unit1.top().assignments().iter().map(|a| a.id).collect();
        let ids2: Vec<_> = unit2.top().assignments().iter().map(|a| a.id).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn prints_case_roundtrip() {
        let src = "\
module m(input [1:0] sel, input a, output reg y);
  always @(*) begin
    case (sel)
      2'b00: y = a;
      default: y = 1'b0;
    endcase
  end
endmodule
";
        let unit1 = parse(src).unwrap();
        let printed = print_module(unit1.top());
        let unit2 = parse(&printed).unwrap();
        assert_eq!(strip_volatile(&unit1), strip_volatile(&unit2));
    }
}
