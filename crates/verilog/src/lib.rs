//! # veribug-verilog
//!
//! Lexer, parser, typed AST, and pretty-printer for the synthesizable
//! Verilog-2001 subset used throughout the VeriBug reproduction.
//!
//! The subset covers what the paper's designs and its Random Verilog Design
//! Generator exercise: modules with ANSI or non-ANSI port lists, `wire`/`reg`
//! declarations with constant ranges up to 64 bits, parameters (folded at
//! parse time), continuous assignments, combinational and edge-sensitive
//! `always` blocks, `if`/`else if`/`case`, blocking and non-blocking
//! assignments, the full unary/binary/ternary operator set, bit/part selects,
//! concatenation, and replication. Four-state logic (`x`/`z`) is excluded —
//! the downstream simulator is two-state.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), veribug_verilog::ParseError> {
//! use veribug_verilog::{parse, print_module};
//!
//! let unit = parse(
//!     "module arb(input req1, input req2, output gnt1);\n\
//!      assign gnt1 = req1 & ~req2;\nendmodule",
//! )?;
//! let module = unit.top();
//! assert_eq!(module.output_names(), vec!["gnt1"]);
//! let roundtrip = parse(&print_module(module))?;
//! assert_eq!(roundtrip.top().assignments().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{
    AlwaysBlock, AssignKind, Assignment, BinaryOp, CaseArm, CaseStmt, Decl, EdgeKind, Expr, IfStmt,
    Item, LValue, Module, NetKind, NodeKind, Param, Port, PortDir, Select, Sensitivity, SourceUnit,
    Stmt, StmtId, UnaryOp,
};
pub use error::ParseError;
pub use lexer::lex;
pub use parser::parse;
pub use pretty::{print_expr, print_module};
pub use token::{Span, Token, TokenKind};
