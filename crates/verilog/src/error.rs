//! Error types for lexing and parsing.

use crate::token::{Span, TokenKind};
use std::fmt;

/// An error produced while lexing or parsing Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it was found.
        span: Span,
    },
    /// A malformed number literal (bad base, overflow, empty digits).
    MalformedNumber {
        /// Human-readable detail.
        detail: String,
        /// Where the literal starts.
        span: Span,
    },
    /// An unterminated block comment.
    UnterminatedComment {
        /// Where the comment starts.
        span: Span,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// What was found.
        found: TokenKind,
        /// What the parser was expecting, human-readable.
        expected: String,
        /// Where the token is.
        span: Span,
    },
    /// A construct that is valid Verilog but outside the supported subset.
    Unsupported {
        /// Human-readable description of the construct.
        detail: String,
        /// Where it occurs.
        span: Span,
    },
    /// A semantic-level problem found during post-parse validation
    /// (e.g. duplicate declaration, undeclared identifier).
    Semantic {
        /// Human-readable detail.
        detail: String,
        /// Where it occurs.
        span: Span,
    },
}

impl ParseError {
    /// The source location the error points at.
    pub fn span(&self) -> Span {
        match self {
            ParseError::UnexpectedChar { span, .. }
            | ParseError::MalformedNumber { span, .. }
            | ParseError::UnterminatedComment { span }
            | ParseError::UnexpectedToken { span, .. }
            | ParseError::Unsupported { span, .. }
            | ParseError::Semantic { span, .. } => *span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { ch, span } => {
                write!(f, "unexpected character `{ch}` at {span}")
            }
            ParseError::MalformedNumber { detail, span } => {
                write!(f, "malformed number at {span}: {detail}")
            }
            ParseError::UnterminatedComment { span } => {
                write!(f, "unterminated block comment starting at {span}")
            }
            ParseError::UnexpectedToken {
                found,
                expected,
                span,
            } => write!(f, "expected {expected}, found {found} at {span}"),
            ParseError::Unsupported { detail, span } => {
                write!(f, "unsupported construct at {span}: {detail}")
            }
            ParseError::Semantic { detail, span } => {
                write!(f, "semantic error at {span}: {detail}")
            }
        }
    }
}

impl std::error::Error for ParseError {}
