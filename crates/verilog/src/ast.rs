//! Typed AST for the Verilog subset.
//!
//! The AST serves three masters:
//!
//! 1. the RTL simulator (`veribug-sim`) elaborates and executes it,
//! 2. the static analyzer (`veribug-cdfg`) builds CDFG/VDG views over it,
//! 3. VeriBug's feature extractor walks assignment ASTs to produce
//!    *leaf-to-leaf paths* whose interior node kinds come from [`NodeKind`].
//!
//! Every assignment (continuous, blocking, non-blocking) carries a stable
//! [`StmtId`] assigned in source order by the parser; golden and mutated
//! versions of the same design therefore agree on statement identity.

use crate::token::Span;
use std::fmt;

/// A stable identifier for an assignment statement within one module,
/// assigned in source order starting from zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A parsed source file (one or more modules).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceUnit {
    /// The modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceUnit {
    /// The first module, which is the design under analysis in this
    /// reproduction (hierarchical designs are flattened upstream).
    pub fn top(&self) -> &Module {
        &self.modules[0]
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout` (parsed but rejected by the simulator)
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Storage class of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NetKind {
    /// `wire` — driven by continuous assignments or combinational blocks.
    Wire,
    /// `reg` — assigned in procedural blocks.
    Reg,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bit width (1 for scalars).
    pub width: u32,
    /// Whether the port was also declared `reg`.
    pub is_reg: bool,
    /// Source location.
    pub span: Span,
}

/// An internal signal declaration (`wire`/`reg`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Decl {
    /// Signal name.
    pub name: String,
    /// Storage class.
    pub kind: NetKind,
    /// Bit width (1 for scalars).
    pub width: u32,
    /// Source location.
    pub span: Span,
}

/// A `parameter`/`localparam` binding (resolved to a constant at parse time).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Its constant value.
    pub value: u64,
    /// Declared width, if sized.
    pub width: Option<u32>,
    /// Source location.
    pub span: Span,
}

/// A Verilog module.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<Port>,
    /// Parameters (already substituted into expressions; kept for printing).
    pub params: Vec<Param>,
    /// Internal declarations.
    pub decls: Vec<Decl>,
    /// Module items in source order.
    pub items: Vec<Item>,
    /// Source location of the `module` keyword.
    pub span: Span,
}

impl Module {
    /// Width of a named signal (port or internal), if declared.
    pub fn width_of(&self, name: &str) -> Option<u32> {
        self.ports
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.width)
            .or_else(|| self.decls.iter().find(|d| d.name == name).map(|d| d.width))
    }

    /// Iterates over every assignment in the module, in source order,
    /// including those nested inside `if`/`case` bodies.
    pub fn assignments(&self) -> Vec<&Assignment> {
        let mut out = Vec::new();
        for item in &self.items {
            match item {
                Item::Assign(a) => out.push(a),
                Item::Always(b) => collect_assignments(&b.body, &mut out),
            }
        }
        out
    }

    /// Looks up an assignment by its stable id.
    pub fn assignment(&self, id: StmtId) -> Option<&Assignment> {
        self.assignments().into_iter().find(|a| a.id == id)
    }

    /// Names of all input ports.
    pub fn input_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Input)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all output ports.
    pub fn output_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.name.as_str())
            .collect()
    }
}

fn collect_assignments<'m>(stmts: &'m [Stmt], out: &mut Vec<&'m Assignment>) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => out.push(a),
            Stmt::If(i) => {
                collect_assignments(&i.then_branch, out);
                collect_assignments(&i.else_branch, out);
            }
            Stmt::Case(c) => {
                for arm in &c.arms {
                    collect_assignments(&arm.body, out);
                }
                collect_assignments(&c.default, out);
            }
        }
    }
}

/// A top-level module item.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Item {
    /// `assign lhs = rhs;`
    Assign(Assignment),
    /// An `always` block.
    Always(AlwaysBlock),
}

/// Which clock edge an edge-sensitive block triggers on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EdgeKind {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// An always block's sensitivity list.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Sensitivity {
    /// `always @(*)` — combinational.
    Star,
    /// `always @(posedge clk)` / `@(posedge clk or negedge rst_n)` — sequential.
    Edges(Vec<(EdgeKind, String)>),
    /// `always @(a or b or c)` — level-sensitive combinational.
    Level(Vec<String>),
}

impl Sensitivity {
    /// True for combinational sensitivity (`*` or a level list).
    pub fn is_combinational(&self) -> bool {
        !matches!(self, Sensitivity::Edges(_))
    }
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlwaysBlock {
    /// Trigger condition.
    pub sensitivity: Sensitivity,
    /// Statement body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// What flavor of assignment a statement is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AssignKind {
    /// `assign lhs = rhs;` at module scope.
    Continuous,
    /// `lhs = rhs;` inside a procedural block.
    Blocking,
    /// `lhs <= rhs;` inside a procedural block.
    NonBlocking,
}

impl AssignKind {
    /// The AST node kind that roots a path tree for this assignment.
    pub fn node_kind(self) -> NodeKind {
        match self {
            AssignKind::Continuous => NodeKind::ContinuousAssign,
            AssignKind::Blocking => NodeKind::BlockingAssignment,
            AssignKind::NonBlocking => NodeKind::NonBlockingAssignment,
        }
    }
}

/// An assignment statement — the unit of localization in VeriBug.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Assignment {
    /// Stable statement id (source order within the module).
    pub id: StmtId,
    /// Continuous / blocking / non-blocking.
    pub kind: AssignKind,
    /// Left-hand side.
    pub lhs: LValue,
    /// Right-hand side expression.
    pub rhs: Expr,
    /// Source location of the statement.
    pub span: Span,
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LValue {
    /// Base signal name.
    pub base: String,
    /// Optional bit/part select.
    pub select: Option<Select>,
    /// Source location.
    pub span: Span,
}

/// A bit or part select.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Select {
    /// `x[i]` with a (possibly dynamic) index expression.
    Bit(Box<Expr>),
    /// `x[msb:lsb]` with constant bounds.
    Part {
        /// Most-significant bit index.
        msb: u32,
        /// Least-significant bit index.
        lsb: u32,
    },
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Stmt {
    /// A blocking or non-blocking assignment.
    Assign(Assignment),
    /// `if (...) ... else ...`
    If(IfStmt),
    /// `case (...) ... endcase`
    Case(CaseStmt),
}

/// An `if` statement; `else if` chains nest in `else_branch`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IfStmt {
    /// Branch condition.
    pub cond: Expr,
    /// Taken when the condition is non-zero.
    pub then_branch: Vec<Stmt>,
    /// Taken otherwise (empty when there is no `else`).
    pub else_branch: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A `case`/`casez` statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CaseStmt {
    /// The discriminating expression.
    pub subject: Expr,
    /// Labelled arms in source order.
    pub arms: Vec<CaseArm>,
    /// The `default:` body (empty when absent).
    pub default: Vec<Stmt>,
    /// Whether this is `casez` (z/? wildcard matching is *not* supported;
    /// the flag is preserved for printing).
    pub casez: bool,
    /// Source location.
    pub span: Span,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CaseArm {
    /// Match labels (an arm may have several, comma-separated).
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Vec<Stmt>,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum UnaryOp {
    /// `~x` bitwise not
    Not,
    /// `!x` logical not
    LogicalNot,
    /// `-x` arithmetic negate
    Negate,
    /// `&x` reduction and
    RedAnd,
    /// `|x` reduction or
    RedOr,
    /// `^x` reduction xor
    RedXor,
    /// `~^x` reduction xnor
    RedXnor,
}

impl UnaryOp {
    /// AST node kind for path extraction.
    pub fn node_kind(self) -> NodeKind {
        match self {
            UnaryOp::Not => NodeKind::Not,
            UnaryOp::LogicalNot => NodeKind::LogicalNot,
            UnaryOp::Negate => NodeKind::Negate,
            UnaryOp::RedAnd => NodeKind::RedAnd,
            UnaryOp::RedOr => NodeKind::RedOr,
            UnaryOp::RedXor => NodeKind::RedXor,
            UnaryOp::RedXnor => NodeKind::RedXnor,
        }
    }

    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Not => "~",
            UnaryOp::LogicalNot => "!",
            UnaryOp::Negate => "-",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
            UnaryOp::RedXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BinaryOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===` (two-state: same as `==`)
    CaseEq,
    /// `!==` (two-state: same as `!=`)
    CaseNeq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinaryOp {
    /// AST node kind for path extraction.
    pub fn node_kind(self) -> NodeKind {
        match self {
            BinaryOp::And => NodeKind::And,
            BinaryOp::Or => NodeKind::Or,
            BinaryOp::Xor => NodeKind::Xor,
            BinaryOp::Xnor => NodeKind::Xnor,
            BinaryOp::LogAnd => NodeKind::LogAnd,
            BinaryOp::LogOr => NodeKind::LogOr,
            BinaryOp::Eq => NodeKind::Eq,
            BinaryOp::Neq => NodeKind::Neq,
            BinaryOp::CaseEq => NodeKind::Eq,
            BinaryOp::CaseNeq => NodeKind::Neq,
            BinaryOp::Lt => NodeKind::Lt,
            BinaryOp::Le => NodeKind::Le,
            BinaryOp::Gt => NodeKind::Gt,
            BinaryOp::Ge => NodeKind::Ge,
            BinaryOp::Add => NodeKind::Add,
            BinaryOp::Sub => NodeKind::Sub,
            BinaryOp::Mul => NodeKind::Mul,
            BinaryOp::Div => NodeKind::Div,
            BinaryOp::Mod => NodeKind::Mod,
            BinaryOp::Shl => NodeKind::Shl,
            BinaryOp::Shr => NodeKind::Shr,
        }
    }

    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "^",
            BinaryOp::Xnor => "~^",
            BinaryOp::LogAnd => "&&",
            BinaryOp::LogOr => "||",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::CaseEq => "===",
            BinaryOp::CaseNeq => "!==",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Expr {
    /// A signal reference.
    Ident {
        /// Signal name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// A number literal.
    Literal {
        /// Bit width when sized.
        width: Option<u32>,
        /// Value, truncated to the width.
        value: u64,
        /// Source location.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `cond ? then : else`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_expr: Box<Expr>,
        /// Value otherwise.
        else_expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `base[index]` bit select.
    Index {
        /// Base signal name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `base[msb:lsb]` part select with constant bounds.
    Part {
        /// Base signal name.
        base: String,
        /// Most-significant bit.
        msb: u32,
        /// Least-significant bit.
        lsb: u32,
        /// Source location.
        span: Span,
    },
    /// `{a, b, c}` concatenation (leftmost part is most significant).
    Concat {
        /// The concatenated parts.
        parts: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `{n{x}}` replication.
    Repeat {
        /// Replication count.
        count: u32,
        /// Replicated expression.
        inner: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::Literal { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Index { span, .. }
            | Expr::Part { span, .. }
            | Expr::Concat { span, .. }
            | Expr::Repeat { span, .. } => *span,
        }
    }

    /// Collects every signal name referenced by the expression, in
    /// left-to-right source order, with duplicates preserved.
    pub fn referenced_signals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out
    }

    fn collect_signals<'e>(&'e self, out: &mut Vec<&'e str>) {
        match self {
            Expr::Ident { name, .. } => out.push(name),
            Expr::Literal { .. } => {}
            Expr::Unary { operand, .. } => operand.collect_signals(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_signals(out);
                rhs.collect_signals(out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                cond.collect_signals(out);
                then_expr.collect_signals(out);
                else_expr.collect_signals(out);
            }
            Expr::Index { base, index, .. } => {
                out.push(base);
                index.collect_signals(out);
            }
            Expr::Part { base, .. } => out.push(base),
            Expr::Concat { parts, .. } => {
                for p in parts {
                    p.collect_signals(out);
                }
            }
            Expr::Repeat { inner, .. } => inner.collect_signals(out),
        }
    }
}

/// The AST-node vocabulary for VeriBug's leaf-to-leaf paths.
///
/// Each interior node of an assignment's AST (including the assignment root
/// and the `Lvalue`/`Rvalue` wrappers, per Fig. 2 of the paper) maps to one of
/// these kinds. The [`NodeKind::ALL`] array fixes an indexing used for the
/// learned token embeddings, so its order must stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NodeKind {
    /// Root of a continuous `assign`.
    ContinuousAssign,
    /// Root of a blocking procedural assignment.
    BlockingAssignment,
    /// Root of a non-blocking procedural assignment.
    NonBlockingAssignment,
    /// Wrapper over the assignment target.
    Lvalue,
    /// Wrapper over the right-hand side.
    Rvalue,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-` (binary)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `~`
    Not,
    /// `!`
    LogicalNot,
    /// `-` (unary)
    Negate,
    /// `&x`
    RedAnd,
    /// `|x`
    RedOr,
    /// `^x`
    RedXor,
    /// `~^x`
    RedXnor,
    /// `?:` node
    Ternary,
    /// Position marker: child is the ternary condition.
    TernaryCond,
    /// Position marker: child is the ternary then-value.
    TernaryThen,
    /// Position marker: child is the ternary else-value.
    TernaryElse,
    /// `x[i]`
    BitSelect,
    /// `x[m:l]`
    PartSelect,
    /// `{...}`
    Concat,
    /// `{n{...}}`
    Repeat,
    /// A constant leaf.
    Literal,
    /// A signal leaf (operand).
    Operand,
}

impl NodeKind {
    /// Every node kind, in embedding-index order. **Do not reorder**: trained
    /// models serialize token embeddings positionally against this array.
    pub const ALL: [NodeKind; 41] = [
        NodeKind::ContinuousAssign,
        NodeKind::BlockingAssignment,
        NodeKind::NonBlockingAssignment,
        NodeKind::Lvalue,
        NodeKind::Rvalue,
        NodeKind::And,
        NodeKind::Or,
        NodeKind::Xor,
        NodeKind::Xnor,
        NodeKind::LogAnd,
        NodeKind::LogOr,
        NodeKind::Eq,
        NodeKind::Neq,
        NodeKind::Lt,
        NodeKind::Le,
        NodeKind::Gt,
        NodeKind::Ge,
        NodeKind::Add,
        NodeKind::Sub,
        NodeKind::Mul,
        NodeKind::Div,
        NodeKind::Mod,
        NodeKind::Shl,
        NodeKind::Shr,
        NodeKind::Not,
        NodeKind::LogicalNot,
        NodeKind::Negate,
        NodeKind::RedAnd,
        NodeKind::RedOr,
        NodeKind::RedXor,
        NodeKind::RedXnor,
        NodeKind::Ternary,
        NodeKind::TernaryCond,
        NodeKind::TernaryThen,
        NodeKind::TernaryElse,
        NodeKind::BitSelect,
        NodeKind::PartSelect,
        NodeKind::Concat,
        NodeKind::Repeat,
        NodeKind::Literal,
        NodeKind::Operand,
    ];

    /// The embedding index of this kind (its position in [`NodeKind::ALL`]).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every NodeKind is listed in ALL")
    }

    /// Number of distinct node kinds (the token-embedding vocabulary size).
    pub fn vocab_size() -> usize {
        Self::ALL.len()
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_indices_are_consistent() {
        for (i, k) in NodeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(NodeKind::vocab_size(), 41);
    }

    #[test]
    fn referenced_signals_in_order_with_duplicates() {
        let e = Expr::Binary {
            op: BinaryOp::And,
            lhs: Box::new(Expr::Ident {
                name: "a".into(),
                span: Span::synthetic(),
            }),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(Expr::Ident {
                    name: "b".into(),
                    span: Span::synthetic(),
                }),
                rhs: Box::new(Expr::Ident {
                    name: "a".into(),
                    span: Span::synthetic(),
                }),
                span: Span::synthetic(),
            }),
            span: Span::synthetic(),
        };
        assert_eq!(e.referenced_signals(), vec!["a", "b", "a"]);
    }

    #[test]
    fn assign_kind_roots() {
        assert_eq!(
            AssignKind::Continuous.node_kind(),
            NodeKind::ContinuousAssign
        );
        assert_eq!(
            AssignKind::Blocking.node_kind(),
            NodeKind::BlockingAssignment
        );
        assert_eq!(
            AssignKind::NonBlocking.node_kind(),
            NodeKind::NonBlockingAssignment
        );
    }
}
