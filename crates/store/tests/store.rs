//! Robustness tests: corrupted entries load as misses, concurrent
//! same-key writers never produce a torn read, and byte-budget eviction
//! is deterministic.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use veribug_store::{hash, ArtifactKind, Store, DEFAULT_BUDGET, FORMAT};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veribug-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn truncated_entry_is_a_miss_and_self_heals() {
    let s = Store::open(temp_root("trunc"), DEFAULT_BUDGET).unwrap();
    let key = hash::fnv1a(b"some payload");
    s.put(ArtifactKind::Design, key, b"some payload").unwrap();
    let path = s.entry_path(ArtifactKind::Design, key);
    let full = fs::read(&path).unwrap();
    for cut in [0, 1, 5, full.len() / 2, full.len() - 1] {
        fs::write(&path, &full[..cut]).unwrap();
        assert_eq!(s.get(ArtifactKind::Design, key), None, "cut at {cut}");
        assert!(!path.exists(), "corrupt entry deleted (cut at {cut})");
        fs::write(&path, &full).unwrap();
    }
    assert_eq!(
        s.get(ArtifactKind::Design, key).as_deref(),
        Some(&b"some payload"[..])
    );
    assert_eq!(s.stats().corrupt, 5);
    fs::remove_dir_all(s.root()).unwrap();
}

#[test]
fn flipped_payload_byte_is_a_miss() {
    let s = Store::open(temp_root("flip"), DEFAULT_BUDGET).unwrap();
    let key = 42;
    s.put(ArtifactKind::Weights, key, b"weights payload")
        .unwrap();
    let path = s.entry_path(ArtifactKind::Weights, key);
    let mut raw = fs::read(&path).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0x01;
    fs::write(&path, &raw).unwrap();
    assert_eq!(
        s.get(ArtifactKind::Weights, key),
        None,
        "checksum catches bit flip"
    );
    fs::remove_dir_all(s.root()).unwrap();
}

#[test]
fn wrong_version_or_kind_or_key_is_a_miss() {
    let s = Store::open(temp_root("version"), DEFAULT_BUDGET).unwrap();
    let key = 7;
    let good = {
        s.put(ArtifactKind::Campaign, key, b"rows").unwrap();
        fs::read(s.entry_path(ArtifactKind::Campaign, key)).unwrap()
    };
    let good_text = String::from_utf8(good).unwrap();
    let cases = [
        (
            "future version",
            good_text.replace(FORMAT, "veribug-store v2"),
        ),
        ("other tool", good_text.replace(FORMAT, "not-a-store")),
        (
            "kind mismatch",
            good_text.replace("kind campaign", "kind design"),
        ),
        (
            "key mismatch",
            good_text.replace(
                &format!("key {}", hash::key_hex(key)),
                &format!("key {}", hash::key_hex(8)),
            ),
        ),
        (
            "declared length too long",
            good_text.replace("len 4", "len 400"),
        ),
    ];
    for (what, doctored) in cases {
        fs::write(s.entry_path(ArtifactKind::Campaign, key), doctored).unwrap();
        assert_eq!(s.get(ArtifactKind::Campaign, key), None, "{what}");
        fs::write(s.entry_path(ArtifactKind::Campaign, key), &good_text).unwrap();
    }
    assert_eq!(
        s.get(ArtifactKind::Campaign, key).as_deref(),
        Some(&b"rows"[..])
    );
    fs::remove_dir_all(s.root()).unwrap();
}

#[test]
fn concurrent_same_key_writes_never_tear() {
    let root = temp_root("race");
    let store = Arc::new(Store::open(&root, DEFAULT_BUDGET).unwrap());
    let key = hash::fnv1a(b"contended");
    // Two distinct payloads of different lengths so a torn read (header
    // from one write, payload from the other) cannot pass verification by
    // accident.
    let a = vec![b'a'; 4096];
    let b = vec![b'b'; 9000];
    store.put(ArtifactKind::Design, key, &a).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for payload in [a.clone(), b.clone()] {
        // Separate handles over the same root, like separate processes.
        let w = Store::open(&root, DEFAULT_BUDGET).unwrap();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                w.put(ArtifactKind::Design, key, &payload).unwrap();
            }
        }));
    }
    let mut reads = 0u32;
    while reads < 400 {
        let got = store
            .get(ArtifactKind::Design, key)
            .expect("entry always present and intact under concurrent rewrites");
        assert!(got == a || got == b, "read a complete payload, not a blend");
        reads += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(store.stats().corrupt, 0, "no torn reads observed");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn eviction_respects_the_byte_budget_deterministically() {
    // Entries of 100 payload bytes each; header is ~60 bytes, so pick a
    // budget that keeps exactly two entries.
    let probe = Store::open(temp_root("evict-probe"), DEFAULT_BUDGET).unwrap();
    probe.put(ArtifactKind::Design, 0, &[b'x'; 100]).unwrap();
    let entry_bytes = probe.total_bytes().unwrap();
    fs::remove_dir_all(probe.root()).unwrap();

    let budget = entry_bytes * 2;
    let root = temp_root("evict");
    // Stage through a generous handle (puts enforce the budget eagerly,
    // which would interfere with the pinned timestamps below), then sweep
    // through a handle with the budget under test.
    let stage = Store::open(&root, DEFAULT_BUDGET).unwrap();
    for key in [10u64, 11, 12, 13] {
        stage.put(ArtifactKind::Design, key, &[b'x'; 100]).unwrap();
        // Pin distinct, widely spaced modification times so recency order
        // is unambiguous regardless of filesystem timestamp resolution:
        // oldest = key 10, newest = key 13.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(stage.entry_path(ArtifactKind::Design, key))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(1000 * key))
            .unwrap();
    }
    let s = Store::open(&root, budget).unwrap();
    let report = s.gc().unwrap();
    assert_eq!(report.removed, 2, "two oldest evicted");
    assert_eq!(report.freed, entry_bytes * 2);
    assert_eq!(report.remaining_bytes, entry_bytes * 2);
    assert!(report.remaining_bytes <= budget);
    let surviving: Vec<u64> = s.list().unwrap().iter().map(|e| e.key).collect();
    assert_eq!(surviving, vec![12, 13], "oldest-first, so 10 and 11 go");
    assert_eq!(s.stats().evictions, 2);

    fs::remove_dir_all(&root).unwrap();

    // Ties in modification time break by key, deterministically. Stage
    // with a generous budget, then sweep through a tighter handle over
    // the same root (stores are plain directories; budgets are per
    // handle).
    let root = temp_root("evict-tie");
    let big = Store::open(&root, DEFAULT_BUDGET).unwrap();
    let tied = SystemTime::UNIX_EPOCH + Duration::from_secs(999_999);
    for (key, mtime) in [
        (20u64, tied),
        (21, tied),
        (22, tied + Duration::from_secs(5)),
    ] {
        big.put(ArtifactKind::Design, key, &[b'y'; 100]).unwrap();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(big.entry_path(ArtifactKind::Design, key))
            .unwrap();
        f.set_modified(mtime).unwrap();
    }
    let small = Store::open(&root, entry_bytes * 2).unwrap();
    small.gc().unwrap();
    let surviving: Vec<u64> = small.list().unwrap().iter().map(|e| e.key).collect();
    assert_eq!(
        surviving,
        vec![21, 22],
        "tied pair evicts the smaller key first"
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn put_enforces_budget_automatically() {
    let probe = Store::open(temp_root("auto-probe"), DEFAULT_BUDGET).unwrap();
    probe.put(ArtifactKind::Design, 0, &[b'x'; 50]).unwrap();
    let entry_bytes = probe.total_bytes().unwrap();
    fs::remove_dir_all(probe.root()).unwrap();

    let s = Store::open(temp_root("auto"), entry_bytes * 3).unwrap();
    for key in 0..10u64 {
        s.put(ArtifactKind::Design, key, &[b'x'; 50]).unwrap();
        // Space out recency without sleeping.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(s.entry_path(ArtifactKind::Design, key))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(100 * (key + 1)))
            .unwrap();
    }
    assert!(
        s.total_bytes().unwrap() <= entry_bytes * 3,
        "puts keep the store under budget"
    );
    let surviving: Vec<u64> = s.list().unwrap().iter().map(|e| e.key).collect();
    assert_eq!(surviving, vec![7, 8, 9]);
    fs::remove_dir_all(s.root()).unwrap();
}
