//! The workspace's one FNV-1a implementation.
//!
//! Every content-addressed key in the project — the serve design cache,
//! `persist::content_hash`, store artifact keys, bench seed derivation —
//! routes through this module, so a key computed in one process matches
//! the same bytes hashed anywhere else.

/// The FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` (the 64-bit variant).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// [`fnv1a`] rendered as the canonical 16-digit lowercase hex key.
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    key_hex(fnv1a(bytes))
}

/// Renders a key in the canonical form used for file names and manifests:
/// exactly 16 lowercase hex digits, zero-padded.
#[must_use]
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a key rendered by [`key_hex`]. Strict: exactly 16 lowercase hex
/// digits, so directory listings cannot alias two spellings of one key.
#[must_use]
pub fn parse_key(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// An incremental FNV-1a hasher for callers that produce bytes in pieces
/// (manifest builders, streamed payloads).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub const fn new() -> Fnv1a {
        Fnv1a(OFFSET_BASIS)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    /// The hash of everything folded in so far.
    #[must_use]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv1a(b""), OFFSET_BASIS);
    }

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"module top");
        h.update(b"(input a);");
        h.update(b"");
        assert_eq!(h.finish(), fnv1a(b"module top(input a);"));
    }

    #[test]
    fn discriminates_nearby_inputs() {
        assert_ne!(fnv1a(b"assign z = a & b;"), fnv1a(b"assign z = a | b;"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn hex_key_roundtrips_and_is_strict() {
        let k = fnv1a(b"roundtrip");
        assert_eq!(parse_key(&key_hex(k)), Some(k));
        assert_eq!(key_hex(0).len(), 16);
        assert_eq!(parse_key(&key_hex(0)), Some(0));
        assert_eq!(parse_key("short"), None);
        assert_eq!(parse_key("00000000000000001"), None, "too long");
        assert_eq!(parse_key("000000000000000G"), None, "bad digit");
        assert_eq!(parse_key("000000000000000A"), None, "uppercase rejected");
    }
}
