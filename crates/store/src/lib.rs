//! `veribug-store`: a persistent, content-addressed artifact store.
//!
//! Every artifact the pipeline produces that is expensive to recompute —
//! design sources worth precompiling, trained model weights, campaign
//! evaluation results — can be parked on disk under a content hash and
//! found again by any later process. The store is deliberately primitive:
//!
//! * **Layout is the index.** Entries live at `<root>/<kind>/<key>.art`
//!   where `key` is 16 lowercase hex digits ([`hash::key_hex`]). There is
//!   no shared mutable index file to corrupt or race on; a directory scan
//!   *is* the manifest, and each entry carries its own header.
//! * **Writes are atomic.** An entry is staged under `<root>/tmp/` and
//!   published with a single `rename`, so concurrent writers of the same
//!   key settle on one complete entry and readers never observe a torn
//!   file.
//! * **Loads are corruption-tolerant.** Every entry embeds a format
//!   version, its kind, its key, a checksum of the payload, and the
//!   payload length. Anything that fails verification — truncation, bit
//!   rot, a future format — is a **miss**, never a crash; the offending
//!   file is deleted so the slot heals on the next write.
//! * **Eviction is LRU by age under a byte budget.** Each successful read
//!   bumps the entry's modification time; [`Store::gc`] removes
//!   oldest-first (ties broken by kind then key, so eviction order is
//!   deterministic) until the store fits the budget.
//!
//! The store is `std`-only. Counters (`store.hits` / `store.misses` /
//! `store.writes` / `store.evictions` / `store.corrupt` and the
//! `store.bytes` gauge) flow into the `obs` registry when collection is
//! enabled, and are additionally kept as plain atomics so a server can
//! report occupancy in `/statusz` even with telemetry off.

#![warn(missing_docs)]

pub mod hash;

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

static STORE_HITS: obs::LazyCounter = obs::LazyCounter::new("store.hits");
static STORE_MISSES: obs::LazyCounter = obs::LazyCounter::new("store.misses");
static STORE_WRITES: obs::LazyCounter = obs::LazyCounter::new("store.writes");
static STORE_EVICTIONS: obs::LazyCounter = obs::LazyCounter::new("store.evictions");
static STORE_CORRUPT: obs::LazyCounter = obs::LazyCounter::new("store.corrupt");
static STORE_BYTES: obs::LazyGauge = obs::LazyGauge::new("store.bytes");

/// First line of every entry file; bump the trailing version on breaking
/// format changes. Entries with any other first line load as misses.
pub const FORMAT: &str = "veribug-store v1";

/// Default byte budget when `VERIBUG_STORE_BUDGET` is unset: 1 GiB.
pub const DEFAULT_BUDGET: u64 = 1 << 30;

/// Environment variable naming the store root directory.
pub const ENV_ROOT: &str = "VERIBUG_STORE";

/// Environment variable overriding the byte budget (decimal bytes).
pub const ENV_BUDGET: &str = "VERIBUG_STORE_BUDGET";

/// What an artifact is, which decides the subdirectory it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A Verilog design source worth precompiling on restart. The key is
    /// the FNV-1a hash of the source bytes (same as the serve cache key).
    Design,
    /// Trained model weights in the `persist` text format. The key is the
    /// hash of the training manifest (corpus, epochs, seed, format).
    Weights,
    /// Campaign / evaluation results. The key is the hash of the
    /// evaluation manifest (weights hash, seeds, budgets).
    Campaign,
}

impl ArtifactKind {
    /// Every kind, in the canonical listing order.
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::Design,
        ArtifactKind::Weights,
        ArtifactKind::Campaign,
    ];

    /// The subdirectory (and header token) for this kind.
    #[must_use]
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::Design => "design",
            ArtifactKind::Weights => "weights",
            ArtifactKind::Campaign => "campaign",
        }
    }

    /// Inverse of [`dir_name`](ArtifactKind::dir_name).
    #[must_use]
    pub fn parse(s: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.dir_name() == s)
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so callers' width/alignment specifiers
        // apply — `store ls` prints these in fixed-width columns.
        f.pad(self.dir_name())
    }
}

/// One row of [`Store::list`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// The artifact kind.
    pub kind: ArtifactKind,
    /// The entry key.
    pub key: u64,
    /// On-disk size of the entry file (header + payload).
    pub bytes: u64,
    /// When the entry was last written or successfully read.
    pub modified: SystemTime,
    /// `now - modified`, saturating to zero.
    pub age: Duration,
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcReport {
    /// Entries removed.
    pub removed: usize,
    /// Bytes freed.
    pub freed: u64,
    /// Bytes still resident after the sweep.
    pub remaining_bytes: u64,
}

/// A point-in-time snapshot of this handle's operation counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Successful [`Store::get`] calls.
    pub hits: u64,
    /// [`Store::get`] calls that found nothing usable.
    pub misses: u64,
    /// Successful [`Store::put`] calls.
    pub writes: u64,
    /// Entries removed by budget enforcement.
    pub evictions: u64,
    /// Entries that failed verification and were discarded.
    pub corrupt: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

/// The store handle. Cheap to share behind an `Arc`; all methods take
/// `&self` and are safe to call from multiple threads and processes
/// pointed at the same root.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    budget: u64,
    handle_id: u64,
    seq: AtomicU64,
    stats: StatCells,
}

/// Distinguishes staged-write names between `Store` handles that share a
/// process (and therefore a pid).
static NEXT_HANDLE_ID: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) a store rooted at `root` with the given
    /// byte budget. A budget of zero means "evict everything on gc" —
    /// useful for tests, never useful in production.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from creating the root/kind/tmp directories.
    pub fn open(root: impl AsRef<Path>, budget: u64) -> io::Result<Store> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("tmp"))?;
        for kind in ArtifactKind::ALL {
            fs::create_dir_all(root.join(kind.dir_name()))?;
        }
        let store = Store {
            root,
            budget,
            handle_id: NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
            stats: StatCells::default(),
        };
        // Publish occupancy at open so a read-only process (a warm
        // restart that never writes) still reports `store.bytes`.
        store.set_bytes_gauge();
        Ok(store)
    }

    /// Opens the store named by the `VERIBUG_STORE` environment variable,
    /// or returns `Ok(None)` when the variable is unset or empty. The
    /// budget comes from `VERIBUG_STORE_BUDGET` (decimal bytes, default
    /// [`DEFAULT_BUDGET`]).
    ///
    /// # Errors
    ///
    /// Directory-creation failures from [`Store::open`], or
    /// `InvalidInput` when `VERIBUG_STORE_BUDGET` is not a decimal
    /// integer.
    pub fn from_env() -> io::Result<Option<Store>> {
        let root = match std::env::var(ENV_ROOT) {
            Ok(v) if !v.is_empty() => v,
            _ => return Ok(None),
        };
        Store::open(root, env_budget()?).map(Some)
    }

    /// The store root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Where an entry for `(kind, key)` lives (whether or not it exists).
    #[must_use]
    pub fn entry_path(&self, kind: ArtifactKind, key: u64) -> PathBuf {
        self.root
            .join(kind.dir_name())
            .join(format!("{}.art", hash::key_hex(key)))
    }

    /// Stores `payload` under `(kind, key)`, replacing any existing entry,
    /// then enforces the byte budget. The write is staged in `tmp/` and
    /// published with one `rename`, so a concurrent reader sees either the
    /// old complete entry or the new complete entry.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from staging, renaming, or the budget sweep.
    pub fn put(&self, kind: ArtifactKind, key: u64, payload: &[u8]) -> io::Result<()> {
        // Staged names must be unique across processes (pid), across
        // handles within a process (handle id), and across writes from
        // one handle (seq) — otherwise two writers could stage into the
        // same file and one rename would snatch the other's bytes.
        let staged = self.root.join("tmp").join(format!(
            "{}-{}-{}.tmp",
            std::process::id(),
            self.handle_id,
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&staged)?;
            f.write_all(
                format!(
                    "{FORMAT}\nkind {}\nkey {}\nsum {}\nlen {}\n",
                    kind.dir_name(),
                    hash::key_hex(key),
                    hash::fnv1a_hex(payload),
                    payload.len()
                )
                .as_bytes(),
            )?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        let result = fs::rename(&staged, self.entry_path(kind, key));
        if result.is_err() {
            let _ = fs::remove_file(&staged);
        }
        result?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        STORE_WRITES.incr();
        self.enforce_budget()?;
        Ok(())
    }

    /// Loads the payload stored under `(kind, key)`, or `None` on a miss.
    /// A miss is *any* failure: no entry, unreadable file, truncated
    /// header, wrong format version, kind/key/length/checksum mismatch.
    /// Entries that exist but fail verification are deleted so the slot
    /// heals. A successful read bumps the entry's modification time,
    /// which is the recency signal eviction sorts on.
    #[must_use]
    pub fn get(&self, kind: ArtifactKind, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                STORE_MISSES.incr();
                return None;
            }
        };
        match parse_entry(&raw, kind, key) {
            Some(payload) => {
                if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                STORE_HITS.incr();
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                STORE_CORRUPT.incr();
                STORE_MISSES.incr();
                None
            }
        }
    }

    /// Removes the entry for `key` under every kind. Returns how many
    /// entries were deleted (a key can exist under several kinds).
    ///
    /// # Errors
    ///
    /// Any `io::Error` other than "not found" from the deletions.
    pub fn remove(&self, key: u64) -> io::Result<usize> {
        let mut removed = 0;
        for kind in ArtifactKind::ALL {
            match fs::remove_file(self.entry_path(kind, key)) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.set_bytes_gauge();
        Ok(removed)
    }

    /// Every resident entry, sorted by kind then key.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from scanning the kind directories.
    pub fn list(&self) -> io::Result<Vec<EntryInfo>> {
        let now = SystemTime::now();
        let mut out = Vec::new();
        for kind in ArtifactKind::ALL {
            for entry in fs::read_dir(self.root.join(kind.dir_name()))? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".art")) else {
                    continue;
                };
                let Some(key) = hash::parse_key(stem) else {
                    continue;
                };
                let meta = entry.metadata()?;
                let modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push(EntryInfo {
                    kind,
                    key,
                    bytes: meta.len(),
                    modified,
                    age: now.duration_since(modified).unwrap_or(Duration::ZERO),
                });
            }
        }
        out.sort_by_key(|e| (e.kind.dir_name(), e.key));
        Ok(out)
    }

    /// Total bytes resident across all kinds.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from scanning the kind directories.
    pub fn total_bytes(&self) -> io::Result<u64> {
        Ok(self.list()?.iter().map(|e| e.bytes).sum())
    }

    /// Enforces the byte budget now: removes entries oldest-first (ties
    /// broken by kind then key, so two stores holding the same files
    /// always evict in the same order) until total size fits.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from scanning or deleting.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut entries = self.list()?;
        entries.sort_by_key(|e| (e.modified, e.kind.dir_name(), e.key));
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport {
            remaining_bytes: total,
            ..GcReport::default()
        };
        for e in &entries {
            if total <= self.budget {
                break;
            }
            match fs::remove_file(self.entry_path(e.kind, e.key)) {
                Ok(()) => {
                    total -= e.bytes;
                    report.removed += 1;
                    report.freed += e.bytes;
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    STORE_EVICTIONS.incr();
                }
                // A concurrent process beat us to it; its bytes are gone
                // either way.
                Err(err) if err.kind() == io::ErrorKind::NotFound => total -= e.bytes,
                Err(err) => return Err(err),
            }
        }
        report.remaining_bytes = total;
        #[allow(clippy::cast_precision_loss)]
        STORE_BYTES.set(total as f64);
        Ok(report)
    }

    /// This handle's operation counts.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
        }
    }

    fn enforce_budget(&self) -> io::Result<()> {
        if self.total_bytes()? > self.budget {
            self.gc()?;
        } else {
            self.set_bytes_gauge();
        }
        Ok(())
    }

    fn set_bytes_gauge(&self) {
        if let Ok(total) = self.total_bytes() {
            #[allow(clippy::cast_precision_loss)]
            STORE_BYTES.set(total as f64);
        }
    }
}

/// The byte budget named by `VERIBUG_STORE_BUDGET`, or [`DEFAULT_BUDGET`]
/// when unset or empty.
///
/// # Errors
///
/// `InvalidInput` when the variable is set but not a decimal integer.
pub fn env_budget() -> io::Result<u64> {
    match std::env::var(ENV_BUDGET) {
        Ok(v) if !v.is_empty() => v.parse::<u64>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{ENV_BUDGET} must be a decimal byte count, got {v:?}"),
            )
        }),
        _ => Ok(DEFAULT_BUDGET),
    }
}

/// Verifies one raw entry file against the expected kind/key and returns
/// its payload. `None` means the entry is unusable in any way.
fn parse_entry(raw: &[u8], kind: ArtifactKind, key: u64) -> Option<Vec<u8>> {
    let mut rest = raw;
    let mut next_line = || -> Option<&str> {
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let (line, tail) = rest.split_at(nl);
        rest = &tail[1..];
        std::str::from_utf8(line).ok()
    };
    if next_line()? != FORMAT {
        return None;
    }
    if next_line()?.strip_prefix("kind ")? != kind.dir_name() {
        return None;
    }
    if hash::parse_key(next_line()?.strip_prefix("key ")?)? != key {
        return None;
    }
    let sum = hash::parse_key(next_line()?.strip_prefix("sum ")?)?;
    let len: usize = next_line()?.strip_prefix("len ")?.parse().ok()?;
    if rest.len() != len || hash::fnv1a(rest) != sum {
        return None;
    }
    Some(rest.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("veribug-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = Store::open(temp_root("roundtrip"), DEFAULT_BUDGET).unwrap();
        let key = hash::fnv1a(b"payload");
        assert_eq!(store.get(ArtifactKind::Design, key), None);
        store.put(ArtifactKind::Design, key, b"payload").unwrap();
        assert_eq!(
            store.get(ArtifactKind::Design, key).as_deref(),
            Some(&b"payload"[..])
        );
        assert_eq!(
            store.get(ArtifactKind::Weights, key),
            None,
            "kinds are disjoint"
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 2, 1));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn kind_parse_roundtrips() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::parse(kind.dir_name()), Some(kind));
        }
        assert_eq!(ArtifactKind::parse("designs"), None);
    }

    #[test]
    fn remove_deletes_across_kinds() {
        let store = Store::open(temp_root("remove"), DEFAULT_BUDGET).unwrap();
        let key = 0xabcd;
        store.put(ArtifactKind::Design, key, b"a").unwrap();
        store.put(ArtifactKind::Weights, key, b"b").unwrap();
        assert_eq!(store.remove(key).unwrap(), 2);
        assert_eq!(store.remove(key).unwrap(), 0);
        assert_eq!(store.get(ArtifactKind::Design, key), None);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn list_reports_sizes_and_sorted_order() {
        let store = Store::open(temp_root("list"), DEFAULT_BUDGET).unwrap();
        store.put(ArtifactKind::Weights, 2, b"ww").unwrap();
        store.put(ArtifactKind::Design, 9, b"dddd").unwrap();
        store.put(ArtifactKind::Design, 3, b"dd").unwrap();
        let rows = store.list().unwrap();
        let keys: Vec<(ArtifactKind, u64)> = rows.iter().map(|e| (e.kind, e.key)).collect();
        assert_eq!(
            keys,
            vec![
                (ArtifactKind::Design, 3),
                (ArtifactKind::Design, 9),
                (ArtifactKind::Weights, 2)
            ]
        );
        assert_eq!(
            rows[1].bytes - rows[0].bytes,
            2,
            "entry size tracks payload size (same header width)"
        );
        fs::remove_dir_all(store.root()).unwrap();
    }
}
