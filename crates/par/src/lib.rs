//! Deterministic parallel execution primitives for the VeriBug pipeline.
//!
//! Every fan-out in the workspace (mutation campaigns, dataset building,
//! minibatch training, evaluation, experiment sweeps) goes through this
//! crate. The contract is **thread-count invariance**: results are collected
//! into pre-allocated slots indexed by task id, so the output of [`par_map`]
//! is always in input order, byte-for-byte identical whether it ran on one
//! thread or sixteen. Callers that need floating-point reproducibility
//! additionally partition their work into *fixed-size* chunks (see
//! [`par_chunk_map`]) so reduction trees never depend on the worker count.
//!
//! Thread count resolution, highest priority first:
//! 1. a [`with_threads`] override on the calling thread (used by tests),
//! 2. the `VERIBUG_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (honoured for
//!    compatibility with rayon-based tooling),
//! 4. [`std::thread::available_parallelism`].
//!
//! Built on `std::thread::scope` only — no external dependencies, which
//! keeps the workspace buildable in offline environments.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous thread-count override even if the closure panics.
struct OverrideGuard {
    prev: Option<usize>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Runs `f` with the worker-thread budget pinned to `n` on this thread.
///
/// The override nests (the innermost wins) and is restored on unwind.
/// Results must not change with `n` — this exists so determinism tests can
/// compare runs at different thread counts, and so callers can serialise
/// sections without mutating process-global environment variables.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _guard = OverrideGuard { prev };
    f()
}

/// The number of worker threads fan-outs on this thread will use.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n;
    }
    for var in ["VERIBUG_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(s) = std::env::var(var) {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(0..n)` across the available worker threads and returns the
/// results ordered by task index.
///
/// Tasks are pulled from a shared atomic cursor (work-stealing by index),
/// but each result lands in its own pre-allocated slot, so the returned
/// `Vec` is in task order regardless of scheduling. With one worker (or a
/// single task) no threads are spawned at all. A panicking task propagates
/// once all workers have stopped.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Per-slot `Mutex<Option<R>>` rather than `OnceLock<R>` so only
    // `R: Send` is required; each lock is taken exactly once, uncontended.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Spans and metrics recorded inside workers nest under the span that
    // launched the fan-out, and worker shards are flushed before the scope
    // observes the task as finished (TLS destructors run too late for a
    // snapshot taken right after this returns).
    let ctx = obs::current_context();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                obs::with_context(ctx, || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    let prev = slots[i].lock().expect("slot lock poisoned").replace(value);
                    assert!(prev.is_none(), "task {i} ran twice");
                });
                obs::flush_thread();
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

/// Maps `f` over fixed-size chunks of `items` in parallel, preserving chunk
/// order; `f` receives the chunk index and the chunk slice.
///
/// The chunk boundaries depend only on `chunk_size` and `items.len()` —
/// never on the worker count — so per-chunk reductions merged in chunk
/// order are bit-identical at any thread count. The final chunk may be
/// shorter. `chunk_size` must be non-zero.
pub fn par_chunk_map<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be non-zero");
    let chunks = items.len().div_ceil(chunk_size);
    par_run(chunks, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(items.len());
        f(i, &items[start..end])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || par_map(&items, |x| x * x));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_run_handles_empty_and_single() {
        assert_eq!(par_run(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn chunk_boundaries_ignore_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let serial = with_threads(1, || par_chunk_map(&items, 8, |i, c| (i, c.to_vec())));
        let parallel = with_threads(8, || par_chunk_map(&items, 8, |i, c| (i, c.to_vec())));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[2].1.len(), 7);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(4, || {
            assert_eq!(max_threads(), 4);
            with_threads(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 4);
        });
    }

    #[test]
    fn with_threads_restores_on_panic() {
        with_threads(3, || {
            let caught = std::panic::catch_unwind(|| {
                with_threads(7, || panic!("boom"));
            });
            assert!(caught.is_err());
            assert_eq!(max_threads(), 3);
        });
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_run(64, |i| {
                    if i == 13 {
                        panic!("task 13 failed");
                    }
                    i
                })
            });
        });
        assert!(caught.is_err());
    }
}
