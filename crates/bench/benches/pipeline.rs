//! Criterion micro-benchmarks for every pipeline stage: parsing, static
//! analysis, simulation, feature extraction, model inference, and one
//! training step. Not a paper table — throughput context for the
//! experiment harness (the paper's "a few minutes to train" claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sim::{Simulator, TestbenchGen};
use veribug::features::StatementFeatures;
use veribug::model::{ModelConfig, Sample, VeriBugModel};
use veribug::train::{Dataset, TrainConfig};
use verilog::parse;

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for d in designs::catalog() {
        g.bench_function(d.name, |b| {
            b.iter(|| parse(black_box(d.source)).expect("parses"));
        });
    }
    g.finish();
}

fn bench_static_analysis(c: &mut Criterion) {
    let module = designs::IBEX_CONTROLLER.module().expect("parses");
    let mut g = c.benchmark_group("static-analysis");
    g.bench_function("cdfg", |b| {
        b.iter(|| cdfg::Cdfg::build(black_box(&module)));
    });
    g.bench_function("vdg", |b| {
        b.iter(|| cdfg::Vdg::build(black_box(&module)));
    });
    g.bench_function("slice", |b| {
        b.iter(|| cdfg::Slice::of_target(black_box(&module), "stall"));
    });
    g.bench_function("coi-depth4", |b| {
        let vdg = cdfg::Vdg::build(&module);
        b.iter(|| cdfg::ConeOfInfluence::compute(black_box(&vdg), "stall", 4));
    });
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate-256-cycles");
    for d in designs::catalog() {
        let module = d.module().expect("parses");
        let mut sim = Simulator::new(&module).expect("elaborates");
        let stim = TestbenchGen::new(7).generate(sim.netlist(), 256);
        g.bench_function(d.name, |b| {
            b.iter(|| sim.run(black_box(&stim)).expect("simulates"));
        });
    }
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let module = designs::USBF_PL.module().expect("parses");
    c.bench_function("feature-extraction/usbf_pl", |b| {
        b.iter(|| StatementFeatures::extract_all(black_box(&module)));
    });
}

fn bench_inference(c: &mut Criterion) {
    let model = VeriBugModel::new(ModelConfig::default());
    let unit = parse(
        "module m(input a, input b, input c, output y);\nassign y = (a & ~b) | c;\nendmodule",
    )
    .expect("parses");
    let module = unit.top().clone();
    let f = StatementFeatures::extract(&module.assignments()[0].clone()).expect("has operands");
    c.bench_function("model-inference/3-operand-stmt", |b| {
        b.iter(|| model.predict(black_box(&f), &[true, false, true]));
    });
}

fn bench_train_step(c: &mut Criterion) {
    let corpus: Vec<_> = rvdg::Generator::new(rvdg::RvdgConfig::default(), 3)
        .generate_corpus(2)
        .expect("generates")
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 24, 1).expect("builds");
    c.bench_function("train/one-epoch", |b| {
        b.iter_batched(
            || VeriBugModel::new(ModelConfig::default()),
            |mut model| {
                veribug::train::train(
                    &mut model,
                    &dataset,
                    &TrainConfig {
                        epochs: 1,
                        ..TrainConfig::default()
                    },
                )
                .expect("trains")
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_explainer(c: &mut Criterion) {
    let model = VeriBugModel::new(ModelConfig::default());
    let module = designs::WB_MUX_2.module().expect("parses");
    let mut sim = Simulator::new(&module).expect("elaborates");
    let stim = TestbenchGen::new(5).generate(sim.netlist(), 64);
    let trace = sim.run(&stim).expect("simulates");
    c.bench_function("explainer/attention-map-64-cycles", |b| {
        b.iter(|| {
            // Fresh explainer each time: the memo cache would otherwise
            // turn this into a hash-lookup benchmark.
            let mut ex = veribug::Explainer::new(&model, &module, "wbs0_we_o");
            ex.attention_map(black_box(&[&trace]))
        });
    });
}

/// Campaign wall-clock at explicit worker counts. On a single-core host all
/// rows should be flat (the layer adds only spawn overhead); on multi-core
/// hosts the speedup shows up here first because co-simulation dominates.
fn bench_campaign_parallel(c: &mut Criterion) {
    let module = designs::WB_MUX_2.module().expect("parses");
    let budget = mutate::BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let mut g = c.benchmark_group("campaign_parallel");
    for threads in [1usize, 2, 4] {
        g.bench_function(&format!("threads-{threads}"), |b| {
            b.iter(|| {
                par::with_threads(threads, || {
                    mutate::Campaign::new(7)
                        .with_runs_per_mutant(8)
                        .run(black_box(&module), "wbs0_we_o", &budget)
                        .expect("campaign runs")
                })
            });
        });
    }
    g.finish();
}

/// One training epoch at explicit worker counts (data-parallel minibatch
/// shards). Results are bit-identical across rows; only the clock moves.
fn bench_train_epoch_parallel(c: &mut Criterion) {
    let corpus: Vec<_> = rvdg::Generator::new(rvdg::RvdgConfig::default(), 3)
        .generate_corpus(2)
        .expect("generates")
        .into_iter()
        .map(|d| d.module)
        .collect();
    let dataset = Dataset::from_designs(&corpus, 1, 24, 1).expect("builds");
    let mut g = c.benchmark_group("train_epoch_parallel");
    for threads in [1usize, 2, 4] {
        g.bench_function(&format!("threads-{threads}"), |b| {
            b.iter_batched(
                || VeriBugModel::new(ModelConfig::default()),
                |mut model| {
                    par::with_threads(threads, || {
                        veribug::train::train(
                            &mut model,
                            &dataset,
                            &TrainConfig {
                                epochs: 1,
                                ..TrainConfig::default()
                            },
                        )
                        .expect("trains")
                    })
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Compiled engine vs the retained interpreter on identical stimuli. The
/// differential tests prove the traces are bit-identical; this group shows
/// what the compilation buys.
fn bench_engine_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-compare-256-cycles");
    for d in designs::catalog() {
        let module = d.module().expect("parses");
        let mut compiled = Simulator::new(&module).expect("elaborates");
        let mut interp = Simulator::interpreted(&module).expect("elaborates");
        let stim = TestbenchGen::new(7).generate(compiled.netlist(), 256);
        g.bench_function(&format!("{}/compiled", d.name), |b| {
            b.iter(|| compiled.run(black_box(&stim)).expect("simulates"));
        });
        g.bench_function(&format!("{}/interpreted", d.name), |b| {
            b.iter(|| interp.run(black_box(&stim)).expect("simulates"));
        });
    }
    g.finish();
}

fn bench_mutation(c: &mut Criterion) {
    let module = designs::USBF_IDMA.module().expect("parses");
    c.bench_function("mutation/enumerate-sites/usbf_idma", |b| {
        b.iter(|| mutate::enumerate_sites(black_box(&module), None));
    });
}

/// One sample dummy Sample construction is cheap; keep it exercised so
/// the type stays in the public-API benches.
#[allow(dead_code)]
fn sample() -> Sample {
    Sample {
        values: vec![true],
        target: true,
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse,
        bench_static_analysis,
        bench_simulate,
        bench_features,
        bench_inference,
        bench_train_step,
        bench_explainer,
        bench_campaign_parallel,
        bench_train_epoch_parallel,
        bench_engine_compare,
        bench_mutation
);
criterion_main!(benches);
