//! Regenerates **Figure 4**: qualitative VeriBug heatmaps on the realistic
//! designs. For one representative observable mutant per design, prints the
//! mutated statement, the correct-trace importance scores (`C_t`, blue when
//! ANSI is enabled), the failing-trace scores copied into the heatmap
//! (`H_t`/`F_t`, red), and the suspiciousness of the root-cause statement.
//!
//! Flags: `--ansi` for colored output, `--quick` for a fast smoke run.
//!
//! Run with: `cargo run --release -p veribug-bench --bin exp_fig4 -- --ansi`

use mutate::{BugBudget, Campaign};
use veribug::coverage::labelled_traces;
use veribug::render::render_comparison;
use veribug::{Explainer, DEFAULT_THRESHOLD};
use veribug_bench::{train_model, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let scale = ExperimentScale::from_args();
    let ansi = std::env::args().any(|a| a == "--ansi");

    obs::progress!("training the VeriBug model...");
    let (model, _, _) = train_model(&scale, 0.10, 1234)?;

    println!("FIGURE 4: VeriBug qualitative results on realistic designs.");
    println!("(operand scores shown as name[score]; H_t copies F_t when the");
    println!(" suspiciousness of the buggy statement exceeds the 0.10 threshold)\n");
    for design in designs::catalog() {
        let golden = design.module()?;
        let target = design.targets[0];
        let budget = BugBudget {
            negation: 2,
            operation: 2,
            misuse: 2,
        };
        let mutants = Campaign::new(0xF164)
            .with_runs_per_mutant(scale.runs_per_mutant)
            .run(&golden, target, &budget)?;
        // Prefer a mutant whose heatmap actually contains the bug.
        let mut printed = false;
        for m in mutants.iter().filter(|m| m.observable) {
            let mut ex = Explainer::new(&model, &m.module, target);
            let runs = labelled_traces(m);
            let (heatmap, _f, c) = ex.explain(&runs, DEFAULT_THRESHOLD);
            if !heatmap.entries.contains_key(&m.site.stmt) {
                continue;
            }
            println!("== {} (target {target}) ==", design.name);
            println!(
                "mutant: {} at statement {} // golden: {}",
                m.site.kind,
                m.site.stmt,
                golden
                    .assignment(m.site.stmt)
                    .map(|a| verilog::print_expr(&a.rhs))
                    .unwrap_or_default()
            );
            print!("{}", render_comparison(&m.module, &heatmap, &c, ansi));
            printed = true;
            break;
        }
        if !printed {
            println!(
                "== {} (target {target}) == (no mutant produced a heatmap hit at this scale)\n",
                design.name
            );
        }
    }
    obs::report();
    Ok(())
}
