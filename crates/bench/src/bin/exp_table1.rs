//! Regenerates **Table I**: details of the modules in the localization test
//! set — module name, lines of code (this reproduction vs the paper's
//! original), and a short description — plus the per-target cone sizes that
//! drive localization difficulty.
//!
//! Run with: `cargo run --release -p veribug-bench --bin exp_table1`

use cdfg::{dependencies_of, Slice, Vdg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    println!("TABLE I: Details of modules in our localization test set.");
    println!(
        "{:<17} {:>9} {:>11}  {:<34} Targets (|Dep_t| / slice stmts)",
        "Module Name", "LoC(ours)", "LoC(paper)", "Short Description"
    );
    println!("{}", "-".repeat(110));
    for d in designs::catalog() {
        let module = d.module()?;
        let vdg = Vdg::build(&module);
        let targets = d
            .targets
            .iter()
            .map(|t| {
                let dep = dependencies_of(&vdg, t).len();
                let slice = Slice::of_target(&module, t).len();
                format!("{t} ({dep}/{slice})")
            })
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:<17} {:>9} {:>11}  {:<34} {}",
            d.name,
            d.loc(),
            d.paper_loc,
            d.description,
            targets
        );
    }
    println!(
        "\nNote: LoC differs from the paper because the designs are reduced\n\
         re-implementations in the supported Verilog subset (DESIGN.md,\n\
         substitution #3); interface signals, targets, and control/data-flow\n\
         structure match the originals."
    );
    obs::report();
    Ok(())
}
