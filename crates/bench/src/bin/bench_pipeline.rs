//! Wall-clock benchmark of the parallel execution layer and the compiled
//! simulation engine, written to `BENCH_pipeline.json`.
//!
//! For each pipeline stage (mutation campaign, co-simulation, dataset build,
//! one training epoch, holdout evaluation) the runner times the stage at
//! 1/2/4/8 worker threads (via `par::with_threads`), reports the speedup
//! relative to the single-thread row, and cross-checks that every stage's
//! *result* is identical at every thread count — the determinism guarantee
//! the layer is built around. A separate single-thread comparison times the
//! compiled engine against the retained interpreter on the campaign
//! co-simulation workload and records the speedup; the same workload also
//! times the 64-lane batch engine and records stimuli/sec per engine under
//! `engine_batch`.
//!
//! Speedups are honest numbers for the current host: on a single-core
//! machine every threading row is flat (the JSON records `host_cores` so
//! readers can tell); the engine speedup is thread-independent. Timings take
//! the minimum over `--reps N` repetitions (default 3).
//!
//! Run with: `cargo run --release -p veribug-bench --bin bench_pipeline`
//!
//! `--smoke` shrinks the workload for CI and exits non-zero when any stage's
//! result differs across thread counts (without rewriting the JSON), when
//! the batch engine's traces diverge from the scalar compiled engine, or
//! when the measured observability overhead exceeds 5%.
//!
//! The runner also times the simulation workload with metrics collection
//! enabled vs disabled and records the relative overhead as `obs_overhead`
//! in the JSON — the number backing the "<5% overhead" claim in DESIGN.md.
//! Pass `--obs trace.json` / `--quiet` like any other VeriBug binary to
//! profile the benchmark run itself.

use std::fmt::Write as _;
use std::time::Instant;

use rvdg::{Generator, RvdgConfig};
use sim::{EngineKind, Simulator, TestbenchGen, Trace};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::train::{self, Dataset, TrainConfig};
use verilog::Module;

/// Worker counts benchmarked for every stage.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One stage's timings (seconds per thread count) plus the cross-thread
/// determinism verdict.
struct StageResult {
    name: &'static str,
    secs: Vec<f64>,
    deterministic: bool,
}

/// Times `f` at each worker count, keeping the fastest of `reps` runs and a
/// per-thread-count fingerprint for the determinism check.
fn run_stage<R, K: PartialEq>(
    name: &'static str,
    reps: usize,
    mut f: impl FnMut() -> R,
    fingerprint: impl Fn(&R) -> K,
) -> StageResult {
    let mut secs = Vec::with_capacity(THREADS.len());
    let mut prints: Vec<K> = Vec::with_capacity(THREADS.len());
    let _span = obs::span_dyn(|| format!("bench.{name}"));
    for &threads in &THREADS {
        par::with_threads(threads, || {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = f();
                best = best.min(start.elapsed().as_secs_f64());
                last = Some(r);
            }
            secs.push(best);
            prints.push(fingerprint(&last.expect("reps >= 1")));
        });
    }
    let deterministic = prints.iter().all(|p| *p == prints[0]);
    obs::progress!(
        "{name:<14} {} deterministic={deterministic}",
        THREADS
            .iter()
            .zip(&secs)
            .map(|(t, s)| format!("t{t}={s:.3}s"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    StageResult {
        name,
        secs,
        deterministic,
    }
}

fn corpus(n: usize) -> Vec<Module> {
    Generator::new(RvdgConfig::default(), 5)
        .generate_corpus(n)
        .expect("rvdg generates")
        .into_iter()
        .map(|d| d.module)
        .collect()
}

/// Compiled-vs-interpreted engine timing on the campaign co-simulation
/// workload: every Table I design simulated on many short, calm stimuli,
/// single-threaded, fastest of `reps`. Also cross-checks the traces are
/// identical — a cheap inline version of the differential test suite.
struct EngineCompare {
    compiled_s: f64,
    interpreted_s: f64,
    traces_identical: bool,
    /// Batch-engine time on the same workload (one `run_batch` call per
    /// design; `runs` stimuli fill `runs` of the 64 lanes).
    batch_s: f64,
    /// Lanes occupied per batch (the per-design run count).
    lane_fill: usize,
    /// Total stimuli simulated per engine pass (for stimuli/sec rates).
    stimuli: usize,
    /// Batch-extracted traces bit-identical to the scalar compiled runs.
    batch_identical: bool,
}

/// Relative cost of leaving metrics collection enabled on the simulation
/// workload (the instrumentation-densest path: per-cycle dirty-set, cache,
/// and bytecode counters).
struct ObsOverhead {
    baseline_s: f64,
    enabled_s: f64,
    /// `(enabled - baseline) / baseline`, clamped at 0 (noise can make the
    /// enabled run the faster one).
    overhead_frac: f64,
}

/// Times the same single-threaded simulation workload with collection off
/// and on, fastest of `reps` each. The workload is deterministic, so
/// min-of-reps makes scheduling noise one-sided; off/on reps interleave so
/// a transient host slowdown (downclock, background work) hits both sides
/// rather than biasing whichever block ran during it.
fn measure_obs_overhead(
    modules: &[Module],
    cycles: usize,
    runs: usize,
    reps: usize,
) -> ObsOverhead {
    let was_enabled = obs::enabled();
    let workload = || {
        for module in modules {
            let mut s = Simulator::new(module).expect("elaborates");
            let stimuli = TestbenchGen::new(0x0B5E)
                .with_hold_probability(0.8)
                .generate_many(s.netlist(), cycles, runs);
            for stim in &stimuli {
                std::hint::black_box(s.run(stim).expect("simulates"));
            }
        }
    };
    let time = |on: bool| -> f64 {
        obs::set_enabled(on);
        let start = Instant::now();
        workload();
        start.elapsed().as_secs_f64()
    };
    let mut baseline_s = f64::INFINITY;
    let mut enabled_s = f64::INFINITY;
    for _ in 0..reps {
        baseline_s = baseline_s.min(time(false));
        enabled_s = enabled_s.min(time(true));
    }
    obs::set_enabled(was_enabled);
    let overhead_frac = ((enabled_s - baseline_s) / baseline_s.max(1e-12)).max(0.0);
    obs::progress!(
        "obs_overhead   off={baseline_s:.3}s on={enabled_s:.3}s overhead={:.2}%",
        overhead_frac * 100.0
    );
    ObsOverhead {
        baseline_s,
        enabled_s,
        overhead_frac,
    }
}

fn compare_engines(cycles: usize, runs: usize, reps: usize) -> EngineCompare {
    let workload: Vec<(Module, Vec<sim::Stimulus>)> = designs::catalog()
        .iter()
        .map(|d| {
            let module = d.module().expect("parses");
            let probe = Simulator::new(&module).expect("elaborates");
            assert_eq!(probe.engine_kind(), EngineKind::Compiled);
            let stimuli = TestbenchGen::new(0xD1CE_F00D)
                .with_hold_probability(0.8)
                .generate_many(probe.netlist(), cycles, runs);
            (module, stimuli)
        })
        .collect();
    // Simulators are built outside the timed region: a campaign compiles
    // each design once and then runs hundreds of stimuli against it, so
    // steady-state stimuli/sec is the comparison that matters.
    let time = |interpreted: bool| -> (f64, Vec<Trace>) {
        let mut sims: Vec<Simulator> = workload
            .iter()
            .map(|(module, _)| {
                if interpreted {
                    Simulator::interpreted(module).expect("elaborates")
                } else {
                    Simulator::new(module).expect("elaborates")
                }
            })
            .collect();
        let mut best = f64::INFINITY;
        let mut traces = Vec::new();
        for _ in 0..reps {
            traces.clear();
            let start = Instant::now();
            for ((_, stimuli), s) in workload.iter().zip(&mut sims) {
                for stim in stimuli {
                    traces.push(s.run(stim).expect("simulates"));
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, traces)
    };
    let time_batch = || -> (f64, Vec<Trace>) {
        let mut sims: Vec<Simulator> = workload
            .iter()
            .map(|(module, _)| {
                let s = Simulator::new(module).expect("elaborates");
                assert_eq!(s.batch_engine_kind(), EngineKind::Batch);
                s
            })
            .collect();
        let mut best = f64::INFINITY;
        let mut traces = Vec::new();
        for _ in 0..reps {
            traces.clear();
            let start = Instant::now();
            for ((_, stimuli), s) in workload.iter().zip(&mut sims) {
                traces.extend(s.run_batch(stimuli).expect("simulates"));
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, traces)
    };
    let (compiled_s, compiled_traces) = time(false);
    let (interpreted_s, interpreted_traces) = time(true);
    let (batch_s, batch_traces) = time_batch();
    let traces_identical = compiled_traces == interpreted_traces;
    let batch_identical = batch_traces == compiled_traces;
    let stimuli: usize = workload.iter().map(|(_, st)| st.len()).sum();
    obs::progress!(
        "engine         batch={batch_s:.3}s compiled={compiled_s:.3}s \
         interpreted={interpreted_s:.3}s batch_speedup={:.2}x identical={}",
        compiled_s / batch_s.max(1e-12),
        traces_identical && batch_identical
    );
    EngineCompare {
        compiled_s,
        interpreted_s,
        traces_identical,
        batch_s,
        lane_fill: runs,
        stimuli,
        batch_identical,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--reps takes a number"))
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Smoke mode shrinks every workload so CI can run the whole binary in
    // seconds; the determinism cross-check is identical either way.
    let (sim_cycles, sim_runs) = if smoke { (16, 4) } else { (16, 24) };

    let campaign_module = designs::WB_MUX_2.module().expect("parses");
    let budget = mutate::BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let modules = corpus(3);
    let sim_modules: Vec<Module> = designs::catalog()
        .iter()
        .map(|d| d.module().expect("parses"))
        .chain(corpus(if smoke { 2 } else { 6 }))
        .collect();
    let dataset = Dataset::from_designs(&modules, 1, 24, 2)?;
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    };

    let stages = vec![
        run_stage(
            "campaign",
            reps,
            || {
                mutate::Campaign::new(7)
                    .with_runs_per_mutant(8)
                    .run(&campaign_module, "wbs0_we_o", &budget)
                    .expect("campaign runs")
            },
            |mutants| {
                mutants
                    .iter()
                    .map(|m| (m.source.clone(), m.observable))
                    .collect::<Vec<_>>()
            },
        ),
        run_stage(
            "simulate",
            reps,
            || {
                par::par_map(&sim_modules, |module| {
                    let mut s = Simulator::new(module).expect("elaborates");
                    let stimuli = TestbenchGen::new(0xBEEF)
                        .with_hold_probability(0.8)
                        .generate_many(s.netlist(), sim_cycles, sim_runs);
                    stimuli
                        .iter()
                        .map(|stim| s.run(stim).expect("simulates"))
                        .collect::<Vec<Trace>>()
                })
            },
            |traces| traces.clone(),
        ),
        run_stage(
            "dataset_build",
            reps,
            || Dataset::from_designs(&modules, 1, 24, 2).expect("builds"),
            |ds| ds.clone(),
        ),
        run_stage(
            "train_epoch",
            reps,
            || {
                let mut model = VeriBugModel::new(ModelConfig::default());
                train::train(&mut model, &dataset, &cfg).expect("trains")
            },
            |report| {
                // Bit-exact: compare the f32 losses by bits, not by value.
                report
                    .epoch_losses
                    .iter()
                    .map(|l| l.to_bits())
                    .collect::<Vec<_>>()
            },
        ),
        run_stage(
            "evaluate",
            reps,
            || {
                let model = VeriBugModel::new(ModelConfig::default());
                train::evaluate(&model, &dataset)
            },
            |m| (m.accuracy.to_bits(), m.count),
        ),
    ];

    let engine = par::with_threads(1, || compare_engines(16, if smoke { 8 } else { 64 }, reps));

    // The overhead measurement needs enough work per rep to dwarf timer and
    // scheduling noise, so it keeps a fixed per-module workload and extra
    // reps even in smoke mode.
    let overhead = par::with_threads(1, || {
        measure_obs_overhead(&sim_modules, 32, 32, reps.max(5))
    });

    let json = render_json(host_cores, reps, &stages, &engine, &overhead);
    std::fs::write("BENCH_pipeline.json", &json)?;
    println!("{json}");
    obs::progress!("wrote BENCH_pipeline.json");

    if smoke {
        let bad: Vec<&str> = stages
            .iter()
            .filter(|s| !s.deterministic)
            .map(|s| s.name)
            .collect();
        if !bad.is_empty() || !engine.traces_identical || !engine.batch_identical {
            eprintln!(
                "smoke FAILED: non-deterministic stages {bad:?}, compiled/interpreted \
                 identical: {}, batch/scalar identical: {}",
                engine.traces_identical, engine.batch_identical
            );
            std::process::exit(1);
        }
        if overhead.overhead_frac > 0.05 {
            eprintln!(
                "smoke FAILED: observability overhead {:.2}% exceeds the 5% budget",
                overhead.overhead_frac * 100.0
            );
            std::process::exit(1);
        }
        obs::progress!(
            "smoke OK: all stages deterministic across thread counts, obs overhead {:.2}%",
            overhead.overhead_frac * 100.0
        );
    }
    obs::report();
    Ok(())
}

/// Hand-rolled JSON (the vendored serde is a compile-surface stub and does
/// not serialize).
fn render_json(
    host_cores: usize,
    reps: usize,
    stages: &[StageResult],
    engine: &EngineCompare,
    overhead: &ObsOverhead,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"thread_counts\": [{}],",
        THREADS
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"stages\": [\n");
    for (si, s) in stages.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let wall: Vec<String> = THREADS
            .iter()
            .zip(&s.secs)
            .map(|(t, sec)| format!("\"{t}\": {sec:.6}"))
            .collect();
        let _ = writeln!(out, "      \"wall_clock_s\": {{ {} }},", wall.join(", "));
        let serial = s.secs[0];
        let speed: Vec<String> = THREADS
            .iter()
            .zip(&s.secs)
            .map(|(t, sec)| format!("\"{t}\": {:.3}", serial / sec.max(1e-12)))
            .collect();
        let _ = writeln!(
            out,
            "      \"speedup_vs_serial\": {{ {} }},",
            speed.join(", ")
        );
        let _ = writeln!(
            out,
            "      \"deterministic_across_threads\": {}",
            s.deterministic
        );
        out.push_str("    }");
        out.push_str(if si + 1 < stages.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"engine\": {\n");
    out.push_str("    \"workload\": \"designs catalog, campaign-style stimuli, 1 thread\",\n");
    let _ = writeln!(out, "    \"compiled_s\": {:.6},", engine.compiled_s);
    let _ = writeln!(out, "    \"interpreted_s\": {:.6},", engine.interpreted_s);
    let _ = writeln!(
        out,
        "    \"speedup\": {:.3},",
        engine.interpreted_s / engine.compiled_s.max(1e-12)
    );
    let _ = writeln!(out, "    \"traces_identical\": {}", engine.traces_identical);
    out.push_str("  },\n");
    out.push_str("  \"engine_batch\": {\n");
    out.push_str(
        "    \"workload\": \"designs catalog, campaign-style stimuli, 1 thread, \
         one 64-lane batch per design\",\n",
    );
    let _ = writeln!(out, "    \"lane_fill\": {},", engine.lane_fill);
    let _ = writeln!(out, "    \"stimuli\": {},", engine.stimuli);
    let _ = writeln!(out, "    \"batch_s\": {:.6},", engine.batch_s);
    let n = engine.stimuli as f64;
    let _ = writeln!(out, "    \"stimuli_per_s\": {{");
    let _ = writeln!(
        out,
        "      \"batch\": {:.1},",
        n / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "      \"compiled\": {:.1},",
        n / engine.compiled_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "      \"interpreted\": {:.1}",
        n / engine.interpreted_s.max(1e-12)
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(
        out,
        "    \"speedup_vs_compiled\": {:.3},",
        engine.compiled_s / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"speedup_vs_interpreted\": {:.3},",
        engine.interpreted_s / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"traces_identical_to_compiled\": {},",
        engine.batch_identical
    );
    out.push_str(
        "    \"note\": \"full traces: both engines emit per-statement execution \
         records and per-cycle snapshots, a memory-bound cost that dominates both \
         and bounds the bit-parallel gain well below the 64-lane compute speedup\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"obs_overhead\": {\n");
    out.push_str(
        "    \"workload\": \"simulation sweep (the instrumentation-densest stage), 1 thread\",\n",
    );
    let _ = writeln!(out, "    \"baseline_s\": {:.6},", overhead.baseline_s);
    let _ = writeln!(out, "    \"enabled_s\": {:.6},", overhead.enabled_s);
    let _ = writeln!(
        out,
        "    \"overhead_pct\": {:.3}",
        overhead.overhead_frac * 100.0
    );
    out.push_str("  },\n");
    out.push_str(
        "  \"note\": \"speedup_vs_serial is measured on this host; with host_cores = 1 \
         all rows are flat and only the determinism column is meaningful. engine.speedup \
         compares the compiled levelized/bytecode engine to the retained interpreter on \
         one thread and is core-count independent\"\n",
    );
    out.push_str("}\n");
    out
}
