//! Wall-clock benchmark of the parallel execution layer and the compiled
//! simulation engine, written to `BENCH_pipeline.json`.
//!
//! For each pipeline stage (mutation campaign, co-simulation, dataset build,
//! one training epoch, holdout evaluation) the runner times the stage at
//! 1/2/4/8 worker threads (via `par::with_threads`), reports the speedup
//! relative to the single-thread row, and cross-checks that every stage's
//! *result* is identical at every thread count — the determinism guarantee
//! the layer is built around. A separate single-thread comparison times the
//! compiled engine against the retained interpreter on the campaign
//! co-simulation workload and records the speedup; the same workload also
//! times the 64-lane batch engine and records stimuli/sec per engine under
//! `engine_batch`.
//!
//! Speedups are honest numbers for the current host: on a single-core
//! machine every threading row is flat (the JSON records `host_cores` so
//! readers can tell); the engine speedup is thread-independent. Timings take
//! the minimum over `--reps N` repetitions (default 3).
//!
//! Run with: `cargo run --release -p veribug-bench --bin bench_pipeline`
//!
//! `--smoke` shrinks the workload for CI and exits non-zero when any stage's
//! result differs across thread counts (without rewriting the JSON), when
//! the batch engine's traces diverge from the scalar compiled engine, when
//! the verdict pass disagrees with the full-trace oracle (inline check or
//! the time-boxed RVDG fuzz) or regresses below 3x full-trace batch
//! throughput, or when the measured observability overhead exceeds 5%.
//!
//! The runner also times the simulation workload with metrics collection
//! enabled vs disabled and records the relative overhead as `obs_overhead`
//! in the JSON — the number backing the "<5% overhead" claim in DESIGN.md.
//! Pass `--obs trace.json` / `--quiet` like any other VeriBug binary to
//! profile the benchmark run itself.

use std::fmt::Write as _;
use std::time::Instant;

use rvdg::{Generator, RvdgConfig};
use sim::{
    EngineKind, SignalRole, SignalSet, Simulator, TestbenchGen, Trace, TraceLabel, VerdictTrace,
};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::train::{self, Dataset, TrainConfig};
use verilog::Module;

/// Worker counts benchmarked for every stage.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One stage's timings (seconds per thread count) plus the cross-thread
/// determinism verdict.
struct StageResult {
    name: &'static str,
    secs: Vec<f64>,
    deterministic: bool,
}

/// Times `f` at each worker count, keeping the fastest of `reps` runs and a
/// per-thread-count fingerprint for the determinism check.
fn run_stage<R, K: PartialEq>(
    name: &'static str,
    reps: usize,
    mut f: impl FnMut() -> R,
    fingerprint: impl Fn(&R) -> K,
) -> StageResult {
    let mut secs = Vec::with_capacity(THREADS.len());
    let mut prints: Vec<K> = Vec::with_capacity(THREADS.len());
    let _span = obs::span_dyn(|| format!("bench.{name}"));
    for &threads in &THREADS {
        par::with_threads(threads, || {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = f();
                best = best.min(start.elapsed().as_secs_f64());
                last = Some(r);
            }
            secs.push(best);
            prints.push(fingerprint(&last.expect("reps >= 1")));
        });
    }
    let deterministic = prints.iter().all(|p| *p == prints[0]);
    obs::progress!(
        "{name:<14} {} deterministic={deterministic}",
        THREADS
            .iter()
            .zip(&secs)
            .map(|(t, s)| format!("t{t}={s:.3}s"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    StageResult {
        name,
        secs,
        deterministic,
    }
}

fn corpus(n: usize) -> Vec<Module> {
    Generator::new(RvdgConfig::default(), 5)
        .generate_corpus(n)
        .expect("rvdg generates")
        .into_iter()
        .map(|d| d.module)
        .collect()
}

/// Compiled-vs-interpreted engine timing on the campaign co-simulation
/// workload: every Table I design simulated on many short, calm stimuli,
/// single-threaded, fastest of `reps`. Also cross-checks the traces are
/// identical — a cheap inline version of the differential test suite.
struct EngineCompare {
    compiled_s: f64,
    interpreted_s: f64,
    traces_identical: bool,
    /// Batch-engine time on the same workload (one `run_batch` call per
    /// design; `runs` stimuli fill `runs` of the 64 lanes).
    batch_s: f64,
    /// Lanes occupied per batch (the per-design run count).
    lane_fill: usize,
    /// Total stimuli simulated per engine pass (for stimuli/sec rates).
    stimuli: usize,
    /// Batch-extracted traces bit-identical to the scalar compiled runs.
    batch_identical: bool,
    /// Batch-engine time on the same workload in verdict mode (observed =
    /// the design's campaign target only, no execution records).
    verdict_s: f64,
    /// Verdict values equal the observed columns of the full traces.
    verdict_identical: bool,
    /// Execution records the verdict pass never materialized.
    verdict_records_elided: u64,
}

/// Relative cost of leaving metrics collection enabled on the simulation
/// workload (the instrumentation-densest path: per-cycle dirty-set, cache,
/// and bytecode counters).
struct ObsOverhead {
    baseline_s: f64,
    enabled_s: f64,
    /// `(enabled - baseline) / baseline`, clamped at 0 (noise can make the
    /// enabled run the faster one).
    overhead_frac: f64,
}

/// Times the same single-threaded simulation workload with collection off
/// and on, fastest of `reps` each. The workload is deterministic, so
/// min-of-reps makes scheduling noise one-sided; off/on reps interleave so
/// a transient host slowdown (downclock, background work) hits both sides
/// rather than biasing whichever block ran during it.
fn measure_obs_overhead(
    modules: &[Module],
    cycles: usize,
    runs: usize,
    reps: usize,
) -> ObsOverhead {
    let was_enabled = obs::enabled();
    let workload = || {
        for module in modules {
            let mut s = Simulator::new(module).expect("elaborates");
            let stimuli = TestbenchGen::new(0x0B5E)
                .with_hold_probability(0.8)
                .generate_many(s.netlist(), cycles, runs);
            for stim in &stimuli {
                std::hint::black_box(s.run(stim).expect("simulates"));
            }
        }
    };
    let time = |on: bool| -> f64 {
        obs::set_enabled(on);
        let start = Instant::now();
        workload();
        start.elapsed().as_secs_f64()
    };
    let mut baseline_s = f64::INFINITY;
    let mut enabled_s = f64::INFINITY;
    for _ in 0..reps {
        baseline_s = baseline_s.min(time(false));
        enabled_s = enabled_s.min(time(true));
    }
    obs::set_enabled(was_enabled);
    let overhead_frac = ((enabled_s - baseline_s) / baseline_s.max(1e-12)).max(0.0);
    obs::progress!(
        "obs_overhead   off={baseline_s:.3}s on={enabled_s:.3}s overhead={:.2}%",
        overhead_frac * 100.0
    );
    ObsOverhead {
        baseline_s,
        enabled_s,
        overhead_frac,
    }
}

fn compare_engines(cycles: usize, runs: usize, reps: usize) -> EngineCompare {
    let workload: Vec<(Module, Vec<sim::Stimulus>, SignalSet)> = designs::catalog()
        .iter()
        .map(|d| {
            let module = d.module().expect("parses");
            let probe = Simulator::new(&module).expect("elaborates");
            assert_eq!(probe.engine_kind(), EngineKind::Compiled);
            let stimuli = TestbenchGen::new(0xD1CE_F00D)
                .with_hold_probability(0.8)
                .generate_many(probe.netlist(), cycles, runs);
            // Verdict workload observes what a campaign observes: the
            // design's first localization target, nothing else.
            let target = probe
                .netlist()
                .signal_id(d.targets[0])
                .expect("catalog target resolves");
            (module, stimuli, SignalSet::from_ids([target]))
        })
        .collect();
    // Simulators are built outside the timed region: a campaign compiles
    // each design once and then runs hundreds of stimuli against it, so
    // steady-state stimuli/sec is the comparison that matters.
    let time = |interpreted: bool| -> (f64, Vec<Trace>) {
        let mut sims: Vec<Simulator> = workload
            .iter()
            .map(|(module, _, _)| {
                if interpreted {
                    Simulator::interpreted(module).expect("elaborates")
                } else {
                    Simulator::new(module).expect("elaborates")
                }
            })
            .collect();
        let mut best = f64::INFINITY;
        let mut traces = Vec::new();
        for _ in 0..reps {
            traces.clear();
            let start = Instant::now();
            for ((_, stimuli, _), s) in workload.iter().zip(&mut sims) {
                for stim in stimuli {
                    traces.push(s.run(stim).expect("simulates"));
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, traces)
    };
    let time_batch = || -> (f64, Vec<Trace>) {
        let mut sims: Vec<Simulator> = workload
            .iter()
            .map(|(module, _, _)| {
                let s = Simulator::new(module).expect("elaborates");
                assert_eq!(s.batch_engine_kind(), EngineKind::Batch);
                s
            })
            .collect();
        let mut best = f64::INFINITY;
        let mut traces = Vec::new();
        for _ in 0..reps {
            traces.clear();
            let start = Instant::now();
            for ((_, stimuli, _), s) in workload.iter().zip(&mut sims) {
                traces.extend(s.run_batch(stimuli).expect("simulates"));
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, traces)
    };
    let time_batch_verdict = || -> (f64, Vec<VerdictTrace>) {
        let mut sims: Vec<Simulator> = workload
            .iter()
            .map(|(module, _, _)| Simulator::new(module).expect("elaborates"))
            .collect();
        let mut best = f64::INFINITY;
        let mut verdicts = Vec::new();
        for _ in 0..reps {
            verdicts.clear();
            let start = Instant::now();
            for ((_, stimuli, observed), s) in workload.iter().zip(&mut sims) {
                verdicts.extend(s.run_batch_verdict(stimuli, observed).expect("simulates"));
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, verdicts)
    };
    let (compiled_s, compiled_traces) = time(false);
    let (interpreted_s, interpreted_traces) = time(true);
    let (batch_s, batch_traces) = time_batch();
    let (verdict_s, verdicts) = time_batch_verdict();
    let traces_identical = compiled_traces == interpreted_traces;
    let batch_identical = batch_traces == compiled_traces;
    // Verdict values must equal the observed columns of the full traces —
    // an inline version of the differential suite's verdict oracle.
    let expected_verdicts: Vec<VerdictTrace> = workload
        .iter()
        .flat_map(|(_, stimuli, observed)| stimuli.iter().map(move |_| observed))
        .zip(&compiled_traces)
        .map(|(observed, trace)| VerdictTrace {
            values: trace
                .cycles
                .iter()
                .flat_map(|c| observed.ids().iter().map(|&id| c.value(id)))
                .collect(),
            nobs: observed.len(),
            records_elided: 0,
        })
        .collect();
    let verdict_identical = verdicts == expected_verdicts;
    let verdict_records_elided: u64 = verdicts.iter().map(|v| v.records_elided).sum();
    let stimuli: usize = workload.iter().map(|(_, st, _)| st.len()).sum();
    obs::progress!(
        "engine         verdict={verdict_s:.3}s batch={batch_s:.3}s compiled={compiled_s:.3}s \
         interpreted={interpreted_s:.3}s batch_speedup={:.2}x verdict_speedup={:.2}x identical={}",
        compiled_s / batch_s.max(1e-12),
        batch_s / verdict_s.max(1e-12),
        traces_identical && batch_identical && verdict_identical
    );
    EngineCompare {
        compiled_s,
        interpreted_s,
        traces_identical,
        batch_s,
        lane_fill: runs,
        stimuli,
        batch_identical,
        verdict_s,
        verdict_identical,
        verdict_records_elided,
    }
}

/// Outcome of the time-boxed RVDG verdict fuzz: random designs and random
/// mutants screened in verdict mode, with every verdict (diverged? first
/// divergence cycle?) checked against a full-trace cosimulation oracle at
/// 1/2/8 worker threads.
struct VerdictFuzz {
    designs: usize,
    mutants: usize,
    runs_checked: usize,
    mismatches: usize,
    elapsed_s: f64,
}

fn fuzz_verdicts(budget_s: f64) -> VerdictFuzz {
    let _span = obs::span("bench.verdict_fuzz");
    let start = Instant::now();
    let mut out = VerdictFuzz {
        designs: 0,
        mutants: 0,
        runs_checked: 0,
        mismatches: 0,
        elapsed_s: 0.0,
    };
    let mut seed = 0xF02Du64;
    'budget: loop {
        for &threads in &[1usize, 2, 8] {
            if start.elapsed().as_secs_f64() >= budget_s {
                break 'budget;
            }
            let design = Generator::new(RvdgConfig::default(), seed)
                .generate_corpus(1)
                .expect("rvdg generates")
                .remove(0);
            let mut golden_sim = Simulator::new(&design.module).expect("elaborates");
            let target_id = golden_sim
                .netlist()
                .signals()
                .iter()
                .position(|s| s.role == SignalRole::Output)
                .map(|i| sim::SignalId(i as u32))
                .expect("rvdg designs have outputs");
            // More stimuli than `sim::LANES` so the verdict pass spills
            // into a second lane group and the worker pool actually fans
            // out at 2/8 threads.
            let stimuli = TestbenchGen::new(seed ^ 0xF155)
                .with_hold_probability(0.8)
                .generate_many(golden_sim.netlist(), 24, sim::LANES + 6);
            par::with_threads(threads, || {
                let golden_vs = mutate::golden_verdicts(&mut golden_sim, &stimuli, target_id)
                    .expect("golden verdicts");
                let golden_runs =
                    mutate::golden_traces(&mut golden_sim, &stimuli).expect("golden traces");
                out.designs += 1;
                for site in mutate::enumerate_sites(&design.module, None).iter().take(4) {
                    let Some(mutant) = mutate::apply(&design.module, site) else {
                        continue;
                    };
                    // Both flows must agree even on which mutants simulate
                    // at all (e.g. injected combinational loops).
                    let screened = mutate::screen_against(&golden_vs, target_id, &mutant, &stimuli);
                    let full =
                        mutate::cosimulate_against(&golden_runs, target_id, &mutant, &stimuli);
                    out.mutants += 1;
                    let (verdicts, labelled) = match (screened, full) {
                        (Ok(v), Ok(l)) => (v, l),
                        (Err(_), Err(_)) => continue,
                        _ => {
                            out.mismatches += 1;
                            continue;
                        }
                    };
                    for (v, l) in verdicts.iter().zip(&labelled) {
                        out.runs_checked += 1;
                        let full_diverged = l.label == TraceLabel::Failing;
                        let full_first = l.failure_cycles().first().copied();
                        if v.diverged() != full_diverged || v.first_divergence() != full_first {
                            out.mismatches += 1;
                        }
                    }
                }
            });
            seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        }
    }
    out.elapsed_s = start.elapsed().as_secs_f64();
    obs::progress!(
        "verdict_fuzz   designs={} mutants={} runs={} mismatches={} in {:.1}s",
        out.designs,
        out.mutants,
        out.runs_checked,
        out.mismatches,
        out.elapsed_s
    );
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--reps takes a number"))
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Smoke mode shrinks every workload so CI can run the whole binary in
    // seconds; the determinism cross-check is identical either way.
    let (sim_cycles, sim_runs) = if smoke { (16, 4) } else { (16, 24) };

    let campaign_module = designs::WB_MUX_2.module().expect("parses");
    let budget = mutate::BugBudget {
        negation: 2,
        operation: 2,
        misuse: 2,
    };
    let modules = corpus(3);
    let sim_modules: Vec<Module> = designs::catalog()
        .iter()
        .map(|d| d.module().expect("parses"))
        .chain(corpus(if smoke { 2 } else { 6 }))
        .collect();
    let dataset = Dataset::from_designs(&modules, 1, 24, 2)?;
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    };

    let stages = vec![
        run_stage(
            "campaign",
            reps,
            || {
                mutate::Campaign::new(7)
                    .with_runs_per_mutant(64)
                    .run(&campaign_module, "wbs0_we_o", &budget)
                    .expect("campaign runs")
            },
            |mutants| {
                mutants
                    .iter()
                    .map(|m| (m.source.clone(), m.observable))
                    .collect::<Vec<_>>()
            },
        ),
        run_stage(
            "campaign_1pass",
            reps,
            || {
                mutate::Campaign::new(7)
                    .with_runs_per_mutant(64)
                    .run_single_pass(&campaign_module, "wbs0_we_o", &budget)
                    .expect("campaign runs")
            },
            |mutants| {
                mutants
                    .iter()
                    .map(|m| (m.source.clone(), m.observable))
                    .collect::<Vec<_>>()
            },
        ),
        run_stage(
            "simulate",
            reps,
            || {
                par::par_map(&sim_modules, |module| {
                    let mut s = Simulator::new(module).expect("elaborates");
                    let stimuli = TestbenchGen::new(0xBEEF)
                        .with_hold_probability(0.8)
                        .generate_many(s.netlist(), sim_cycles, sim_runs);
                    stimuli
                        .iter()
                        .map(|stim| s.run(stim).expect("simulates"))
                        .collect::<Vec<Trace>>()
                })
            },
            |traces| traces.clone(),
        ),
        run_stage(
            "dataset_build",
            reps,
            || Dataset::from_designs(&modules, 1, 24, 2).expect("builds"),
            |ds| ds.clone(),
        ),
        run_stage(
            "train_epoch",
            reps,
            || {
                let mut model = VeriBugModel::new(ModelConfig::default());
                train::train(&mut model, &dataset, &cfg).expect("trains")
            },
            |report| {
                // Bit-exact: compare the f32 losses by bits, not by value.
                report
                    .epoch_losses
                    .iter()
                    .map(|l| l.to_bits())
                    .collect::<Vec<_>>()
            },
        ),
        run_stage(
            "evaluate",
            reps,
            || {
                let model = VeriBugModel::new(ModelConfig::default());
                train::evaluate(&model, &dataset)
            },
            |m| (m.accuracy.to_bits(), m.count),
        ),
    ];

    // Full 64-lane fill even in smoke mode: the verdict-vs-full gate below
    // compares trace-production cost against lane-parallel compute, and a
    // partial fill understates the former (partial fills are covered by the
    // differential suite). 64 cycles keeps each timed region well above
    // timer/allocator noise so the min-of-reps ratio gate is stable.
    let engine = par::with_threads(1, || compare_engines(64, 64, reps.max(3)));

    // The overhead measurement needs enough work per rep to dwarf timer and
    // scheduling noise, so it keeps a fixed per-module workload and extra
    // reps even in smoke mode.
    let overhead = par::with_threads(1, || {
        measure_obs_overhead(&sim_modules, 32, 32, reps.max(5))
    });

    // Time-boxed RVDG verdict fuzz: verdict-pass answers vs the full-trace
    // oracle on random designs and mutants, at 1/2/8 threads.
    let fuzz = fuzz_verdicts(if smoke { 3.0 } else { 8.0 });

    let json = render_json(host_cores, reps, &stages, &engine, &overhead, &fuzz);
    println!("{json}");
    // Smoke never rewrites the checked-in BENCH_pipeline.json: its numbers
    // come from the shrunken workload and would silently replace the full
    // run's timings.
    if !smoke {
        std::fs::write("BENCH_pipeline.json", &json)?;
        obs::progress!("wrote BENCH_pipeline.json");
    }

    if smoke {
        let bad: Vec<&str> = stages
            .iter()
            .filter(|s| !s.deterministic)
            .map(|s| s.name)
            .collect();
        if !bad.is_empty() || !engine.traces_identical || !engine.batch_identical {
            eprintln!(
                "smoke FAILED: non-deterministic stages {bad:?}, compiled/interpreted \
                 identical: {}, batch/scalar identical: {}",
                engine.traces_identical, engine.batch_identical
            );
            std::process::exit(1);
        }
        if !engine.verdict_identical {
            eprintln!("smoke FAILED: verdict-pass values diverge from the full-trace oracle");
            std::process::exit(1);
        }
        let verdict_speedup = engine.batch_s / engine.verdict_s.max(1e-12);
        if verdict_speedup < 3.0 {
            eprintln!(
                "smoke FAILED: verdict pass is only {verdict_speedup:.2}x the full-trace \
                 batch (gate: 3x)"
            );
            std::process::exit(1);
        }
        if fuzz.mismatches > 0 {
            eprintln!(
                "smoke FAILED: verdict fuzz found {} mismatches across {} runs",
                fuzz.mismatches, fuzz.runs_checked
            );
            std::process::exit(1);
        }
        if overhead.overhead_frac > 0.05 {
            eprintln!(
                "smoke FAILED: observability overhead {:.2}% exceeds the 5% budget",
                overhead.overhead_frac * 100.0
            );
            std::process::exit(1);
        }
        obs::progress!(
            "smoke OK: all stages deterministic across thread counts, verdict pass \
             {verdict_speedup:.2}x full-trace batch and fuzz-clean, obs overhead {:.2}%",
            overhead.overhead_frac * 100.0
        );
    }
    obs::report();
    Ok(())
}

/// Hand-rolled JSON (the vendored serde is a compile-surface stub and does
/// not serialize).
fn render_json(
    host_cores: usize,
    reps: usize,
    stages: &[StageResult],
    engine: &EngineCompare,
    overhead: &ObsOverhead,
    fuzz: &VerdictFuzz,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"thread_counts\": [{}],",
        THREADS
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"stages\": [\n");
    for (si, s) in stages.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let wall: Vec<String> = THREADS
            .iter()
            .zip(&s.secs)
            .map(|(t, sec)| format!("\"{t}\": {sec:.6}"))
            .collect();
        let _ = writeln!(out, "      \"wall_clock_s\": {{ {} }},", wall.join(", "));
        let serial = s.secs[0];
        let speed: Vec<String> = THREADS
            .iter()
            .zip(&s.secs)
            .map(|(t, sec)| format!("\"{t}\": {:.3}", serial / sec.max(1e-12)))
            .collect();
        let _ = writeln!(
            out,
            "      \"speedup_vs_serial\": {{ {} }},",
            speed.join(", ")
        );
        let _ = writeln!(
            out,
            "      \"deterministic_across_threads\": {}",
            s.deterministic
        );
        out.push_str("    }");
        out.push_str(if si + 1 < stages.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"engine\": {\n");
    out.push_str("    \"workload\": \"designs catalog, campaign-style stimuli, 1 thread\",\n");
    let _ = writeln!(out, "    \"compiled_s\": {:.6},", engine.compiled_s);
    let _ = writeln!(out, "    \"interpreted_s\": {:.6},", engine.interpreted_s);
    let _ = writeln!(
        out,
        "    \"speedup\": {:.3},",
        engine.interpreted_s / engine.compiled_s.max(1e-12)
    );
    let _ = writeln!(out, "    \"traces_identical\": {}", engine.traces_identical);
    out.push_str("  },\n");
    out.push_str("  \"engine_batch\": {\n");
    out.push_str(
        "    \"workload\": \"designs catalog, campaign-style stimuli, 1 thread, \
         one 64-lane batch per design\",\n",
    );
    let _ = writeln!(out, "    \"lane_fill\": {},", engine.lane_fill);
    let _ = writeln!(out, "    \"stimuli\": {},", engine.stimuli);
    let _ = writeln!(out, "    \"batch_s\": {:.6},", engine.batch_s);
    let n = engine.stimuli as f64;
    let _ = writeln!(out, "    \"stimuli_per_s\": {{");
    let _ = writeln!(
        out,
        "      \"batch\": {:.1},",
        n / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "      \"compiled\": {:.1},",
        n / engine.compiled_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "      \"interpreted\": {:.1}",
        n / engine.interpreted_s.max(1e-12)
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(
        out,
        "    \"speedup_vs_compiled\": {:.3},",
        engine.compiled_s / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"speedup_vs_interpreted\": {:.3},",
        engine.interpreted_s / engine.batch_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"traces_identical_to_compiled\": {},",
        engine.batch_identical
    );
    out.push_str(
        "    \"note\": \"full traces: both engines emit per-statement execution \
         records and per-cycle snapshots, a memory-bound cost that dominates both \
         and bounds the bit-parallel gain well below the 64-lane compute speedup\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"engine_batch_verdict\": {\n");
    out.push_str(
        "    \"workload\": \"same stimuli as engine_batch, TraceMode::Verdict with \
         observed = the design's campaign target\",\n",
    );
    let _ = writeln!(out, "    \"verdict_s\": {:.6},", engine.verdict_s);
    let _ = writeln!(
        out,
        "    \"stimuli_per_s\": {:.1},",
        n / engine.verdict_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"speedup_vs_full_batch\": {:.3},",
        engine.batch_s / engine.verdict_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"speedup_vs_compiled\": {:.3},",
        engine.compiled_s / engine.verdict_s.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"records_elided\": {},",
        engine.verdict_records_elided
    );
    let _ = writeln!(
        out,
        "    \"values_match_full_trace\": {},",
        engine.verdict_identical
    );
    out.push_str(
        "    \"note\": \"verdict mode emits no execution records and snapshots only \
         the observed signals, so the hot loop is pure 64-lane compute plus an \
         O(observed) per-cycle copy; the two-pass campaign screens every candidate \
         this way and pays full-trace cost only for mutants it keeps\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"verdict_fuzz\": {\n");
    out.push_str(
        "    \"workload\": \"time-boxed RVDG designs + mutants, verdict screen vs \
         full-trace cosimulation oracle at 1/2/8 threads\",\n",
    );
    let _ = writeln!(out, "    \"designs\": {},", fuzz.designs);
    let _ = writeln!(out, "    \"mutants\": {},", fuzz.mutants);
    let _ = writeln!(out, "    \"runs_checked\": {},", fuzz.runs_checked);
    let _ = writeln!(out, "    \"mismatches\": {},", fuzz.mismatches);
    let _ = writeln!(out, "    \"elapsed_s\": {:.3}", fuzz.elapsed_s);
    out.push_str("  },\n");
    out.push_str("  \"obs_overhead\": {\n");
    out.push_str(
        "    \"workload\": \"simulation sweep (the instrumentation-densest stage), 1 thread\",\n",
    );
    let _ = writeln!(out, "    \"baseline_s\": {:.6},", overhead.baseline_s);
    let _ = writeln!(out, "    \"enabled_s\": {:.6},", overhead.enabled_s);
    let _ = writeln!(
        out,
        "    \"overhead_pct\": {:.3}",
        overhead.overhead_frac * 100.0
    );
    out.push_str("  },\n");
    out.push_str(
        "  \"note\": \"speedup_vs_serial is measured on this host; with host_cores = 1 \
         all rows are flat and only the determinism column is meaningful. engine.speedup \
         compares the compiled levelized/bytecode engine to the retained interpreter on \
         one thread and is core-count independent\"\n",
    );
    out.push_str("}\n");
    out
}
