//! Regenerates **Table II**: execution-semantics predictor quality
//! (accuracy, per-class precision/recall on holdout synthetic designs) for
//! each regularization weight α ∈ {0.01, 0.05, 0.10, 0.15, 0.20, 0.25}.
//!
//! Ablations (DESIGN.md Sec. 6):
//! - `--ablate-eps`: additionally compares skip-weight initializations.
//! - `--ctx-agg`: compares sum- vs mean-aggregation of path embeddings.
//! - `--quick`: reduced scale for smoke tests.
//!
//! Run with: `cargo run --release -p veribug-bench --bin exp_table2`

use rvdg::{Generator, RvdgConfig, TemplateMix};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::train::{self, Dataset, TrainConfig};
use veribug_bench::{corpora, train_model, ExperimentScale};

const ALPHAS: [f32; 6] = [0.01, 0.05, 0.10, 0.15, 0.20, 0.25];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let scale = ExperimentScale::from_args();
    let ablate_eps = std::env::args().any(|a| a == "--ablate-eps");
    let ablate_ctx = std::env::args().any(|a| a == "--ctx-agg");

    // A second holdout drawn from the paper's minimal template (pure
    // Boolean statements, no wide signals): the apples-to-apples comparison
    // against the paper's 93.8-98% accuracy band. The enriched holdout
    // includes comparisons/arithmetic on vectors and is strictly harder.
    let paper_template = RvdgConfig {
        num_wide_inputs: 0,
        mix: TemplateMix::boolean_only(),
        ..RvdgConfig::default()
    };
    let paper_holdout_modules: Vec<_> = Generator::new(paper_template, 4321)
        .generate_corpus(scale.holdout_designs)?
        .into_iter()
        .map(|d| d.module)
        .collect();
    let paper_holdout = Dataset::from_designs(
        &paper_holdout_modules,
        99,
        scale.cycles,
        scale.runs_per_design,
    )?;

    println!("TABLE II: Results on test-set obtained for different weighting alpha factors.");
    println!(
        "{:<7} {:>8} {:>12}  {:>16}  {:>16}",
        "alpha", "Acc.(%)", "Acc.(bool)%", "Pr/Re (Target 0)", "Pr/Re (Target 1)"
    );
    println!("{}", "-".repeat(68));
    let mut best = (0.0f32, 0.0f32);
    for alpha in ALPHAS {
        obs::progress!("training predictor at alpha {alpha}...");
        let (model, _train, holdout) = train_model(&scale, alpha, 1234)?;
        let m = train::evaluate(&model, &holdout);
        let mb = train::evaluate(&model, &paper_holdout);
        println!(
            "{:<7} {:>8.1} {:>12.1}  {:>7.2}/{:<8.2}  {:>7.2}/{:<8.2}",
            alpha,
            m.accuracy * 100.0,
            mb.accuracy * 100.0,
            m.precision0,
            m.recall0,
            m.precision1,
            m.recall1
        );
        if m.accuracy > best.1 {
            best = (alpha, m.accuracy);
        }
    }
    println!(
        "(Acc.(bool) = accuracy on a holdout drawn from the paper's pure-Boolean\n\
         RVDG template; the main column uses the enriched template with vector\n\
         comparisons/arithmetic, which is harder but required for transfer.)"
    );

    // Apples-to-apples with the paper: train AND evaluate on the minimal
    // pure-Boolean template (the localization experiments keep the
    // enriched-template model).
    {
        let gen = Generator::new(
            RvdgConfig {
                num_wide_inputs: 0,
                mix: TemplateMix::boolean_only(),
                expr: rvdg::ExprConfig {
                    max_operands: 3,
                    ..rvdg::ExprConfig::default()
                },
                ..RvdgConfig::default()
            },
            1234,
        );
        let all = gen.generate_corpus(scale.train_designs + scale.holdout_designs)?;
        let (tr, ho) = all.split_at(scale.train_designs);
        let tr: Vec<_> = tr.iter().map(|d| d.module.clone()).collect();
        let ho: Vec<_> = ho.iter().map(|d| d.module.clone()).collect();
        let tr_set = Dataset::from_designs(&tr, 11, scale.cycles, scale.runs_per_design)?;
        let ho_set = Dataset::from_designs(&ho, 12, scale.cycles, scale.runs_per_design)?;
        let mut model = VeriBugModel::new(ModelConfig::default());
        train::train(
            &mut model,
            &tr_set,
            &TrainConfig {
                epochs: scale.epochs,
                alpha: 0.10,
                ..TrainConfig::default()
            },
        )?;
        let m = train::evaluate(&model, &ho_set);
        println!(
            "\npaper-template pipeline (boolean-only train AND eval, alpha 0.10):\n  \
             accuracy {:.1}%  Pr/Re(0) {:.2}/{:.2}  Pr/Re(1) {:.2}/{:.2}  (paper band: 93.8-98.0%)",
            m.accuracy * 100.0,
            m.precision0,
            m.recall0,
            m.precision1,
            m.recall1
        );
    }
    println!(
        "\nbest predictor: alpha = {} ({:.1}% holdout accuracy); the paper\n\
         selects alpha = 0.10 and so do the other experiments here.",
        best.0,
        best.1 * 100.0
    );

    if ablate_ctx {
        println!("\nABLATION: context aggregation (sum vs mean of path embeddings)");
        let (train_modules, holdout_modules) = corpora(&scale, 1234)?;
        let train_set = Dataset::from_designs(
            &train_modules,
            1234 ^ 1,
            scale.cycles,
            scale.runs_per_design,
        )?;
        let holdout_set = Dataset::from_designs(
            &holdout_modules,
            1234 ^ 2,
            scale.cycles,
            scale.runs_per_design,
        )?;
        for (label, agg) in [
            ("sum (paper)", veribug::ContextAggregation::Sum),
            ("mean", veribug::ContextAggregation::Mean),
        ] {
            let mut model = VeriBugModel::new(ModelConfig {
                context_aggregation: agg,
                ..ModelConfig::default()
            });
            train::train(
                &mut model,
                &train_set,
                &TrainConfig {
                    epochs: scale.epochs,
                    alpha: 0.10,
                    ..TrainConfig::default()
                },
            )?;
            let m = train::evaluate(&model, &holdout_set);
            println!("  ctx-agg {:<12} acc {:>5.1}%", label, m.accuracy * 100.0);
        }
    }

    if ablate_eps {
        println!("\nABLATION: aggregation skip-connection (epsilon)");
        let (train_modules, holdout_modules) = corpora(&scale, 1234)?;
        let train_set = Dataset::from_designs(
            &train_modules,
            1234 ^ 1,
            scale.cycles,
            scale.runs_per_design,
        )?;
        let holdout_set = Dataset::from_designs(
            &holdout_modules,
            1234 ^ 2,
            scale.cycles,
            scale.runs_per_design,
        )?;
        for (label, eps) in [("init 0.5", 0.5f32), ("init 0.0", 0.0)] {
            let mut model = VeriBugModel::new(ModelConfig {
                epsilon_init: eps,
                ..ModelConfig::default()
            });
            // "Frozen" is emulated by initializing at 0; with the skip off
            // the updated embeddings collapse to a statement-level constant,
            // so the comparison shows the skip's role.
            train::train(
                &mut model,
                &train_set,
                &TrainConfig {
                    epochs: scale.epochs,
                    alpha: 0.10,
                    ..TrainConfig::default()
                },
            )?;
            let m = train::evaluate(&model, &holdout_set);
            println!(
                "  epsilon {:<20} acc {:>5.1}%  (final epsilon {:.3})",
                label,
                m.accuracy * 100.0,
                model.epsilon()
            );
        }
    }
    obs::report();
    Ok(())
}
