//! Load generator for `veribug-serve`, written to `BENCH_serve.json`.
//!
//! Boots an in-process server on an ephemeral port and measures two
//! phases. First, a sequential cold/warm phase: fresh design pairs
//! requested once cold and three times warm on the otherwise idle server,
//! isolating what the compiled-design cache saves (parse → levelize →
//! compile) from queueing noise. Second, a load phase: N concurrent client
//! connections (one request per connection, matching the server's
//! `Connection: close` protocol) cycling over D distinct golden/buggy
//! pairs, retrying 429 backpressure under capped exponential backoff with
//! per-worker jitter. The JSON report carries:
//!
//! - throughput (requests per second over the load phase),
//! - mean/p50/p99 latency of the 200 responses, split by the
//!   `x-veribug-cache` response header,
//! - sequential cold vs warm p50 and their ratio,
//! - the cache-hit rate scraped from `/metricsz`,
//! - the 429-retry count, total backoff seconds, and the determinism and
//!   drain verdicts,
//! - a telemetry-overhead A/B (fresh servers with live tracing off vs on,
//!   alternating reps, best-of-reps throughput and p99),
//! - a `store_restart` block: first-request latency of a freshly booted
//!   server over an empty artifact store (cold restart) vs over a
//!   populated one (warm restart, designs precompiled at bind),
//!   min-of-3 boots each.
//!
//! Run with: `cargo run --release -p veribug-bench --bin serve_bench`
//!
//! Options: `--connections N` (default 8), `--requests N` total (default
//! 240), `--designs D` distinct pairs (default 6), `--smoke` (shrinks the
//! workload and exits non-zero on any 5xx response, on identical requests
//! producing different bodies, on a failed drain, on live telemetry
//! costing more than 5% throughput or p99, or on a restart over a
//! populated store that is not warm — without rewriting the JSON).

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::{Server, ServerConfig};

/// One completed request as seen by a client thread.
struct Sample {
    /// Index of the design pair the request targeted.
    design: usize,
    /// Wall-clock seconds from connect to full response.
    secs: f64,
    /// HTTP status code.
    status: u16,
    /// True when both the golden and buggy designs were cache hits.
    warm: bool,
    /// The response body, for the determinism cross-check.
    body: String,
    /// How many 429 (queue full) responses preceded this one.
    retries_429: usize,
    /// Total seconds slept in backoff before this request was accepted.
    wait_s: f64,
}

/// Backoff before the first 429 retry.
const BACKOFF_BASE_MS: u64 = 2;
/// Ceiling on a single backoff sleep.
const BACKOFF_CAP_MS: u64 = 100;

/// xorshift64 — a std-only jitter source; seeded per worker so rejected
/// clients don't re-knock in lockstep.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Full-jitter backoff for the `n`-th consecutive 429: uniform in
/// `[0, min(cap, base << n)]`. The exponential ceiling sheds load under
/// sustained backpressure; the jitter desynchronizes the retry herd that a
/// fixed sleep would march back to the listener all at once.
fn backoff_after(n: usize, rng: &mut u64) -> Duration {
    let ceil_ms = BACKOFF_CAP_MS.min(BACKOFF_BASE_MS << n.min(16));
    Duration::from_millis(xorshift(rng) % (ceil_ms + 1))
}

/// A distinct golden/buggy pair: a combinational chain of `stmts`
/// statements, so parse → levelize → compile (the work the cache skips) is
/// a measurable share of request latency. The `tag` comment makes each
/// pair's source bytes (and therefore its cache key) unique; the bug flips
/// one operator early in the chain so the divergence reaches the target.
fn design_pair(tag: usize, stmts: usize) -> (String, String) {
    let mut golden =
        format!("// serve-bench design {tag}\nmodule m(input a, input b, input c, output y);\n");
    let ops = ["&", "|", "^"];
    for i in 0..stmts {
        let prev = if i == 0 {
            "a".to_owned()
        } else {
            format!("t{}", i - 1)
        };
        let other = if i % 2 == 0 { "b" } else { "c" };
        let _ = writeln!(golden, "wire t{i};");
        let _ = writeln!(
            golden,
            "assign t{i} = {prev} {} {other};",
            ops[i % ops.len()]
        );
    }
    let _ = writeln!(golden, "assign y = t{} | c;", stmts - 1);
    golden.push_str("endmodule\n");
    let buggy = golden.replacen("t0 = a & b", "t0 = a | b", 1);
    (golden, buggy)
}

fn localize_body(golden: &str, buggy: &str, runs: usize, cycles: usize) -> String {
    let mut body = String::from("{\"golden\":");
    obs::json::write_str(&mut body, golden);
    body.push_str(",\"buggy\":");
    obs::json::write_str(&mut body, buggy);
    let _ = write!(
        body,
        ",\"target\":\"y\",\"options\":{{\"runs\":{runs},\"cycles\":{cycles},\"threshold\":0.01}}}}"
    );
    body
}

/// Issues one request and parses status, cache header, and body.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, bool, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let head = raw.split("\r\n\r\n").next().unwrap_or("");
    let warm = head
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("x-veribug-cache:"))
        .is_some_and(|l| !l.contains("miss"));
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, warm, payload))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats(samples: &[&Sample]) -> (f64, f64, f64) {
    let mut secs: Vec<f64> = samples.iter().map(|s| s.secs).collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    let mean = if secs.is_empty() {
        0.0
    } else {
        secs.iter().sum::<f64>() / secs.len() as f64
    };
    (mean, percentile(&secs, 0.5), percentile(&secs, 0.99))
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let numeric = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{flag} takes a number"))
            })
            .unwrap_or(default)
            .max(1)
    };
    let connections = numeric("--connections", if smoke { 4 } else { 8 });
    let total_requests = numeric("--requests", if smoke { 32 } else { 240 });
    let design_count = numeric("--designs", if smoke { 3 } else { 6 });
    let (runs, cycles) = if smoke { (4, 4) } else { (8, 8) };
    let stmts = numeric("--stmts", 256);

    let server = Server::bind(ServerConfig::default())?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());

    let bodies: Arc<Vec<String>> = Arc::new(
        (0..design_count)
            .map(|d| {
                let (golden, buggy) = design_pair(d, stmts);
                localize_body(&golden, &buggy, runs, cycles)
            })
            .collect(),
    );

    obs::progress!(
        "serve_bench: {total_requests} requests over {connections} connections, {design_count} design pairs"
    );

    // Sequential cold/warm phase on the idle server: dedicated design
    // pairs (never reused in the load phase), one cold request then three
    // warm repeats each. This isolates what the compiled-design cache
    // saves — parse → levelize → compile — from queueing noise.
    let mut seq_cold: Vec<f64> = Vec::new();
    let mut seq_warm: Vec<f64> = Vec::new();
    for d in 0..design_count {
        let (golden, buggy) = design_pair(1000 + d, stmts);
        let body = localize_body(&golden, &buggy, runs, cycles);
        for rep in 0..4 {
            let t0 = Instant::now();
            let (status, warm, _) = request(addr, "POST", "/v1/localize", &body)?;
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(status, 200, "sequential phase request failed");
            if rep == 0 {
                assert!(!warm, "first touch of a fresh pair must be a miss");
                seq_cold.push(secs);
            } else {
                assert!(warm, "repeat of a cached pair must be a hit");
                seq_warm.push(secs);
            }
        }
    }
    seq_cold.sort_by(|a, b| a.total_cmp(b));
    seq_warm.sort_by(|a, b| a.total_cmp(b));
    let seq_cold_p50 = percentile(&seq_cold, 0.5);
    let seq_warm_p50 = percentile(&seq_warm, 0.5);

    // Client threads pull request indices from a shared counter; index i
    // targets design pair i % D, so every pair is requested many times and
    // everything past the first D requests can be served warm.
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|w| {
            let next = Arc::clone(&next);
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || -> Vec<Sample> {
                // Per-worker jitter seed derived through the repo's shared
                // FNV-1a (`store::hash`) — distinct and never zero, which
                // xorshift requires.
                let mut rng = store::hash::fnv1a(format!("serve-bench worker {w}").as_bytes());
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total_requests {
                        return out;
                    }
                    let design = i % bodies.len();
                    // 429 is backpressure, not failure: back off (capped
                    // exponential, jittered) and retry, recording only the
                    // accepted attempt's latency.
                    let mut retries_429 = 0usize;
                    let mut wait_s = 0.0f64;
                    loop {
                        let t0 = Instant::now();
                        match request(addr, "POST", "/v1/localize", &bodies[design]) {
                            Ok((429, _, _)) if retries_429 < 1000 => {
                                let pause = backoff_after(retries_429, &mut rng);
                                retries_429 += 1;
                                wait_s += pause.as_secs_f64();
                                std::thread::sleep(pause);
                            }
                            Ok((status, warm, body)) => {
                                out.push(Sample {
                                    design,
                                    secs: t0.elapsed().as_secs_f64(),
                                    status,
                                    warm,
                                    body,
                                    retries_429,
                                    wait_s,
                                });
                                break;
                            }
                            Err(e) => {
                                out.push(Sample {
                                    design,
                                    secs: t0.elapsed().as_secs_f64(),
                                    status: 0,
                                    warm: false,
                                    body: format!("transport error: {e}"),
                                    retries_429,
                                    wait_s,
                                });
                                break;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let samples: Vec<Sample> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();

    // Cache-hit rate as the server counts it, scraped from /metricsz.
    let (_, _, metrics) = request(addr, "GET", "/metricsz", "")?;
    let (hits, misses) = cache_counters(&metrics);

    // Drain: stop accepting, finish in-flight, and require a clean exit.
    let (shutdown_status, _, _) = request(addr, "POST", "/v1/shutdown", "")?;
    let drained = shutdown_status == 200 && server_thread.join().is_ok_and(|r| r.is_ok());

    // Store-restart phase: what the persistent artifact store buys a
    // restarted process. Cold restart = fresh server over an *empty*
    // store (first request parses and compiles both designs); warm
    // restart = fresh server over the store the cold boot populated via
    // write-through (designs precompiled at bind, first request is an L1
    // hit). Min-of-reps on both sides — the workload is deterministic, so
    // the minimum is the honest estimate.
    let store_dir =
        std::env::temp_dir().join(format!("veribug-serve-bench-store-{}", std::process::id()));
    let restart_reps = 3usize;
    let restart_body = {
        let (golden, buggy) = design_pair(3000, stmts);
        localize_body(&golden, &buggy, runs, cycles)
    };
    let mut restart_cold_s = f64::INFINITY;
    let mut restart_warm_s = f64::INFINITY;
    let mut warm_hit = true;
    let mut warm_preloaded = 0u64;
    for _ in 0..restart_reps {
        std::fs::remove_dir_all(&store_dir).ok();
        let (secs, hit, _) = restart_probe(&store_dir, &restart_body)?;
        assert!(!hit, "cold restart over an empty store must miss");
        restart_cold_s = restart_cold_s.min(secs);
    }
    // The last cold boot left both designs in the store; every boot from
    // here on is warm.
    for _ in 0..restart_reps {
        let (secs, hit, preloaded) = restart_probe(&store_dir, &restart_body)?;
        warm_hit &= hit;
        warm_preloaded = preloaded;
        restart_warm_s = restart_warm_s.min(secs);
    }
    std::fs::remove_dir_all(&store_dir).ok();

    // Telemetry-overhead A/B: fresh servers with live tracing off vs on.
    // Symmetric min-of-reps, the same estimator bench_pipeline's
    // measure_obs_overhead uses: both arms run in every rep (order flipping
    // each rep so slow host drift cannot bias one arm), each arm keeps its
    // fastest median latency and fastest p99, and the overhead is the
    // clamped-at-zero gap between the two minima. The workload is
    // deterministic, so noise is one-sided — min-of-reps converges on the
    // true cost, and a "negative overhead" can only be noise, hence the
    // clamp.
    let (probe_reps, probe_reqs) = if smoke { (5, 32) } else { (3, 60) };
    let probe_bodies: Vec<String> = (0..2)
        .map(|d| {
            let (golden, buggy) = design_pair(2000 + d, stmts);
            localize_body(&golden, &buggy, runs, cycles)
        })
        .collect();
    let mut off_med = f64::INFINITY;
    let mut off_p99 = f64::INFINITY;
    let mut on_med = f64::INFINITY;
    let mut on_p99 = f64::INFINITY;
    for rep in 0..probe_reps {
        for arm in [rep % 2 == 0, rep % 2 != 0] {
            let (med, p99) = telemetry_probe(arm, &probe_bodies, probe_reqs)?;
            if arm {
                on_med = on_med.min(med);
                on_p99 = on_p99.min(p99);
            } else {
                off_med = off_med.min(med);
                off_p99 = off_p99.min(p99);
            }
        }
    }
    let off_rps = 1.0 / off_med.max(1e-9);
    let on_rps = 1.0 / on_med.max(1e-9);
    let rps_overhead = ((on_med - off_med) / on_med.max(1e-9)).max(0.0);
    let p99_overhead = ((on_p99 - off_p99) / off_p99.max(1e-9)).max(0.0);

    // Determinism: identical request bytes must produce identical 200
    // bodies, cold or warm.
    let mut deterministic = true;
    for d in 0..design_count {
        let mut expected: Option<&str> = None;
        for s in samples.iter().filter(|s| s.design == d && s.status == 200) {
            match expected {
                None => expected = Some(&s.body),
                Some(e) if e != s.body => deterministic = false,
                Some(_) => {}
            }
        }
    }

    // Latency statistics cover successful localizations only; rejected or
    // failed attempts don't measure the pipeline.
    let all: Vec<&Sample> = samples.iter().filter(|s| s.status == 200).collect();
    let cold: Vec<&Sample> = all.iter().copied().filter(|s| !s.warm).collect();
    let warm: Vec<&Sample> = all.iter().copied().filter(|s| s.warm).collect();
    let rejected_429: usize = samples.iter().map(|s| s.retries_429).sum();
    let retry_waits_s: f64 = samples.iter().map(|s| s.wait_s).sum();
    let (mean, p50, p99) = stats(&all);
    let (cold_mean, cold_p50, _) = stats(&cold);
    let (warm_mean, warm_p50, _) = stats(&warm);
    let server_errors = samples
        .iter()
        .filter(|s| s.status >= 500 || s.status == 0)
        .count();
    let ok = samples.iter().filter(|s| s.status == 200).count();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"connections\": {connections},");
    let _ = writeln!(json, "  \"requests\": {},", samples.len());
    let _ = writeln!(json, "  \"design_pairs\": {design_count},");
    let _ = writeln!(json, "  \"wall_clock_s\": {wall:.6},");
    let _ = writeln!(
        json,
        "  \"throughput_rps\": {:.3},",
        samples.len() as f64 / wall
    );
    let _ = writeln!(json, "  \"latency_s\": {{");
    let _ = writeln!(
        json,
        "    \"mean\": {mean:.6}, \"p50\": {p50:.6}, \"p99\": {p99:.6},"
    );
    let _ = writeln!(
        json,
        "    \"cold_mean\": {cold_mean:.6}, \"cold_p50\": {cold_p50:.6}, \"cold_requests\": {},",
        cold.len()
    );
    let _ = writeln!(
        json,
        "    \"warm_mean\": {warm_mean:.6}, \"warm_p50\": {warm_p50:.6}, \"warm_requests\": {}",
        warm.len()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sequential_latency_s\": {{");
    let _ = writeln!(
        json,
        "    \"cold_p50\": {seq_cold_p50:.6}, \"warm_p50\": {seq_warm_p50:.6}, \"cold_over_warm\": {:.3}",
        if seq_warm_p50 > 0.0 { seq_cold_p50 / seq_warm_p50 } else { 0.0 }
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cache\": {{");
    let _ = writeln!(
        json,
        "    \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"store_restart\": {{");
    let _ = writeln!(json, "    \"reps\": {restart_reps},");
    let _ = writeln!(
        json,
        "    \"cold_first_request_s\": {restart_cold_s:.6}, \"warm_first_request_s\": {restart_warm_s:.6},"
    );
    let _ = writeln!(
        json,
        "    \"cold_over_warm\": {:.3}, \"warm_hit\": {warm_hit}, \"preloaded\": {warm_preloaded}",
        if restart_warm_s > 0.0 {
            restart_cold_s / restart_warm_s
        } else {
            0.0
        }
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"telemetry_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"reps\": {probe_reps}, \"requests_per_probe\": {probe_reqs},"
    );
    let _ = writeln!(
        json,
        "    \"off_rps\": {off_rps:.3}, \"on_rps\": {on_rps:.3}, \"rps_overhead\": {rps_overhead:.4},"
    );
    let _ = writeln!(
        json,
        "    \"off_p99_s\": {off_p99:.6}, \"on_p99_s\": {on_p99:.6}, \"p99_overhead\": {p99_overhead:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"status_200\": {ok},");
    let _ = writeln!(json, "  \"rejected_429_retried\": {rejected_429},");
    let _ = writeln!(json, "  \"retry_waits_s\": {retry_waits_s:.6},");
    let _ = writeln!(json, "  \"status_5xx_or_transport\": {server_errors},");
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let _ = writeln!(json, "  \"drained\": {drained}");
    json.push_str("}\n");
    println!("{json}");
    if !smoke {
        std::fs::write("BENCH_serve.json", &json)?;
        obs::progress!("wrote BENCH_serve.json");
    }

    if smoke {
        if server_errors > 0 {
            return Err(format!("smoke FAILED: {server_errors} 5xx/transport failures").into());
        }
        if !deterministic {
            return Err("smoke FAILED: identical requests produced different bodies".into());
        }
        if !drained {
            return Err("smoke FAILED: server did not drain cleanly".into());
        }
        if seq_warm_p50 >= seq_cold_p50 {
            return Err(format!(
                "smoke FAILED: cached requests not faster (warm p50 {seq_warm_p50:.4}s >= cold p50 {seq_cold_p50:.4}s)"
            )
            .into());
        }
        if !warm_hit {
            return Err(
                "smoke FAILED: restart over a populated store did not answer its first request from cache"
                    .into(),
            );
        }
        if restart_warm_s >= restart_cold_s {
            return Err(format!(
                "smoke FAILED: warm restart not faster (first request {restart_warm_s:.4}s >= cold {restart_cold_s:.4}s)"
            )
            .into());
        }
        // Live telemetry must stay within 5% on both throughput and p99
        // (same budget the obs overhead gate in bench_pipeline enforces; a
        // tighter bound sits inside min-of-reps jitter on this host). p99
        // additionally gets a 1ms absolute epsilon: on millisecond-scale
        // requests a relative bound alone is below timer noise.
        const MAX_OVERHEAD: f64 = 0.05;
        const P99_EPSILON_S: f64 = 0.001;
        if rps_overhead > MAX_OVERHEAD {
            return Err(format!(
                "smoke FAILED: telemetry costs {:.1}% throughput (off {off_rps:.1} rps, on {on_rps:.1} rps; gate {:.0}%)",
                rps_overhead * 100.0,
                MAX_OVERHEAD * 100.0
            )
            .into());
        }
        if p99_overhead > MAX_OVERHEAD && on_p99 > off_p99 + P99_EPSILON_S {
            return Err(format!(
                "smoke FAILED: telemetry costs {:.1}% p99 (off {off_p99:.4}s, on {on_p99:.4}s; gate {:.0}%)",
                p99_overhead * 100.0,
                MAX_OVERHEAD * 100.0
            )
            .into());
        }
        println!(
            "smoke OK: {ok} responses, cache hit rate {:.0}%, warm p50 {seq_warm_p50:.4}s vs cold p50 {seq_cold_p50:.4}s, warm restart {restart_warm_s:.4}s vs cold {restart_cold_s:.4}s, telemetry overhead {:.1}% rps / {:.1}% p99",
            hit_rate * 100.0,
            rps_overhead * 100.0,
            p99_overhead * 100.0
        );
    }
    Ok(())
}

/// One arm of the telemetry A/B: boots a fresh server with live tracing
/// on or off, warms its design cache, then times `reqs` sequential warm
/// localize requests. Returns (median_s, p99_s); the caller derives
/// throughput as 1/median rather than reqs/wall-clock — on the
/// single-core bench host a one-off scheduler stall inside the timed
/// window swings wall-clock by ~10% but leaves the median untouched. A
/// fresh server per probe keeps the two arms symmetric — same cold
/// cache, same request mix.
fn telemetry_probe(
    telemetry: bool,
    bodies: &[String],
    reqs: usize,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let server = Server::bind(ServerConfig {
        telemetry,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    for body in bodies {
        let (status, _, _) = request(addr, "POST", "/v1/localize", body)?;
        assert_eq!(status, 200, "telemetry probe warmup failed");
    }
    let mut lat: Vec<f64> = Vec::with_capacity(reqs);
    for i in 0..reqs {
        let r0 = Instant::now();
        let (status, warm, _) = request(addr, "POST", "/v1/localize", &bodies[i % bodies.len()])?;
        assert_eq!(status, 200, "telemetry probe request failed");
        assert!(warm, "telemetry probe must measure warm requests");
        lat.push(r0.elapsed().as_secs_f64());
    }
    let (shutdown_status, _, _) = request(addr, "POST", "/v1/shutdown", "")?;
    assert_eq!(shutdown_status, 200, "telemetry probe drain failed");
    let _ = server_thread.join();
    lat.sort_by(|a, b| a.total_cmp(b));
    Ok((percentile(&lat, 0.50), percentile(&lat, 0.99)))
}

/// One restart probe: boots a fresh server over `store_dir`, times the
/// very first localize request, scrapes `store.preloaded` from `/statusz`,
/// and drains. Returns `(first_request_s, cache_hit, preloaded)`.
fn restart_probe(
    store_dir: &std::path::Path,
    body: &str,
) -> Result<(f64, bool, u64), Box<dyn std::error::Error>> {
    let server = Server::bind(ServerConfig {
        store_path: Some(store_dir.display().to_string()),
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    let t0 = Instant::now();
    let (status, warm, _) = request(addr, "POST", "/v1/localize", body)?;
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(status, 200, "restart probe request failed");
    let (_, _, statusz) = request(addr, "GET", "/statusz", "")?;
    let preloaded = obs::json::parse(&statusz)
        .ok()
        .and_then(|doc| doc.get("store")?.get("preloaded")?.as_num())
        .map_or(0, |v| v as u64);
    let (shutdown_status, _, _) = request(addr, "POST", "/v1/shutdown", "")?;
    assert_eq!(shutdown_status, 200, "restart probe drain failed");
    let _ = server_thread.join();
    Ok((secs, warm, preloaded))
}

/// Pulls `serve.cache.hits` / `serve.cache.misses` out of the `/metricsz`
/// JSON body.
fn cache_counters(metrics: &str) -> (u64, u64) {
    let read = |name: &str| -> u64 {
        obs::json::parse(metrics)
            .ok()
            .and_then(|doc| doc.get("counters")?.get(name)?.as_num())
            .map_or(0, |v| v as u64)
    };
    (read("serve.cache.hits"), read("serve.cache.misses"))
}
