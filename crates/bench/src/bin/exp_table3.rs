//! Regenerates **Table III**: bug coverage for bug localization on the
//! realistic designs — per design/target, the number of injected bugs of
//! each type, the observable count, and top-1 coverage — plus an extra
//! comparison column: top-1 coverage of the strongest SBFL baseline
//! (Ochiai) over the same runs.
//!
//! Flags:
//! - `--quick`: reduced training/campaign scale for smoke tests.
//! - `--threshold-sweep`: re-scores every observable bug at suspiciousness
//!   thresholds {0.05, 0.10, 0.20} (DESIGN.md Sec. 6 ablation).
//!
//! Run with: `cargo run --release -p veribug-bench --bin exp_table3`

use baseline::{collect_spectra, top1, SpectrumFormula};
use mutate::{BugBudget, Campaign, Mutant, MutationKind};
use sim::TraceLabel;
use veribug::coverage::labelled_traces;
use veribug::coverage::{localize_mutant_with, Coverage};
use veribug::explain::DEFAULT_FAILURE_WINDOW;
use veribug::model::VeriBugModel;
use veribug::Explainer;
use veribug::DEFAULT_THRESHOLD;
use veribug_bench::{ratio, train_model, ExperimentScale};

/// One Table III row: design, target, and the paper's per-kind bug budget.
struct Row {
    design: &'static str,
    target: &'static str,
    budget: BugBudget,
}

const ROWS: [Row; 8] = [
    Row {
        design: "wb_mux_2",
        target: "wbs0_we_o",
        budget: BugBudget {
            negation: 2,
            operation: 2,
            misuse: 4,
        },
    },
    Row {
        design: "wb_mux_2",
        target: "wbs0_stb_o",
        budget: BugBudget {
            negation: 2,
            operation: 2,
            misuse: 4,
        },
    },
    Row {
        design: "usbf_pl",
        target: "match_o",
        budget: BugBudget {
            negation: 5,
            operation: 8,
            misuse: 9,
        },
    },
    Row {
        design: "usbf_pl",
        target: "frame_no_we",
        budget: BugBudget {
            negation: 3,
            operation: 4,
            misuse: 9,
        },
    },
    Row {
        design: "usbf_idma",
        target: "mreq",
        budget: BugBudget {
            negation: 3,
            operation: 4,
            misuse: 6,
        },
    },
    Row {
        design: "usbf_idma",
        target: "adr_incw",
        budget: BugBudget {
            negation: 2,
            operation: 2,
            misuse: 8,
        },
    },
    Row {
        design: "ibex_controller",
        target: "stall",
        budget: BugBudget {
            negation: 4,
            operation: 6,
            misuse: 12,
        },
    },
    Row {
        design: "ibex_controller",
        target: "instr_valid_clear_o",
        budget: BugBudget {
            negation: 3,
            operation: 4,
            misuse: 12,
        },
    },
];

struct RowResult {
    design: &'static str,
    target: &'static str,
    injected_by_kind: [usize; 3],
    injected: usize,
    observable: usize,
    localized: usize,
    sbfl_localized: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let scale = ExperimentScale::from_args();
    let sweep = std::env::args().any(|a| a == "--threshold-sweep");
    let detail = std::env::args().any(|a| a == "--detail");
    let cyc: usize = std::env::args()
        .position(|a| a == "--cycles")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let runs_override: Option<usize> = std::env::args()
        .position(|a| a == "--runs")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok());
    let hold: f64 = std::env::args()
        .position(|a| a == "--hold")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.8);
    let window: u32 = std::env::args()
        .position(|a| a == "--window")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_FAILURE_WINDOW);

    obs::progress!("training the VeriBug model on RVDG synthetic designs...");
    let alpha: f32 = std::env::args()
        .position(|a| a == "--alpha")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let (model, _train, holdout) = train_model(&scale, alpha, 1234)?;
    let quality = veribug::train::evaluate(&model, &holdout);
    obs::progress!(
        "predictor holdout accuracy: {:.1}% (n={})",
        quality.accuracy * 100.0,
        quality.count
    );

    let mut results: Vec<RowResult> = Vec::new();
    let mut all_mutants: Vec<(usize, Vec<Mutant>)> = Vec::new();
    for (ri, row) in ROWS.iter().enumerate() {
        let design = designs::by_name(row.design).expect("known design");
        let golden = design.module()?;
        obs::progress!("campaign: {} / {} ...", row.design, row.target);
        let mutants = Campaign::new(0xDA7E_2024 + ri as u64)
            .with_runs_per_mutant(runs_override.unwrap_or(scale.runs_per_mutant))
            .with_cycles(cyc)
            .with_hold_probability(hold)
            .run(&golden, row.target, &row.budget)?;

        let outcomes = localize_all(&model, &mutants, row.target, DEFAULT_THRESHOLD, window);
        let slice = cdfg::Slice::of_target(&golden, row.target);
        let mut rr = RowResult {
            design: row.design,
            target: row.target,
            injected_by_kind: [0; 3],
            injected: mutants.len(),
            observable: 0,
            localized: 0,
            sbfl_localized: 0,
        };
        for (m, localized) in mutants.iter().zip(&outcomes) {
            let k = match m.site.kind {
                MutationKind::Negation => 0,
                MutationKind::OperationSubstitution => 1,
                MutationKind::VariableMisuse => 2,
            };
            rr.injected_by_kind[k] += 1;
            if !m.observable {
                continue;
            }
            rr.observable += 1;
            if *localized {
                rr.localized += 1;
            }
            // SBFL baseline on the same labelled runs.
            let runs: Vec<(TraceLabel, &sim::Trace)> =
                m.runs.iter().map(|r| (r.label, &r.trace)).collect();
            let spectra = collect_spectra(&runs, &slice.stmts);
            if top1(&spectra, SpectrumFormula::Ochiai) == Some(m.site.stmt) {
                rr.sbfl_localized += 1;
            }
        }
        if detail {
            for m in mutants.iter().filter(|m| m.observable) {
                let mut ex =
                    Explainer::new(&model, &m.module, row.target).with_failure_window(window);
                let runs = labelled_traces(m);
                let (h, f_map, c_map) = ex.explain(&runs, DEFAULT_THRESHOLD);
                let ranked = h.ranked();
                let rank = ranked.iter().position(|(id, _)| *id == m.site.stmt);
                let nops = m
                    .module
                    .assignment(m.site.stmt)
                    .map(|a| a.rhs.referenced_signals().len())
                    .unwrap_or(0);
                obs::progress!(
                    "  DETAIL [{}] bug@{} ops={} inF={} inC={} sus={:?} rank={:?}/{} top1={:?} top1sus={:?}",
                    m.site.kind,
                    m.site.stmt,
                    nops,
                    f_map.per_stmt.contains_key(&m.site.stmt),
                    c_map.per_stmt.contains_key(&m.site.stmt),
                    h.entries.get(&m.site.stmt).map(|e| e.suspiciousness),
                    rank.map(|r| r + 1),
                    h.len(),
                    h.top1(),
                    h.top1().and_then(|t| h.entries.get(&t)).map(|e| (e.suspiciousness, e.reason)),
                );
            }
        }
        results.push(rr);
        all_mutants.push((ri, mutants));
    }

    println!("\nTABLE III: Bug coverage for bug-localization on realistic designs.");
    println!(
        "{:<17} {:<20} {:>4} {:>4} {:>4}  {:>18}  {:>16}  {:>16}",
        "Design Name",
        "Target",
        "Neg",
        "Op",
        "Mis",
        "Total (Observable)",
        "top-1 Coverage",
        "Ochiai baseline"
    );
    println!("{}", "-".repeat(110));
    let mut per_design: std::collections::BTreeMap<&str, Coverage> = Default::default();
    let mut per_design_sbfl: std::collections::BTreeMap<&str, usize> = Default::default();
    for rr in &results {
        println!(
            "{:<17} {:<20} {:>4} {:>4} {:>4}  {:>13} ({:>2})  {:>16}  {:>16}",
            rr.design,
            rr.target,
            rr.injected_by_kind[0],
            rr.injected_by_kind[1],
            rr.injected_by_kind[2],
            rr.injected,
            rr.observable,
            ratio(rr.localized, rr.observable),
            ratio(rr.sbfl_localized, rr.observable),
        );
        let c = per_design.entry(rr.design).or_default();
        c.injected += rr.injected;
        c.observable += rr.observable;
        c.localized += rr.localized;
        *per_design_sbfl.entry(rr.design).or_default() += rr.sbfl_localized;
    }
    println!("{}", "-".repeat(110));
    let mut overall = Coverage::default();
    let mut overall_sbfl = 0;
    for (design, c) in &per_design {
        println!(
            "{:<17} {:<20} {:>30} ({:>2})  {:>16}  {:>16}",
            design,
            "-",
            c.injected,
            c.observable,
            ratio(c.localized, c.observable),
            ratio(per_design_sbfl[design], c.observable),
        );
        overall.merge(c);
        overall_sbfl += per_design_sbfl[design];
    }
    println!("{}", "-".repeat(110));
    println!(
        "{:<17} {:<20} {:>30} ({:>2})  {:>16}  {:>16}",
        "Overall",
        "-",
        overall.injected,
        overall.observable,
        ratio(overall.localized, overall.observable),
        ratio(overall_sbfl, overall.observable),
    );
    println!("(paper: overall 82.5% (85/103) over 120 injected bugs)");

    if sweep {
        println!("\nTHRESHOLD SWEEP (suspiciousness threshold ablation):");
        for thr in [0.05f32, 0.10, 0.20] {
            let mut cov = Coverage::default();
            for (ri, mutants) in &all_mutants {
                let row = &ROWS[*ri];
                let outcomes = localize_all(&model, mutants, row.target, thr, window);
                for (m, localized) in mutants.iter().zip(&outcomes) {
                    cov.injected += 1;
                    if m.observable {
                        cov.observable += 1;
                        if *localized {
                            cov.localized += 1;
                        }
                    }
                }
            }
            println!(
                "  threshold {:.2}: overall {}",
                thr,
                ratio(cov.localized, cov.observable)
            );
        }
    }
    obs::report();
    Ok(())
}

/// Localizes every mutant in parallel; returns per-mutant success flags
/// (false for unobservable mutants).
fn localize_all(
    model: &VeriBugModel,
    mutants: &[Mutant],
    target: &str,
    threshold: f32,
    window: u32,
) -> Vec<bool> {
    par::par_map(mutants, |m| {
        m.observable && localize_mutant_with(model, m, target, threshold, window).localized
    })
}
