//! Localization-quality benchmark: precision@k over injected mutations,
//! written to `BENCH_accuracy.json`.
//!
//! The harness runs the full pipeline — mutate → campaign → train →
//! localize — over the four-design Table I catalog (first target each)
//! plus a seeded RVDG corpus, using each mutant's injected site as ground
//! truth. For every observable mutant it computes the rank of the mutated
//! statement in the grouped heatmap and aggregates precision@1/@3/@5 and
//! MRR overall, per design, and per mutation class, alongside two quality
//! distributions: attention entropy over heatmap-entry weights and the
//! predictor's absolute logit margin over the holdout set.
//!
//! The whole evaluation runs at 1/2/8 worker threads and the JSON records
//! whether every number was bit-identical across thread counts — the same
//! determinism invariant the rest of the repo holds. Seeds are fixed and
//! recorded in a `seed_manifest` block so any row can be reproduced.
//!
//! Run with: `cargo run --release -p veribug-bench --bin accuracy_bench`
//!
//! Flags:
//! - `--quick`: reduced training/campaign scale;
//! - `--smoke`: implies `--quick`; prints the JSON without touching the
//!   checked-in `BENCH_accuracy.json` (pass `--out PATH` to keep a copy)
//!   and exits non-zero when precision@5 falls below the CI floor or any
//!   number differs across thread counts;
//! - `--out PATH`: write the JSON to `PATH` instead of the default;
//! - `--store PATH`: persistent artifact store (defaults to the
//!   `VERIBUG_STORE` environment variable). Trained weights and the full
//!   evaluation (ranks, entropies, margins — floats stored bit-exact) are
//!   keyed by the seed manifest, so a repeat run at the same scale reuses
//!   both and renders byte-identical JSON without recomputing. `--smoke`
//!   ignores the store: its determinism gate must re-measure, not replay.

use std::fmt::Write as _;

use mutate::{BugBudget, Campaign, Mutant, MutationKind};
use rvdg::{Generator, RvdgConfig};
use veribug::coverage::{grouped_heatmap, labelled_traces, DEFAULT_RUN_GROUPS};
use veribug::explain::attention_entropy;
use veribug::model::VeriBugModel;
use veribug::train::Dataset;
use veribug::{Explainer, DEFAULT_THRESHOLD};
use veribug_bench::ExperimentScale;
use verilog::{Module, PortDir};

/// Worker counts every number is cross-checked at.
const THREADS_CHECKED: [usize; 3] = [1, 2, 8];

/// Training seed (same as the Table II/III harnesses).
const TRAIN_SEED: u64 = 1234;
/// Base seed for the per-case mutation campaigns (case index is added).
const CAMPAIGN_SEED: u64 = 0xACC_2026;
/// Seed for the ground-truth RVDG corpus.
const RVDG_SEED: u64 = 0x05EE_DACC;

/// CI floor on overall precision@5 in `--smoke` mode. The quick-scale run
/// sits well above this (see EXPERIMENTS.md); the floor catches wholesale
/// regressions, not noise.
const SMOKE_P5_FLOOR: f64 = 0.50;

/// One design/target pair the harness localizes bugs in.
struct Case {
    name: String,
    target: String,
    module: Module,
    corpus: &'static str,
}

/// Ground-truth outcome for one injected mutation.
struct MutantEval {
    case_idx: usize,
    kind: MutationKind,
    observable: bool,
    /// 1-based rank of the injected statement in the heatmap, if present.
    rank: Option<usize>,
    /// Attention entropy of each heatmap entry's `F_t` weights.
    entropies: Vec<f64>,
}

/// Everything the evaluation computes (per thread count).
struct EvalOut {
    mutants: Vec<MutantEval>,
    /// Absolute logit margins over the holdout set, in dataset order.
    margins: Vec<f64>,
}

/// Rank + entropy aggregates for one slice of the mutant population.
#[derive(Default, Clone, Copy)]
struct Agg {
    injected: usize,
    observable: usize,
    hit1: usize,
    hit3: usize,
    hit5: usize,
    rr_sum: f64,
}

impl Agg {
    fn add(&mut self, m: &MutantEval) {
        self.injected += 1;
        if !m.observable {
            return;
        }
        self.observable += 1;
        if let Some(r) = m.rank {
            self.hit1 += usize::from(r <= 1);
            self.hit3 += usize::from(r <= 3);
            self.hit5 += usize::from(r <= 5);
            self.rr_sum += 1.0 / r as f64;
        }
    }

    fn p_at(&self, hits: usize) -> f64 {
        if self.observable == 0 {
            0.0
        } else {
            hits as f64 / self.observable as f64
        }
    }

    fn mrr(&self) -> f64 {
        if self.observable == 0 {
            0.0
        } else {
            self.rr_sum / self.observable as f64
        }
    }
}

/// A deterministic summary of a sample (percentiles by nearest rank on the
/// sorted values — no interpolation, so the numbers are exact f64s from
/// the sample and bit-stable).
struct Dist {
    count: usize,
    mean: f64,
    min: f64,
    max: f64,
    p50: f64,
    p90: f64,
    p99: f64,
}

fn dist(values: &[f64]) -> Dist {
    if values.is_empty() {
        return Dist {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let pick = |pct: usize| sorted[(n - 1) * pct / 100];
    Dist {
        count: n,
        mean: sorted.iter().sum::<f64>() / n as f64,
        min: sorted[0],
        max: sorted[n - 1],
        p50: pick(50),
        p90: pick(90),
        p99: pick(99),
    }
}

/// Localizes every mutant of every case and scores the holdout margins.
/// Pure function of its inputs — run under `par::with_threads` to check
/// thread invariance.
fn evaluate(
    model: &VeriBugModel,
    cases: &[Case],
    campaigns: &[Vec<Mutant>],
    holdout: &Dataset,
) -> EvalOut {
    let flat: Vec<(usize, &Mutant)> = campaigns
        .iter()
        .enumerate()
        .flat_map(|(ci, ms)| ms.iter().map(move |m| (ci, m)))
        .collect();
    let mutants = par::par_map(&flat, |&(ci, m)| {
        if !m.observable {
            return MutantEval {
                case_idx: ci,
                kind: m.site.kind,
                observable: false,
                rank: None,
                entropies: Vec::new(),
            };
        }
        let mut ex = Explainer::new(model, &m.module, &cases[ci].target);
        let runs = labelled_traces(m);
        let heatmap = grouped_heatmap(&mut ex, &runs, DEFAULT_THRESHOLD, DEFAULT_RUN_GROUPS);
        let rank = heatmap
            .ranked()
            .iter()
            .position(|(id, _)| *id == m.site.stmt)
            .map(|r| r + 1);
        let entropies = heatmap
            .entries
            .values()
            .map(|e| attention_entropy(&e.weights))
            .collect();
        MutantEval {
            case_idx: ci,
            kind: m.site.kind,
            observable: true,
            rank,
            entropies,
        }
    });
    let margin_chunks = par::par_chunk_map(&holdout.entries, 64, |_, chunk| {
        let mut g = neuro::Graph::new();
        chunk
            .iter()
            .map(|entry| {
                g.clear();
                let fwd = model.forward(&mut g, &holdout.stmts[entry.stmt_idx], &entry.sample);
                let row = g.value(fwd.logits);
                let row = row.data();
                f64::from((row[1] - row[0]).abs())
            })
            .collect::<Vec<f64>>()
    });
    EvalOut {
        mutants,
        margins: margin_chunks.into_iter().flatten().collect(),
    }
}

/// The artifact-store key for the evaluation: everything that determines
/// its numbers — weights, every seed, the scale, the budget, and the
/// thread counts cross-checked.
fn eval_key(scale: &ExperimentScale, budget: &BugBudget, weights_hash: &str) -> u64 {
    store::hash::fnv1a(
        format!(
            "accuracy-eval v1\nweights {weights_hash}\n\
             seeds {TRAIN_SEED} {CAMPAIGN_SEED} {RVDG_SEED}\n\
             scale {} {} {} {} {} {}\nbudget {} {} {}\nthreads {THREADS_CHECKED:?}\n",
            scale.train_designs,
            scale.holdout_designs,
            scale.cycles,
            scale.runs_per_design,
            scale.epochs,
            scale.runs_per_mutant,
            budget.negation,
            budget.operation,
            budget.misuse,
        )
        .as_bytes(),
    )
}

/// Serializes the evaluation for the artifact store. Floats go through
/// `f64::to_bits` as fixed-width hex, so a decoded evaluation renders the
/// exact same JSON bytes as the run that produced it.
fn encode_eval(deterministic: bool, ev: &EvalOut) -> String {
    let mut out = String::from("accuracy-eval v1\n");
    let _ = writeln!(out, "deterministic {deterministic}");
    let _ = writeln!(out, "mutants {}", ev.mutants.len());
    for m in &ev.mutants {
        let _ = write!(
            out,
            "{} {} {} {} {}",
            m.case_idx,
            m.kind,
            u8::from(m.observable),
            m.rank.unwrap_or(0),
            m.entropies.len()
        );
        for e in &m.entropies {
            let _ = write!(out, " {:016x}", e.to_bits());
        }
        out.push('\n');
    }
    let _ = writeln!(out, "margins {}", ev.margins.len());
    for m in &ev.margins {
        let _ = writeln!(out, "{:016x}", m.to_bits());
    }
    out.push_str("end\n");
    out
}

/// Inverse of [`encode_eval`]. Any malformed line (including a `case_idx`
/// beyond the current case list) returns `None`, which callers treat as a
/// plain store miss.
fn decode_eval(text: &str, case_count: usize) -> Option<(bool, EvalOut)> {
    let mut lines = text.lines();
    if lines.next()? != "accuracy-eval v1" {
        return None;
    }
    let deterministic = match lines.next()? {
        "deterministic true" => true,
        "deterministic false" => false,
        _ => return None,
    };
    let hex = |tok: &str| u64::from_str_radix(tok, 16).ok().map(f64::from_bits);
    let count = |line: &str, tag: &str| {
        line.strip_prefix(tag)
            .and_then(|n| n.trim().parse::<usize>().ok())
    };
    let n = count(lines.next()?, "mutants ")?;
    let mut mutants = Vec::with_capacity(n);
    for _ in 0..n {
        let mut toks = lines.next()?.split_whitespace();
        let case_idx: usize = toks.next()?.parse().ok()?;
        if case_idx >= case_count {
            return None;
        }
        let kind_name = toks.next()?;
        let kind = *MutationKind::ALL
            .iter()
            .find(|k| k.to_string() == kind_name)?;
        let observable = match toks.next()? {
            "1" => true,
            "0" => false,
            _ => return None,
        };
        let rank: usize = toks.next()?.parse().ok()?;
        let k: usize = toks.next()?.parse().ok()?;
        let entropies: Vec<f64> = toks.by_ref().filter_map(hex).collect();
        if entropies.len() != k || toks.next().is_some() {
            return None;
        }
        mutants.push(MutantEval {
            case_idx,
            kind,
            observable,
            rank: (rank > 0).then_some(rank),
            entropies,
        });
    }
    let n = count(lines.next()?, "margins ")?;
    let mut margins = Vec::with_capacity(n);
    for _ in 0..n {
        margins.push(hex(lines.next()?)?);
    }
    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some((deterministic, EvalOut { mutants, margins }))
}

/// Bit-exact fingerprint of every number the evaluation produced.
fn fingerprint(ev: &EvalOut) -> Vec<u64> {
    let mut fp = Vec::new();
    for m in &ev.mutants {
        fp.push(m.case_idx as u64);
        fp.push(m.rank.map_or(0, |r| r as u64));
        for e in &m.entropies {
            fp.push(e.to_bits());
        }
    }
    for m in &ev.margins {
        fp.push(m.to_bits());
    }
    fp
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    veribug_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = smoke || args.iter().any(|a| a == "--quick");
    let out: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    // Smoke bypasses the store: its whole point is to re-measure the
    // determinism and precision gates, not replay a cached verdict.
    let artifact_store = if smoke {
        None
    } else {
        match args
            .iter()
            .position(|a| a == "--store")
            .and_then(|i| args.get(i + 1))
        {
            Some(path) => Some(store::Store::open(path, store::env_budget()?)?),
            None => store::Store::from_env()?,
        }
    };

    obs::progress!("training the VeriBug model on RVDG synthetic designs...");
    let (model, _train_set, holdout) =
        veribug_bench::train_model_cached(&scale, 0.10, TRAIN_SEED, artifact_store.as_ref())?;
    let weights_hash = veribug::persist::content_hash_hex(&model);

    // Ground-truth cases: the Table I catalog (first target each, matching
    // the paper's per-design rows) plus a seeded RVDG corpus whose target
    // is the design's first output port.
    let mut cases: Vec<Case> = Vec::new();
    for d in designs::catalog() {
        cases.push(Case {
            name: d.name.to_owned(),
            target: d.targets[0].to_owned(),
            module: d.module()?,
            corpus: "catalog",
        });
    }
    let rvdg_designs = if quick { 2 } else { 4 };
    for (i, d) in Generator::new(RvdgConfig::default(), RVDG_SEED)
        .generate_corpus(rvdg_designs)?
        .into_iter()
        .enumerate()
    {
        let target = d
            .module
            .ports
            .iter()
            .find(|p| p.dir == PortDir::Output)
            .expect("rvdg designs have outputs")
            .name
            .clone();
        cases.push(Case {
            name: format!("rvdg_{i}"),
            target,
            module: d.module,
            corpus: "rvdg",
        });
    }

    let budget = if quick {
        BugBudget {
            negation: 1,
            operation: 1,
            misuse: 2,
        }
    } else {
        BugBudget {
            negation: 3,
            operation: 4,
            misuse: 5,
        }
    };

    // With a store, the whole evaluation (campaigns included) is keyed by
    // its seed manifest: a hit replays the bit-exact numbers of the run
    // that produced it and renders the same JSON bytes.
    let key = eval_key(&scale, &budget, &weights_hash);
    let cached = artifact_store.as_ref().and_then(|s| {
        s.get(store::ArtifactKind::Campaign, key)
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| decode_eval(&text, cases.len()))
    });
    let (deterministic, ev) = match cached {
        Some((deterministic, ev)) => {
            obs::progress!(
                "reusing stored evaluation {} ({} mutants, {} margins)",
                store::hash::key_hex(key),
                ev.mutants.len(),
                ev.margins.len()
            );
            (deterministic, ev)
        }
        None => {
            // Campaigns run once (they are deterministic; bench_pipeline
            // --smoke cross-checks the campaign stage across thread
            // counts), then the localization/margin evaluation reruns at
            // every checked thread count.
            let mut campaigns: Vec<Vec<Mutant>> = Vec::new();
            for (ci, case) in cases.iter().enumerate() {
                obs::progress!("campaign: {} / {} ...", case.name, case.target);
                let mutants = Campaign::new(CAMPAIGN_SEED + ci as u64)
                    .with_runs_per_mutant(scale.runs_per_mutant)
                    .run(&case.module, &case.target, &budget)?;
                campaigns.push(mutants);
            }

            let mut evals: Vec<EvalOut> = Vec::new();
            for &threads in &THREADS_CHECKED {
                par::with_threads(threads, || {
                    evals.push(evaluate(&model, &cases, &campaigns, &holdout));
                });
                obs::progress!("evaluated at {threads} thread(s)");
            }
            let fp0 = fingerprint(&evals[0]);
            let deterministic = evals.iter().all(|e| fingerprint(e) == fp0);
            let ev = evals.swap_remove(0);
            if let Some(s) = &artifact_store {
                // A failed cache write only costs the next run a recompute.
                if let Err(e) = s.put(
                    store::ArtifactKind::Campaign,
                    key,
                    encode_eval(deterministic, &ev).as_bytes(),
                ) {
                    obs::progress!("warning: evaluation store write failed: {e}");
                }
            }
            (deterministic, ev)
        }
    };
    let ev = &ev;

    let mut overall = Agg::default();
    let mut by_case: Vec<Agg> = vec![Agg::default(); cases.len()];
    let mut by_kind: Vec<Agg> = vec![Agg::default(); MutationKind::ALL.len()];
    for m in &ev.mutants {
        overall.add(m);
        by_case[m.case_idx].add(m);
        let k = MutationKind::ALL
            .iter()
            .position(|k| *k == m.kind)
            .expect("kind in ALL");
        by_kind[k].add(m);
    }
    let entropies: Vec<f64> = ev
        .mutants
        .iter()
        .flat_map(|m| m.entropies.iter().copied())
        .collect();

    let json = render_json(&RenderInput {
        scale: &scale,
        budget: &budget,
        weights_hash: &weights_hash,
        deterministic,
        overall,
        cases: &cases,
        by_case: &by_case,
        by_kind: &by_kind,
        entropy: dist(&entropies),
        margin: dist(&ev.margins),
    });
    // Smoke never touches the checked-in BENCH_accuracy.json: its numbers
    // come from the reduced scale and would silently replace the full run.
    match (&out, smoke) {
        (Some(path), _) => std::fs::write(path, &json)?,
        (None, false) => std::fs::write("BENCH_accuracy.json", &json)?,
        (None, true) => {}
    }
    println!("{json}");

    if smoke {
        if !deterministic {
            eprintln!("smoke FAILED: evaluation differs across thread counts {THREADS_CHECKED:?}");
            std::process::exit(1);
        }
        if overall.observable == 0 {
            eprintln!("smoke FAILED: no injected bug was observable at any target");
            std::process::exit(1);
        }
        let p5 = overall.p_at(overall.hit5);
        if p5 < SMOKE_P5_FLOOR {
            eprintln!(
                "smoke FAILED: precision@5 {:.3} below the {:.2} floor ({} of {} observable)",
                p5, SMOKE_P5_FLOOR, overall.hit5, overall.observable
            );
            std::process::exit(1);
        }
        obs::progress!(
            "smoke OK: precision@5 {:.3} (floor {:.2}), deterministic at {THREADS_CHECKED:?} threads",
            p5,
            SMOKE_P5_FLOOR
        );
    }
    obs::report();
    Ok(())
}

/// Everything `render_json` needs, bundled to keep the signature readable.
struct RenderInput<'a> {
    scale: &'a ExperimentScale,
    budget: &'a BugBudget,
    weights_hash: &'a str,
    deterministic: bool,
    overall: Agg,
    cases: &'a [Case],
    by_case: &'a [Agg],
    by_kind: &'a [Agg],
    entropy: Dist,
    margin: Dist,
}

fn write_agg(out: &mut String, indent: &str, a: &Agg) {
    let _ = write!(
        out,
        "{indent}\"injected\": {}, \"observable\": {}, \"p_at_1\": ",
        a.injected, a.observable
    );
    obs::json::write_f64(out, a.p_at(a.hit1));
    out.push_str(", \"p_at_3\": ");
    obs::json::write_f64(out, a.p_at(a.hit3));
    out.push_str(", \"p_at_5\": ");
    obs::json::write_f64(out, a.p_at(a.hit5));
    out.push_str(", \"mrr\": ");
    obs::json::write_f64(out, a.mrr());
}

fn write_dist(out: &mut String, d: &Dist) {
    let _ = write!(out, "{{ \"count\": {}, \"mean\": ", d.count);
    obs::json::write_f64(out, d.mean);
    out.push_str(", \"min\": ");
    obs::json::write_f64(out, d.min);
    out.push_str(", \"max\": ");
    obs::json::write_f64(out, d.max);
    out.push_str(", \"p50\": ");
    obs::json::write_f64(out, d.p50);
    out.push_str(", \"p90\": ");
    obs::json::write_f64(out, d.p90);
    out.push_str(", \"p99\": ");
    obs::json::write_f64(out, d.p99);
    out.push_str(" }");
}

/// Hand-rolled JSON (the vendored serde is a compile-surface stub and does
/// not serialize). Field order is fixed and floats go through
/// [`obs::json::write_f64`], so identical inputs render byte-identically.
fn render_json(input: &RenderInput<'_>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"veribug-accuracy v1\",\n");
    out.push_str("  \"seed_manifest\": {\n");
    let _ = writeln!(out, "    \"train_seed\": {TRAIN_SEED},");
    let _ = writeln!(out, "    \"campaign_seed_base\": {CAMPAIGN_SEED},");
    let _ = writeln!(out, "    \"rvdg_seed\": {RVDG_SEED},");
    let _ = writeln!(
        out,
        "    \"threads_checked\": [{}]",
        THREADS_CHECKED
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  },\n");
    out.push_str("  \"scale\": {\n");
    let _ = writeln!(
        out,
        "    \"train_designs\": {}, \"holdout_designs\": {}, \"cycles\": {},",
        input.scale.train_designs, input.scale.holdout_designs, input.scale.cycles
    );
    let _ = writeln!(
        out,
        "    \"epochs\": {}, \"runs_per_mutant\": {},",
        input.scale.epochs, input.scale.runs_per_mutant
    );
    let _ = writeln!(
        out,
        "    \"budget_per_case\": {{ \"negation\": {}, \"operation\": {}, \"misuse\": {} }}",
        input.budget.negation, input.budget.operation, input.budget.misuse
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"weights_hash\": \"{}\",", input.weights_hash);
    let _ = writeln!(
        out,
        "  \"deterministic_across_threads\": {},",
        input.deterministic
    );
    out.push_str("  \"overall\": {\n");
    write_agg(&mut out, "    ", &input.overall);
    out.push_str("\n  },\n");
    out.push_str("  \"designs\": [\n");
    for (i, (case, agg)) in input.cases.iter().zip(input.by_case).enumerate() {
        out.push_str("    { \"name\": ");
        obs::json::write_str(&mut out, &case.name);
        out.push_str(", \"target\": ");
        obs::json::write_str(&mut out, &case.target);
        let _ = writeln!(out, ", \"corpus\": \"{}\",", case.corpus);
        write_agg(&mut out, "      ", agg);
        out.push_str(" }");
        out.push_str(if i + 1 < input.cases.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"classes\": [\n");
    for (i, (kind, agg)) in MutationKind::ALL.iter().zip(input.by_kind).enumerate() {
        let _ = writeln!(out, "    {{ \"kind\": \"{kind}\",");
        write_agg(&mut out, "      ", agg);
        out.push_str(" }");
        out.push_str(if i + 1 < MutationKind::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"distributions\": {\n");
    out.push_str("    \"attention_entropy\": ");
    write_dist(&mut out, &input.entropy);
    out.push_str(",\n    \"score_margin\": ");
    write_dist(&mut out, &input.margin);
    out.push_str("\n  },\n");
    out.push_str(
        "  \"note\": \"rank = position of the injected statement in the grouped heatmap; \
         p_at_k and mrr are over observable mutants (absent rank scores 0). \
         attention_entropy is over heatmap-entry F_t weights; score_margin is |l1 - l0| \
         over the holdout set\"\n",
    );
    out.push_str("}\n");
    out
}
