//! # veribug-bench
//!
//! Shared plumbing for the experiment binaries that regenerate the paper's
//! tables and figures:
//!
//! - `exp_table1` — Table I: localization test-set modules;
//! - `exp_table2` — Table II: predictor quality vs regularization weight α
//!   (plus `--ablate-eps` and `--ctx-agg` ablations);
//! - `exp_table3` — Table III: per-design/per-target top-1 bug coverage
//!   (plus SBFL baseline columns and `--threshold-sweep`);
//! - `exp_fig4` — Fig. 4: qualitative heatmaps on the realistic designs.
//!
//! Criterion micro-benchmarks for each pipeline stage live in
//! `benches/pipeline.rs`.

#![warn(missing_docs)]

use rvdg::{Generator, RvdgConfig};
use veribug::{
    model::{ModelConfig, VeriBugModel},
    train::{self, Dataset, TrainConfig},
    VeriBugError,
};
use verilog::Module;

/// The corpus/training sizes the experiments use.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// RVDG designs in the training corpus.
    pub train_designs: usize,
    /// RVDG designs held out for Table II evaluation.
    pub holdout_designs: usize,
    /// Cycles per dataset-building stimulus.
    pub cycles: usize,
    /// Stimuli per design.
    pub runs_per_design: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Co-simulation runs per mutant in campaigns.
    pub runs_per_mutant: usize,
}

impl ExperimentScale {
    /// Full scale: what EXPERIMENTS.md reports.
    pub fn full() -> Self {
        ExperimentScale {
            train_designs: 32,
            holdout_designs: 8,
            cycles: 64,
            runs_per_design: 3,
            epochs: 80,
            runs_per_mutant: 160,
        }
    }

    /// Reduced scale for smoke-testing the harness (`--quick`).
    pub fn quick() -> Self {
        ExperimentScale {
            train_designs: 16,
            holdout_designs: 4,
            cycles: 48,
            runs_per_design: 2,
            epochs: 30,
            runs_per_mutant: 30,
        }
    }

    /// Picks full or quick scale from the presence of a `--quick` flag.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            ExperimentScale::quick()
        } else {
            ExperimentScale::full()
        }
    }
}

/// Generates the RVDG corpora: `(train, holdout)` module sets.
///
/// # Errors
///
/// Propagates generator/parse failures.
pub fn corpora(
    scale: &ExperimentScale,
    seed: u64,
) -> Result<(Vec<Module>, Vec<Module>), verilog::ParseError> {
    let generator = Generator::new(RvdgConfig::default(), seed);
    let all = generator.generate_corpus(scale.train_designs + scale.holdout_designs)?;
    let (train, hold) = all.split_at(scale.train_designs);
    Ok((
        train.iter().map(|d| d.module.clone()).collect(),
        hold.iter().map(|d| d.module.clone()).collect(),
    ))
}

/// Trains a model at the given scale with a specific regularization α.
///
/// # Errors
///
/// Propagates dataset/simulation failures.
pub fn train_model(
    scale: &ExperimentScale,
    alpha: f32,
    seed: u64,
) -> Result<(VeriBugModel, Dataset, Dataset), VeriBugError> {
    train_model_cached(scale, alpha, seed, None)
}

/// The artifact-store key for a training run: an FNV-1a hash of the seed
/// manifest — everything that determines the resulting weights, including
/// the persist format version so a format bump invalidates old entries.
pub fn weights_key(scale: &ExperimentScale, alpha: f32, seed: u64) -> u64 {
    store::hash::fnv1a(
        format!(
            "veribug-bench weights v1\nscale {} {} {} {} {}\nalpha {alpha:e}\nseed {seed}\nformat {}\n",
            scale.train_designs,
            scale.holdout_designs,
            scale.cycles,
            scale.runs_per_design,
            scale.epochs,
            veribug::persist::format_version()
        )
        .as_bytes(),
    )
}

/// [`train_model`] with optional weight reuse through a persistent
/// artifact store: a hit on the seed-manifest key skips the training loop
/// (the datasets are still built — callers need them for evaluation), a
/// miss trains and writes the weights through. Training is deterministic,
/// so reused weights are byte-identical to a fresh run's.
///
/// # Errors
///
/// Propagates dataset/simulation failures and store write failures.
pub fn train_model_cached(
    scale: &ExperimentScale,
    alpha: f32,
    seed: u64,
    artifact_store: Option<&store::Store>,
) -> Result<(VeriBugModel, Dataset, Dataset), VeriBugError> {
    let (train_modules, holdout_modules) = corpora(scale, seed)?;
    let train_set = Dataset::from_designs(
        &train_modules,
        seed ^ 1,
        scale.cycles,
        scale.runs_per_design,
    )?;
    let holdout_set = Dataset::from_designs(
        &holdout_modules,
        seed ^ 2,
        scale.cycles,
        scale.runs_per_design,
    )?;
    let key = weights_key(scale, alpha, seed);
    if let Some(s) = artifact_store {
        if let Some(model) = s
            .get(store::ArtifactKind::Weights, key)
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| veribug::persist::from_str(&text).ok())
        {
            obs::progress!(
                "reusing stored weights {} (seed {seed})",
                store::hash::key_hex(key)
            );
            return Ok((model, train_set, holdout_set));
        }
    }
    let mut model = VeriBugModel::new(ModelConfig::default());
    train::train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: scale.epochs,
            alpha,
            ..TrainConfig::default()
        },
    )?;
    if let Some(s) = artifact_store {
        // A failed cache write costs the next run a retrain, nothing more.
        if let Err(e) = s.put(
            store::ArtifactKind::Weights,
            key,
            veribug::persist::to_string(&model).as_bytes(),
        ) {
            obs::progress!("warning: weight store write failed: {e}");
        }
    }
    Ok((model, train_set, holdout_set))
}

/// Initializes observability from the uniform CLI surface every experiment
/// binary shares: `--obs <path>` (or the `VERIBUG_OBS` environment
/// variable) enables collection, `--quiet` suppresses progress lines.
///
/// Call once at the top of `main` and pair with [`obs::report`] before
/// exit — same convention as the `veribug` CLI.
pub fn init_obs() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--obs")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    obs::init(path);
    obs::set_quiet(args.iter().any(|a| a == "--quiet"));
}

/// Formats a ratio as `"x/y (p%)"`.
pub fn ratio(localized: usize, observable: usize) -> String {
    if observable == 0 {
        "-".to_owned()
    } else {
        format!(
            "{:.1}% ({}/{})",
            100.0 * localized as f64 / observable as f64,
            localized,
            observable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_trains_end_to_end() {
        let scale = ExperimentScale::quick();
        let (model, train_set, holdout) = train_model(&scale, 0.10, 99).unwrap();
        assert!(train_set.len() > 50);
        assert!(!holdout.is_empty());
        let m = veribug::train::evaluate(&model, &holdout);
        assert!(m.accuracy > 0.5, "quick model worse than chance: {m:?}");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(7, 8), "87.5% (7/8)");
        assert_eq!(ratio(0, 0), "-");
    }
}
