//! Differential tests: the compiled engine must be bit-identical to the
//! interpreter — signal snapshots **and** `StmtExec` records — on every
//! design in `crates/designs` and a large RVDG-generated corpus, at every
//! supported thread count.

use rvdg::{Generator, RvdgConfig};
use sim::{EngineKind, Simulator, TestbenchGen, Trace};
use veribug::model::{ModelConfig, VeriBugModel};
use veribug::train::{self, Dataset, TrainConfig};
use verilog::Module;

/// Cycles per stimulus; long enough to exercise resets, wrap-around and
/// dirty-set skipping, short enough to keep the corpus fast.
const CYCLES: usize = 48;
/// Independent stimuli per design.
const STIMULI: usize = 3;

/// Runs `module` through both engines on identical stimuli and returns the
/// paired traces. Panics if the compiled simulator silently fell back to the
/// interpreter when `expect_compiled` is set — a silent fallback would make
/// the differential comparison vacuous.
fn run_both(module: &Module, seed: u64, expect_compiled: bool) -> Vec<(Trace, Trace)> {
    let mut compiled = Simulator::new(module).expect("compiled elaboration");
    let mut interp = Simulator::interpreted(module).expect("interpreted elaboration");
    assert_eq!(interp.engine_kind(), EngineKind::Interpreted);
    if expect_compiled {
        assert_eq!(
            compiled.engine_kind(),
            EngineKind::Compiled,
            "design unexpectedly fell back to the interpreter"
        );
    }
    let stimuli = TestbenchGen::new(seed).generate_many(compiled.netlist(), CYCLES, STIMULI);
    stimuli
        .iter()
        .map(|stim| {
            let a = compiled.run(stim).expect("compiled run");
            let b = interp.run(stim).expect("interpreted run");
            (a, b)
        })
        .collect()
}

fn assert_identical(name: &str, pairs: &[(Trace, Trace)]) {
    for (i, (compiled, interp)) in pairs.iter().enumerate() {
        assert_eq!(
            compiled, interp,
            "{name}: stimulus {i} diverged between compiled and interpreted engines"
        );
    }
}

/// Every Table I design, compiled vs interpreted, at 1/2/8 threads.
#[test]
fn designs_catalog_is_bit_identical_across_engines_and_threads() {
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            let results = par::par_map(&designs::catalog(), |d| {
                let module = d.module().expect("design parses");
                (d.name, run_both(&module, 0xD1FF_0001, true))
            });
            for (name, pairs) in &results {
                assert_identical(name, pairs);
            }
        });
    }
}

/// ≥ 100 RVDG-generated designs, compiled vs interpreted, at 1/2/8 threads.
#[test]
fn rvdg_corpus_is_bit_identical_across_engines_and_threads() {
    let corpus = Generator::new(RvdgConfig::default(), 0xC0FF_EE00)
        .generate_corpus(104)
        .expect("rvdg corpus generates");
    assert!(corpus.len() >= 100);
    for threads in [1usize, 2, 8] {
        par::with_threads(threads, || {
            let results = par::par_map(&corpus, |d| {
                (d.seed, run_both(&d.module, d.seed ^ 0xD1FF, true))
            });
            for (seed, pairs) in &results {
                assert_identical(&format!("rvdg seed {seed}"), pairs);
            }
        });
    }
}

/// A wider RVDG shape (more branches, wider vectors) to cover part selects,
/// case statements and multi-bit arithmetic beyond the default mix.
#[test]
fn rvdg_wide_corpus_is_bit_identical() {
    let cfg = RvdgConfig {
        num_wide_inputs: 4,
        wide_width: 8,
        num_branches: 5,
        stmts_per_branch: 3,
        ..RvdgConfig::default()
    };
    let corpus = Generator::new(cfg, 0xBEEF_0002)
        .generate_corpus(24)
        .expect("rvdg corpus generates");
    for d in &corpus {
        assert_identical(
            &format!("rvdg-wide seed {}", d.seed),
            &run_both(&d.module, d.seed ^ 0xA5A5, true),
        );
    }
}

/// One end-to-end pass over `corpus`: simulate every design (the returned
/// [`Trace`]s carry both signal snapshots and `StmtExec` records), build the
/// training dataset, and train a model for two epochs. The fingerprint is
/// everything downstream code consumes — traces plus bit-level epoch losses.
fn pipeline_fingerprint(corpus: &[Module]) -> (Vec<Trace>, Vec<u32>) {
    let traces: Vec<Trace> = par::par_map(corpus, |m| {
        let mut s = Simulator::new(m).expect("elaborates");
        let stimuli = TestbenchGen::new(0xAB5)
            .with_hold_probability(0.8)
            .generate_many(s.netlist(), 24, 2);
        stimuli
            .iter()
            .map(|st| s.run(st).expect("simulates"))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let dataset = Dataset::from_designs(corpus, 7, 24, 2).expect("builds");
    let mut model = VeriBugModel::new(ModelConfig::default());
    let report = train::train(
        &mut model,
        &dataset,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    )
    .expect("trains");
    let losses = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
    (traces, losses)
}

/// Enabling metrics/span collection must never perturb pipeline results:
/// the obs layer is observation-only (per-thread shards merged by
/// commutative addition, spans off the hot path). Compares traces, exec
/// records, and training losses bit-for-bit between an obs-off and an
/// obs-on run at 1/2/8 threads.
#[test]
fn obs_collection_never_perturbs_results() {
    let corpus: Vec<Module> = Generator::new(RvdgConfig::default(), 0x0B5_D1FF)
        .generate_corpus(6)
        .expect("rvdg corpus generates")
        .into_iter()
        .map(|d| d.module)
        .collect();
    for threads in [1usize, 2, 8] {
        let (off, on) = par::with_threads(threads, || {
            let was_enabled = obs::enabled();
            obs::set_enabled(false);
            let off = pipeline_fingerprint(&corpus);
            obs::set_enabled(true);
            let on = pipeline_fingerprint(&corpus);
            obs::set_enabled(was_enabled);
            (off, on)
        });
        assert_eq!(
            off.0, on.0,
            "traces/exec records perturbed by obs collection at {threads} threads"
        );
        assert_eq!(
            off.1, on.1,
            "training losses perturbed by obs collection at {threads} threads"
        );
    }
}

/// A static combinational loop must fall back to the interpreter and report
/// `CombinationalLoop` exactly as before.
#[test]
fn comb_loop_falls_back_and_still_errors() {
    let unit = verilog::parse(
        "module loopy(input a, output y);\nwire t;\n\
         assign t = ~y;\nassign y = t & a;\nendmodule",
    )
    .expect("parses");
    let mut sim = Simulator::new(unit.top()).expect("elaborates");
    assert_eq!(sim.engine_kind(), EngineKind::Interpreted);
    let stim = sim::Stimulus {
        vectors: vec![sim::InputVector {
            assigns: vec![("a".into(), 1)],
        }],
    };
    let err = sim.run(&stim).expect_err("oscillating loop must error");
    assert!(matches!(err, sim::SimError::CombinationalLoop { .. }));
}
